"""Tests for trace sources and pacing policies."""

import pytest

from repro.exceptions import ReplayError
from repro.net.ethernet import EthernetFrame
from repro.net.pcap import PcapPacket, write_pcap
from repro.replay import (
    BackToBackPacing,
    ChunkTraceSource,
    FixedRatePacing,
    PcapTraceSource,
    RecordedPacing,
    WorkloadTraceSource,
    pacing_from_name,
)
from repro.workloads import ChunkTrace, SyntheticSensorWorkload
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK


class TestRecordedPacing:
    def test_keeps_recorded_gaps(self):
        pacing = RecordedPacing()
        assert pacing.inject_at(0, 10.0, 64) == 0.0
        assert pacing.inject_at(1, 10.5, 64) == pytest.approx(0.5)
        assert pacing.inject_at(2, 12.0, 64) == pytest.approx(2.0)

    def test_speedup_compresses_time(self):
        pacing = RecordedPacing(speedup=2.0)
        pacing.inject_at(0, 0.0, 64)
        assert pacing.inject_at(1, 1.0, 64) == pytest.approx(0.5)

    def test_non_monotonic_timestamps_are_clamped(self):
        pacing = RecordedPacing()
        pacing.inject_at(0, 5.0, 64)
        later = pacing.inject_at(1, 6.0, 64)
        clamped = pacing.inject_at(2, 4.0, 64)  # goes backwards in the capture
        assert clamped == later

    def test_reset_forgets_origin(self):
        pacing = RecordedPacing()
        pacing.inject_at(0, 100.0, 64)
        pacing.reset()
        assert pacing.inject_at(0, 200.0, 64) == 0.0

    def test_rejects_bad_speedup(self):
        with pytest.raises(ReplayError):
            RecordedPacing(speedup=0.0)


class TestFixedRatePacing:
    def test_packet_rate_spacing(self):
        pacing = FixedRatePacing(packet_rate=1000.0)
        times = [pacing.inject_at(i, 0.0, 64) for i in range(3)]
        assert times == pytest.approx([0.0, 1e-3, 2e-3])

    def test_bandwidth_spacing_depends_on_frame_size(self):
        pacing = FixedRatePacing(bandwidth_bps=1e9)
        first = pacing.inject_at(0, 0.0, 1500)
        second = pacing.inject_at(1, 0.0, 1500)
        assert first == 0.0
        # 1500 B frame occupies (1500+4+8+12)*8 bits on the wire.
        assert second == pytest.approx(1524 * 8 / 1e9)

    def test_exactly_one_mode_required(self):
        with pytest.raises(ReplayError):
            FixedRatePacing()
        with pytest.raises(ReplayError):
            FixedRatePacing(packet_rate=1.0, bandwidth_bps=1.0)


class TestBackToBackPacing:
    def test_everything_at_start(self):
        pacing = BackToBackPacing(start=1.5)
        assert pacing.inject_at(0, 0.0, 64) == 1.5
        assert pacing.inject_at(9, 42.0, 1500) == 1.5


class TestPacingFromName:
    @pytest.mark.parametrize("name,kind", [
        ("recorded", RecordedPacing),
        ("rate", FixedRatePacing),
        ("back-to-back", BackToBackPacing),
    ])
    def test_known_names(self, name, kind):
        assert isinstance(pacing_from_name(name), kind)

    def test_unknown_name(self):
        with pytest.raises(ReplayError):
            pacing_from_name("warp")


@pytest.fixture()
def small_trace():
    return SyntheticSensorWorkload(num_chunks=20, distinct_bases=3, seed=11).trace()


class TestChunkTraceSource:
    def test_frames_wrap_chunks(self, small_trace):
        source = ChunkTraceSource(small_trace)
        frames = list(source.frames())
        assert len(frames) == len(small_trace)
        parsed = EthernetFrame.from_bytes(frames[0].data)
        assert parsed.ethertype == ETHERTYPE_RAW_CHUNK
        assert parsed.payload == small_trace[0]

    def test_restartable(self, small_trace):
        source = ChunkTraceSource(small_trace)
        assert [f.data for f in source.frames()] == [f.data for f in source.frames()]


class TestPcapTraceSource:
    def test_streams_recorded_timestamps(self, small_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        small_trace.to_pcap(path, packet_rate=1000.0)
        source = PcapTraceSource(path)
        frames = list(source.frames())
        assert len(frames) == len(small_trace)
        assert frames[1].recorded_time == pytest.approx(1e-3)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReplayError):
            PcapTraceSource(tmp_path / "nope.pcap")

    def test_reads_any_frames_not_only_chunks(self, tmp_path):
        frame = EthernetFrame(
            destination="02:00:00:00:00:02",
            source="02:00:00:00:00:01",
            ethertype=0x0800,
            payload=b"x" * 40,
        )
        path = tmp_path / "other.pcap"
        write_pcap(path, [PcapPacket(timestamp=0.0, data=frame.to_bytes())])
        frames = list(PcapTraceSource(path).frames())
        assert len(frames) == 1


class TestWorkloadTraceSource:
    def test_streams_lazily_from_generator(self):
        workload = SyntheticSensorWorkload(num_chunks=50, distinct_bases=3, seed=4)
        source = WorkloadTraceSource(workload, num_chunks=10)
        frames = list(source.frames())
        assert len(frames) == 10
        assert EthernetFrame.from_bytes(frames[0].data).payload == workload.chunks(10)[0]

    def test_requires_iter_chunks(self):
        with pytest.raises(ReplayError):
            WorkloadTraceSource(object())
