"""End-to-end tests for the replay harness and its topologies."""

import pytest

from repro.exceptions import ReplayError
from repro.net.ethernet import EthernetFrame
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay import (
    BackToBackPacing,
    ChunkTraceSource,
    FixedRatePacing,
    PcapTraceSource,
    ReplayHarness,
    ReplayTopology,
)
from repro.workloads import SyntheticSensorWorkload
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK


@pytest.fixture()
def workload():
    # 4000 chunks at the 1 Mpkt/s replay rate give a 4 ms trace — comfortably
    # longer than the ~1.77 ms learning delay, so dynamic runs do compress.
    return SyntheticSensorWorkload(num_chunks=4000, distinct_bases=6, seed=21)


@pytest.fixture()
def trace(workload):
    return workload.trace()


class TestLossFreeRoundTrip:
    def test_static_scenario_is_byte_identical_in_order(self, trace):
        harness = ReplayHarness(
            scenario="static", static_bases=trace.distinct_bases(
                ReplayHarness().transform
            )
        )
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.lossless_in_order
        assert report.chunks_sent == len(trace)
        # Static table: almost everything crosses as 3-byte type-3 packets.
        assert report.compression_ratio < 0.15
        received = [
            EthernetFrame.from_bytes(frame).payload
            for _, frame in harness.sink.arrivals
        ]
        assert received == trace.chunks

    def test_dynamic_scenario_learns_then_compresses(self, trace):
        harness = ReplayHarness(scenario="dynamic")
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.lossless_in_order
        assert report.learning_time is not None
        assert report.learning_time > 0
        assert report.metrics.counter("encoder.raw_to_compressed") > 0
        assert report.metrics.counter("encoder.raw_to_uncompressed") > 0

    def test_no_table_scenario_never_compresses(self, trace):
        harness = ReplayHarness(scenario="no_table")
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.lossless_in_order
        assert report.metrics.counter("wire.compressed_packets") == 0
        assert report.compression_ratio > 1.0

    def test_latency_percentiles_present(self, trace):
        harness = ReplayHarness(scenario="no_table")
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        latency = report.latency_summary()
        assert latency["count"] == len(trace)
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]


class TestLossyLink:
    """Satellite: dropped type-2 packets must not corrupt later decodes."""

    def test_dropped_misses_do_not_corrupt_subsequent_hits(self, trace):
        harness = ReplayHarness(
            scenario="dynamic",
            impairments=ImpairmentModel(loss_probability=0.05, seed=97),
        )
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        integrity = report.integrity
        # Loss is a counted failure mode, never silent corruption: every
        # delivered chunk is byte-identical to a sent one.
        assert integrity.corrupted == 0
        assert integrity.intact
        dropped = report.metrics.counter("link0.dropped_loss")
        assert dropped > 0
        # Every loss is accounted: missing chunks == frames the link dropped.
        assert integrity.missing == dropped
        # The learning path is unaffected by wire loss (digests travel from
        # the encoder), so compression still kicks in.
        assert report.metrics.counter("wire.compressed_packets") > 0
        assert integrity.matched == integrity.sent - dropped

    def test_lossy_run_is_deterministic_for_a_seed(self, trace):
        def run():
            harness = ReplayHarness(
                scenario="dynamic",
                impairments=ImpairmentModel(loss_probability=0.08, seed=5),
            )
            report = harness.run(
                ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
            )
            return (
                report.integrity.missing,
                report.metrics.counter("link0.dropped_loss"),
                report.wire_payload_bytes,
            )

        assert run() == run()

    def test_reordering_is_counted(self, trace):
        harness = ReplayHarness(
            scenario="static",
            static_bases=trace.distinct_bases(ReplayHarness().transform),
            impairments=ImpairmentModel(
                reorder_probability=0.2, reorder_delay=50e-6, seed=13
            ),
        )
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.corrupted == 0
        assert report.integrity.missing == 0
        assert report.integrity.out_of_order > 0
        assert not report.integrity.lossless_in_order


class TestBoundedQueue:
    def test_back_to_back_overload_drops_at_the_queue(self, trace):
        harness = ReplayHarness(
            scenario="no_table",
            bandwidth_bps=1e9,
            queue_capacity=16,
        )
        report = harness.run(ChunkTraceSource(trace), BackToBackPacing())
        assert report.metrics.counter("link0.dropped_queue") > 0
        assert report.integrity.corrupted == 0
        assert report.integrity.missing == report.metrics.counter(
            "link0.dropped_queue"
        )
        assert report.metrics.counter("link0.max_queue_depth") == 16


class TestTopologies:
    def test_multi_hop_stays_lossless(self, trace):
        harness = ReplayHarness(scenario="dynamic", hops=3)
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.lossless_in_order
        assert report.metrics.counter("link2.delivered") > 0

    def test_multi_hop_forks_independent_impairment_streams(self, trace):
        harness = ReplayHarness(
            scenario="no_table",
            hops=2,
            impairments=ImpairmentModel(loss_probability=0.05, seed=3),
        )
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        first = report.metrics.counter("link0.dropped_loss")
        second = report.metrics.counter("link1.dropped_loss")
        assert first > 0 and second > 0
        # The second hop only sees what survived the first.
        assert report.metrics.counter("link1.offered") == report.metrics.counter(
            "link0.delivered"
        )

    def test_encoder_only_delivers_processed_packets(self, trace):
        harness = ReplayHarness(topology="encoder-only", scenario="no_table")
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity is None
        kinds = {
            EthernetFrame.from_bytes(frame).ethertype
            for _, frame in harness.sink.arrivals
        }
        assert ETHERTYPE_RAW_CHUNK not in kinds
        assert len(harness.sink.arrivals) == len(trace)

    def test_decoder_only_passes_raw_chunks_through(self, trace):
        harness = ReplayHarness(topology="decoder-only", scenario="no_table")
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.lossless_in_order

    def test_unknown_topology_rejected(self):
        with pytest.raises(ReplayError):
            ReplayHarness(topology="ring")
        assert ReplayTopology.from_name("encoder-only") is ReplayTopology.ENCODER_ONLY

    def test_static_requires_bases(self):
        with pytest.raises(ReplayError):
            ReplayHarness(scenario="static")

    def test_hops_must_be_positive(self):
        with pytest.raises(ReplayError):
            ReplayHarness(hops=0)


class TestHopsSeedRegression:
    """`--hops N` output is byte-identical to the pre-refactor behaviour.

    The golden numbers below were captured from the seed implementation
    (ad hoc link-chain construction, commit a368dae) on the exact workload
    and impairment seeds used here; the chain now comes from
    ``repro.topology.build_link_chain`` and must reproduce every counter,
    byte total and integrity field to the last bit.
    """

    GOLDEN = {
        "chunks_sent": 600,
        "payload_bytes_sent": 19200,
        "wire_payload_bytes": 19800,
        "compression_ratio": 1.03125,
        "duration": 0.0020178141691365174,
        "learning_time": None,
        "integrity": {
            "sent": 600, "received": 548, "matched": 548, "corrupted": 0,
            "missing": 52, "out_of_order": 204, "intact": True,
            "lossless_in_order": False,
        },
        "counters": {
            "controlplane.digests_ignored": 595,
            "controlplane.digests_received": 600,
            "controlplane.mappings_expired": 0,
            "controlplane.mappings_learned": 5,
            "controlplane.mappings_recycled": 0,
            "decoder.compressed_to_raw": 0,
            "decoder.compressed_to_raw_bytes": 0,
            "decoder.passthrough_other": 0,
            "decoder.passthrough_other_bytes": 0,
            "decoder.uncompressed_to_raw": 548,
            "decoder.uncompressed_to_raw_bytes": 25756,
            "decoder.unknown_identifier": 0,
            "decoder.unknown_identifier_bytes": 0,
            "encoder.digests_dropped": 0,
            "encoder.digests_emitted": 600,
            "encoder.passthrough_other": 0,
            "encoder.passthrough_other_bytes": 0,
            "encoder.passthrough_processed": 0,
            "encoder.passthrough_processed_bytes": 0,
            "encoder.raw_to_compressed": 0,
            "encoder.raw_to_compressed_bytes": 0,
            "encoder.raw_to_uncompressed": 600,
            "encoder.raw_to_uncompressed_bytes": 27600,
            "link0.busy_time": 3.924479999999999e-06,
            "link0.delivered": 584,
            "link0.delivered_bytes": 27448,
            "link0.dropped_loss": 16,
            "link0.dropped_queue": 0,
            "link0.max_queue_depth": 1,
            "link0.offered": 600,
            "link0.offered_bytes": 28200,
            "link0.reordered": 14,
            "link1.busy_time": 3.7967999999999985e-06,
            "link1.delivered": 565,
            "link1.delivered_bytes": 26555,
            "link1.dropped_loss": 19,
            "link1.dropped_queue": 0,
            "link1.max_queue_depth": 2,
            "link1.offered": 584,
            "link1.offered_bytes": 27448,
            "link1.reordered": 10,
            "link2.busy_time": 3.6825599999999986e-06,
            "link2.delivered": 548,
            "link2.delivered_bytes": 25756,
            "link2.dropped_loss": 17,
            "link2.dropped_queue": 0,
            "link2.max_queue_depth": 2,
            "link2.offered": 565,
            "link2.offered_bytes": 26555,
            "link2.reordered": 11,
            "wire.compressed_packets": 0,
            "wire.compressed_payload_bytes": 0,
            "wire.raw_packets": 0,
            "wire.raw_payload_bytes": 0,
            "wire.uncompressed_packets": 600,
            "wire.uncompressed_payload_bytes": 19800,
        },
    }

    def test_hops_3_output_is_byte_identical_to_seed_behaviour(self):
        trace = SyntheticSensorWorkload(
            num_chunks=600, distinct_bases=5, seed=11
        ).trace()
        harness = ReplayHarness(
            scenario="dynamic",
            hops=3,
            impairments=ImpairmentModel(
                loss_probability=0.03, reorder_probability=0.02, seed=7
            ),
        )
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        observed = report.as_dict()
        for key in (
            "chunks_sent", "payload_bytes_sent", "wire_payload_bytes",
            "compression_ratio", "duration", "learning_time", "integrity",
        ):
            assert observed[key] == self.GOLDEN[key], key
        assert observed["metrics"]["counters"] == self.GOLDEN["counters"]


class TestPcapDriven:
    def test_pcap_round_trip_through_harness(self, trace, tmp_path):
        path = tmp_path / "trace.pcap"
        trace.to_pcap(path, packet_rate=500_000.0)
        harness = ReplayHarness(scenario="dynamic")
        report = harness.run(PcapTraceSource(path), FixedRatePacing(packet_rate=1e6))
        assert report.integrity.lossless_in_order
        assert report.chunks_sent == len(trace)
        assert report.source.startswith("pcap:")


class TestCountersOnlyMode:
    def test_verify_integrity_false_keeps_no_per_chunk_state(self, trace):
        harness = ReplayHarness(scenario="no_table", verify_integrity=False)
        report = harness.run(
            ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity is None
        assert report.latency_summary() == {}
        # Counters and byte accounting still work.
        assert report.chunks_sent == len(trace)
        assert report.payload_bytes_sent == trace.total_bytes
        assert report.compression_ratio > 1.0
        # No retained payloads or frames.
        assert harness.sink.arrivals == []
        assert harness.sink.delivered == len(trace)
        assert harness._sent_chunks == []


class TestDnsWorkloadSource:
    def test_dns_workload_streams_through_harness(self):
        from repro.replay import WorkloadTraceSource
        from repro.workloads import DnsQueryWorkload

        workload = DnsQueryWorkload(num_queries=300, distinct_names=20, seed=6)
        harness = ReplayHarness(scenario="no_table")
        report = harness.run(
            WorkloadTraceSource(workload, num_chunks=300),
            FixedRatePacing(packet_rate=1e6),
        )
        assert report.chunks_sent == 300
        assert report.integrity.lossless_in_order


class TestStaticBasesContract:
    def test_no_table_with_encoder_rejects_static_bases(self, trace):
        with pytest.raises(ReplayError):
            ReplayHarness(scenario="no_table", static_bases=[1, 2, 3])

    def test_decoder_only_no_table_preinstalls_mappings(self, trace, tmp_path):
        from repro.net.pcap import PcapPacket, write_pcap

        transform = ReplayHarness().transform
        bases = trace.distinct_bases(transform)

        # Produce a processed trace with an encoder-only run.
        encode = ReplayHarness(
            topology="encoder-only", scenario="static", static_bases=bases
        )
        encode.run(ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6))
        processed = tmp_path / "processed.pcap"
        write_pcap(
            processed,
            (PcapPacket(time, frame) for time, frame in encode.sink.arrivals),
        )

        # Decode it with a decoder-only topology and preinstalled mappings
        # (same basis order -> same sequential identifier assignment).
        decode = ReplayHarness(
            topology="decoder-only", scenario="no_table", static_bases=bases
        )
        report = decode.run(
            PcapTraceSource(processed), FixedRatePacing(packet_rate=1e6)
        )
        assert report.metrics.counter("decoder.unknown_identifier") == 0
        assert report.metrics.counter("decoder.compressed_to_raw") == len(trace)
        received = [
            EthernetFrame.from_bytes(frame).payload
            for _, frame in decode.sink.arrivals
        ]
        assert received == trace.chunks

    def test_counters_only_mode_records_no_queueing_delays(self, trace):
        harness = ReplayHarness(scenario="no_table", verify_integrity=False)
        harness.run(ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6))
        assert harness.links[0].stats.queueing_delays == []
        assert harness.links[0].stats.delivered == len(trace)

    def test_decoder_only_processed_trace_reports_na_ratio(self, trace, tmp_path):
        from repro.net.pcap import PcapPacket, write_pcap

        encode = ReplayHarness(topology="encoder-only", scenario="no_table")
        encode.run(ChunkTraceSource(trace.head(50)), FixedRatePacing(packet_rate=1e6))
        processed = tmp_path / "t2.pcap"
        write_pcap(
            processed,
            (PcapPacket(time, frame) for time, frame in encode.sink.arrivals),
        )
        decode = ReplayHarness(topology="decoder-only", scenario="no_table")
        report = decode.run(
            PcapTraceSource(processed), FixedRatePacing(packet_rate=1e6)
        )
        # No raw chunks were injected: there is no compression ratio.
        assert report.compression_ratio is None
        assert report.savings_percent is None
        assert "n/a" in report.render(include_counters=False)

    def test_counters_only_link_tap_keeps_aggregates_not_records(self, trace):
        harness = ReplayHarness(scenario="no_table", verify_integrity=False)
        report = harness.run(ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6))
        assert harness.link_tap.records == []
        assert harness.link_tap.total_frames() == len(trace)
        assert report.learning_time is None  # first-times still tracked
        assert report.wire_payload_bytes > 0
