"""Tests for the metrics registry, distributions and the replay report."""

import pytest

from repro.exceptions import ReplayError
from repro.replay import Distribution, IntegrityResult, MetricsRegistry, ReplayReport


class TestDistribution:
    def test_percentile_interpolation(self):
        dist = Distribution("latency")
        dist.extend([1.0, 2.0, 3.0, 4.0])
        assert dist.percentile(0) == 1.0
        assert dist.percentile(100) == 4.0
        assert dist.percentile(50) == pytest.approx(2.5)

    def test_single_sample(self):
        dist = Distribution()
        dist.add(5.0)
        assert dist.percentile(99) == 5.0

    def test_summary_keys(self):
        dist = Distribution()
        dist.extend(range(100))
        summary = dist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(49.5)
        assert summary["p99"] == pytest.approx(98.01)
        assert summary["min"] == 0.0
        assert summary["max"] == 99.0

    def test_empty_distribution(self):
        dist = Distribution("empty")
        assert dist.empty
        assert dist.summary() == {"count": 0}
        with pytest.raises(ReplayError):
            dist.percentile(50)

    def test_percentile_bounds(self):
        dist = Distribution()
        dist.add(1.0)
        with pytest.raises(ReplayError):
            dist.percentile(101)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.increment("a.x")
        metrics.increment("a.x", 4)
        assert metrics.counter("a.x") == 5
        assert metrics.counter("never") == 0

    def test_merge_counters_namespaces(self):
        metrics = MetricsRegistry()
        metrics.merge_counters("link0", {"offered": 10, "dropped": 2, "skip": None})
        assert metrics.counter("link0.offered") == 10
        assert metrics.counter("link0.skip") == 0

    def test_gauges_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("occupancy", 3)
        metrics.set_gauge("occupancy", 7)
        assert metrics.gauge("occupancy") == 7.0
        assert metrics.gauge("missing") is None

    def test_render_and_as_dict(self):
        metrics = MetricsRegistry()
        metrics.increment("encoder.hits", 12)
        metrics.set_gauge("encoder.entries", 3)
        metrics.distribution("lat").extend([1.0, 2.0])
        text = metrics.render()
        assert "encoder.hits" in text
        data = metrics.as_dict()
        assert data["counters"]["encoder.hits"] == 12
        assert data["distributions"]["lat"]["count"] == 2


class TestIntegrityResult:
    def test_lossless_in_order(self):
        result = IntegrityResult(
            sent=5, received=5, matched=5, corrupted=0, missing=0, out_of_order=0
        )
        assert result.intact and result.lossless_in_order

    def test_loss_is_counted_not_corruption(self):
        result = IntegrityResult(
            sent=5, received=3, matched=3, corrupted=0, missing=2, out_of_order=0
        )
        assert result.intact
        assert not result.lossless_in_order

    def test_corruption_breaks_intact(self):
        result = IntegrityResult(
            sent=5, received=5, matched=4, corrupted=1, missing=1, out_of_order=0
        )
        assert not result.intact


class TestReplayReport:
    def make_report(self, **overrides):
        values = dict(
            topology="encoder-link-decoder",
            scenario="static",
            source="test",
            chunks_sent=100,
            payload_bytes_sent=3200,
            wire_payload_bytes=320,
            duration=1e-3,
            integrity=IntegrityResult(
                sent=100, received=100, matched=100, corrupted=0,
                missing=0, out_of_order=0,
            ),
        )
        values.update(overrides)
        return ReplayReport(**values)

    def test_compression_ratio(self):
        report = self.make_report()
        assert report.compression_ratio == pytest.approx(0.1)
        assert report.savings_percent == pytest.approx(90.0)

    def test_render_contains_headline(self):
        report = self.make_report()
        report.metrics.increment("encoder.raw_to_compressed", 100)
        text = report.render()
        assert "compression ratio" in text
        assert "lossless" in text
        assert "encoder.raw_to_compressed" in text

    def test_latency_summary_from_metrics(self):
        report = self.make_report()
        report.metrics.distribution("endtoend.latency").extend([1e-6, 2e-6])
        assert report.latency_summary()["count"] == 2
        assert "latency p50" in str(report.headline_rows())

    def test_as_dict_is_json_friendly(self):
        import json

        report = self.make_report()
        report.metrics.distribution("endtoend.latency").add(1e-6)
        encoded = json.dumps(report.as_dict())
        assert "compression_ratio" in encoded
