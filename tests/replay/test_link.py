"""Tests for the emulated link: serialisation, queueing, loss, reordering."""

import pytest

from repro.exceptions import ReplayError
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay import EmulatedLink
from repro.sim.simulator import Simulator


def make_link(sim, **kwargs):
    arrivals = []
    link = EmulatedLink(sim, sink=lambda frame, time: arrivals.append((time, frame)), **kwargs)
    return link, arrivals


class TestSerialisation:
    def test_delivery_includes_serialisation_and_propagation(self):
        sim = Simulator()
        link, arrivals = make_link(sim, bandwidth_bps=1e9, propagation_delay=1e-6)
        frame = b"\x00" * 100
        link.send(frame, 0.0)
        sim.run()
        assert len(arrivals) == 1
        time, data = arrivals[0]
        # 100 B frame -> (100+4+8+12)*8 = 992 wire bits at 1 Gbit/s.
        assert time == pytest.approx(992 / 1e9 + 1e-6)
        assert data == frame

    def test_back_to_back_frames_queue_behind_each_other(self):
        sim = Simulator()
        link, arrivals = make_link(sim, bandwidth_bps=1e9, propagation_delay=0.0)
        for _ in range(3):
            link.send(b"\x00" * 100, 0.0)
        sim.run()
        serialisation = 992 / 1e9
        times = [time for time, _ in arrivals]
        assert times == pytest.approx(
            [serialisation, 2 * serialisation, 3 * serialisation]
        )
        assert link.stats.max_queue_depth == 3

    def test_busy_time_accumulates(self):
        sim = Simulator()
        link, _ = make_link(sim, bandwidth_bps=1e9)
        for _ in range(4):
            link.send(b"\x00" * 100, 0.0)
        sim.run()
        assert link.stats.busy_time == pytest.approx(4 * 992 / 1e9)
        assert link.utilisation(link.stats.busy_time * 2) == pytest.approx(0.5)


class TestBoundedQueue:
    def test_drop_tail_when_queue_full(self):
        sim = Simulator()
        link, arrivals = make_link(sim, bandwidth_bps=1e9, queue_capacity=2)
        for _ in range(5):
            link.send(b"\x00" * 100, 0.0)
        sim.run()
        assert link.stats.dropped_queue == 3
        assert link.stats.delivered == 2
        assert len(arrivals) == 2

    def test_queue_drains_over_time(self):
        sim = Simulator()
        link, arrivals = make_link(sim, bandwidth_bps=1e9, queue_capacity=2)
        serialisation = 992 / 1e9
        link.send(b"\x00" * 100, 0.0)
        link.send(b"\x00" * 100, 0.0)
        sim.run()
        link.send(b"\x00" * 100, sim.now)
        sim.run()
        assert link.stats.dropped_queue == 0
        assert link.stats.delivered == 3

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ReplayError):
            EmulatedLink(Simulator(), queue_capacity=0)


class TestImpairments:
    def test_seeded_loss_is_deterministic(self):
        def run(seed):
            sim = Simulator()
            link, arrivals = make_link(
                sim, impairments=ImpairmentModel(loss_probability=0.3, seed=seed)
            )
            for index in range(200):
                link.send(bytes([index % 256]) * 60, sim.now)
                sim.run()
            return link.stats.dropped_loss, [data for _, data in arrivals]

        first_drops, first_frames = run(7)
        second_drops, second_frames = run(7)
        other_drops, _ = run(8)
        assert first_drops > 0
        assert (first_drops, first_frames) == (second_drops, second_frames)
        assert other_drops != first_drops or run(8)[1] != first_frames

    def test_reordering_lets_later_frames_overtake(self):
        sim = Simulator()
        # Reorder every frame deterministically via probability 1 on frame 0
        # only: use a generous penalty and two frames, first gets penalty.
        link, arrivals = make_link(
            sim,
            bandwidth_bps=1e12,
            propagation_delay=0.0,
            impairments=ImpairmentModel(
                reorder_probability=0.5, reorder_delay=1e-3, seed=3
            ),
        )
        for index in range(20):
            link.send(bytes([index]) * 60, sim.now)
        sim.run()
        assert link.stats.reordered > 0
        order = [data[0] for _, data in arrivals]
        assert order != sorted(order)
        # Nothing lost: reordering only delays.
        assert sorted(order) == list(range(20))

    def test_no_sink_raises(self):
        link = EmulatedLink(Simulator())
        with pytest.raises(ReplayError):
            link.send(b"\x00" * 60, 0.0)
