"""Bounded (sketch) Distribution vs the exact implementation.

The documented contract of ``Distribution(bounded=True)``:

* ``count``, ``min``, ``max`` are *exact* (tracked outside the buckets);
* ``mean`` equals the exact mean bit for bit — both modes fold the same
  values in the same insertion order;
* every percentile estimate is within the configured relative error of
  the exact **nearest-rank** percentile (the gamma-bucket construction
  guarantees the bucket holding the target-rank sample has edges within
  ``relative_error`` of its midpoint);
* memory is fixed: at most ``max_buckets`` buckets per sign plus a few
  scalars, and ``samples`` access is an error by design.
"""

import math
import random

import pytest

from repro.exceptions import ReplayError
from repro.replay.metrics import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ERROR,
    Distribution,
)

PERCENTILES = (0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0)


def _streams():
    """Randomized sample streams covering the shapes latency metrics see."""
    rng = random.Random(1202)
    yield "uniform", [rng.uniform(1e-6, 1e-3) for _ in range(5000)]
    yield "heavy-tail", [rng.expovariate(1.0 / 50e-6) for _ in range(5000)]
    yield "lognormal", [
        math.exp(rng.gauss(-10.0, 2.0)) for _ in range(3000)
    ]
    yield "wide-range", [
        rng.choice((1e-9, 1e-6, 1e-3, 1.0, 1e3)) * rng.uniform(0.5, 2.0)
        for _ in range(2000)
    ]
    yield "with-zeros-and-negatives", [
        rng.choice((-1.0, 0.0, 1.0)) * rng.uniform(0.0, 1e-3)
        for _ in range(4000)
    ]
    yield "tiny", [rng.uniform(1e-12, 2e-12) for _ in range(500)]
    yield "constant", [42.0] * 1000


STREAMS = list(_streams())
STREAM_IDS = [label for label, _ in STREAMS]


def _pair(values, relative_error=DEFAULT_RELATIVE_ERROR):
    exact = Distribution("exact")
    bounded = Distribution("bounded", bounded=True,
                           relative_error=relative_error)
    exact.extend(values)
    bounded.extend(values)
    return exact, bounded


def _nearest_rank(values, percentile):
    """The exact nearest-rank percentile — the bound's reference point."""
    ordered = sorted(values)
    rank = (percentile / 100.0) * (len(ordered) - 1)
    return ordered[min(int(rank + 0.5), len(ordered) - 1)]


class TestExactInvariants:
    @pytest.mark.parametrize("label,values", STREAMS, ids=STREAM_IDS)
    def test_count_min_max_mean_identical(self, label, values):
        exact, bounded = _pair(values)
        assert len(bounded) == len(exact) == len(values)
        exact_summary = exact.summary()
        bounded_summary = bounded.summary()
        assert bounded_summary["count"] == exact_summary["count"]
        assert bounded_summary["min"] == exact_summary["min"] == min(values)
        assert bounded_summary["max"] == exact_summary["max"] == max(values)
        # Both modes left-fold the same floats in the same order, so the
        # mean is not merely close — it is the same float.
        assert bounded.mean() == exact.mean()

    def test_summary_has_the_same_shape(self):
        exact, bounded = _pair([1.0, 2.0, 3.0])
        assert set(bounded.summary()) == set(exact.summary())


class TestPercentileErrorBound:
    @pytest.mark.parametrize("label,values", STREAMS, ids=STREAM_IDS)
    def test_within_documented_relative_error(self, label, values):
        _exact, bounded = _pair(values)
        for percentile in PERCENTILES:
            want = _nearest_rank(values, percentile)
            got = bounded.percentile(percentile)
            assert got == pytest.approx(
                want, rel=DEFAULT_RELATIVE_ERROR, abs=1e-15
            ), f"{label} p{percentile}"

    def test_tighter_relative_error_is_honored(self):
        rng = random.Random(7)
        values = [rng.expovariate(1.0 / 80e-6) for _ in range(4000)]
        _exact, bounded = _pair(values, relative_error=0.001)
        for percentile in PERCENTILES:
            assert bounded.percentile(percentile) == pytest.approx(
                _nearest_rank(values, percentile), rel=0.001
            )

    def test_estimates_clamp_into_the_observed_range(self):
        _exact, bounded = _pair([3.0, 5.0, 7.0, 11.0])
        for percentile in PERCENTILES:
            assert 3.0 <= bounded.percentile(percentile) <= 11.0


class TestBoundedMemory:
    def test_bucket_count_never_exceeds_the_cap(self):
        rng = random.Random(99)
        bounded = Distribution("capped", bounded=True, max_buckets=64)
        # 15 decades of magnitude would need ~1700 buckets at 1% error;
        # the collapse valve must keep the low end folded into 64.
        values = [10 ** rng.uniform(-9.0, 6.0) for _ in range(20000)]
        bounded.extend(values)
        assert len(bounded._positive) <= 64
        # Collapse eats the smallest buckets first, so the top of the
        # range keeps its full resolution.
        for percentile in (99.0, 100.0):
            assert bounded.percentile(percentile) == pytest.approx(
                _nearest_rank(values, percentile), rel=DEFAULT_RELATIVE_ERROR
            )

    def test_samples_access_is_an_error(self):
        bounded = Distribution("nostore", bounded=True)
        bounded.add(1.0)
        with pytest.raises(ReplayError, match=r"retains no samples"):
            bounded.samples

    def test_default_cap_is_generous_but_finite(self):
        assert DEFAULT_MAX_BUCKETS == 4096


class TestMergeEquivalence:
    def test_merge_matches_single_stream_fold(self):
        rng = random.Random(13)
        left = [rng.uniform(0.0, 1e-3) for _ in range(1500)]
        right = [rng.expovariate(1.0 / 30e-6) for _ in range(1500)]
        merged = Distribution("merged", bounded=True)
        part_a = Distribution("a", bounded=True)
        part_b = Distribution("b", bounded=True)
        part_a.extend(left)
        part_b.extend(right)
        merged.merge(part_a)
        merged.merge(part_b)
        folded = Distribution("folded", bounded=True)
        folded.extend(left)
        folded.extend(right)
        merged_summary = merged.summary()
        folded_summary = folded.summary()
        # The sketch adds bucket-wise, so everything integer-or-order
        # based is identical; only the float sum behind the mean follows
        # the fold's association (two partial sums vs one left fold).
        mean = merged_summary.pop("mean")
        assert mean == pytest.approx(folded_summary.pop("mean"), rel=1e-12)
        assert merged_summary == folded_summary

    def test_merge_of_merges_matches_sequential_merges(self):
        # The property the sharded engine actually relies on: folding the
        # same per-flow partials in the same order gives the same floats,
        # whether the partials come from one process or many.
        rng = random.Random(17)
        parts = []
        for index in range(4):
            part = Distribution(f"part{index}", bounded=True)
            part.extend(rng.uniform(0.0, 1e-3) for _ in range(500))
            parts.append(part)
        first = Distribution("first", bounded=True)
        second = Distribution("second", bounded=True)
        for part in parts:
            first.merge(part)
            second.merge(part)
        assert first.summary() == second.summary()

    def test_mode_mismatch_is_rejected(self):
        exact = Distribution("e")
        bounded = Distribution("b", bounded=True)
        with pytest.raises(ReplayError, match=r"cannot merge"):
            exact.merge(bounded)
        with pytest.raises(ReplayError, match=r"cannot merge"):
            bounded.merge(exact)


class TestStateRoundTrip:
    @pytest.mark.parametrize("bounded", [False, True])
    def test_to_state_from_state_preserves_the_summary(self, bounded):
        rng = random.Random(31)
        dist = Distribution("trip", bounded=bounded)
        dist.extend(rng.uniform(0.0, 1e-3) for _ in range(800))
        clone = Distribution.from_state("trip", dist.to_state())
        assert clone.summary() == dist.summary()
        assert clone.bounded == dist.bounded
