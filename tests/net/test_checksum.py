"""Tests for the checksum helpers."""

import pytest

from repro.net.checksum import ethernet_fcs, internet_checksum, verify_ethernet_fcs


class TestEthernetFcs:
    def test_known_crc32_check_value(self):
        assert ethernet_fcs(b"123456789") == 0xCBF43926

    def test_verify(self):
        frame = b"\x00" * 60
        fcs = ethernet_fcs(frame)
        assert verify_ethernet_fcs(frame, fcs)
        assert not verify_ethernet_fcs(frame, fcs ^ 1)

    def test_sensitive_to_single_bit_flip(self):
        frame = bytes(range(64))
        flipped = bytes([frame[0] ^ 0x01]) + frame[1:]
        assert ethernet_fcs(frame) != ethernet_fcs(flipped)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 / textbooks.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_checksum_of_zeroes(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_checksum_validates_to_zero(self):
        # Inserting the checksum into the data makes the sum 0xFFFF (i.e. the
        # complemented sum is zero), which is how IPv4 receivers verify it.
        data = bytearray(bytes.fromhex("450000300000000040110000c0a80001c0a800c7"))
        checksum = internet_checksum(bytes(data))
        data[10:12] = checksum.to_bytes(2, "big")
        assert internet_checksum(bytes(data)) == 0
