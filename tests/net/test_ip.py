"""Tests for the minimal IPv4/UDP builders."""

import pytest

from repro.exceptions import PacketError
from repro.net.checksum import internet_checksum
from repro.net.ip import (
    IPV4_HEADER_BYTES,
    Ipv4Header,
    UdpHeader,
    build_udp_packet,
    ipv4_address_to_bytes,
    ipv4_address_to_str,
    parse_udp_packet,
)


class TestAddresses:
    def test_roundtrip(self):
        assert ipv4_address_to_bytes("10.1.1.53") == b"\x0a\x01\x01\x35"
        assert ipv4_address_to_str(b"\x0a\x01\x01\x35") == "10.1.1.53"

    def test_invalid(self):
        with pytest.raises(PacketError):
            ipv4_address_to_bytes("10.1.1")
        with pytest.raises(PacketError):
            ipv4_address_to_bytes("10.1.1.300")
        with pytest.raises(PacketError):
            ipv4_address_to_bytes("a.b.c.d")
        with pytest.raises(PacketError):
            ipv4_address_to_str(b"\x01\x02")


class TestIpv4Header:
    def test_serialise_and_parse(self):
        header = Ipv4Header(source="10.0.0.1", destination="10.1.1.53", payload_length=20)
        raw = header.to_bytes()
        assert len(raw) == IPV4_HEADER_BYTES
        parsed, payload = Ipv4Header.from_bytes(raw + b"\x00" * 20)
        assert parsed.source == "10.0.0.1"
        assert parsed.destination == "10.1.1.53"
        assert parsed.payload_length == 20
        assert payload == b"\x00" * 20

    def test_header_checksum_validates(self):
        raw = Ipv4Header("10.0.0.1", "10.1.1.53", payload_length=8).to_bytes()
        assert internet_checksum(raw) == 0

    def test_invalid_lengths(self):
        with pytest.raises(PacketError):
            Ipv4Header("10.0.0.1", "10.0.0.2", payload_length=0x10000).to_bytes()
        with pytest.raises(PacketError):
            Ipv4Header.from_bytes(b"\x45" + b"\x00" * 10)

    def test_rejects_non_ipv4(self):
        raw = bytearray(Ipv4Header("10.0.0.1", "10.0.0.2", payload_length=0).to_bytes())
        raw[0] = 0x65  # version 6
        with pytest.raises(PacketError):
            Ipv4Header.from_bytes(bytes(raw))


class TestUdp:
    def test_build_and_parse_packet(self):
        payload = b"dns-query-bytes"
        packet = build_udp_packet("10.0.0.1", "10.1.1.53", 40000, 53, payload)
        ipv4, udp, parsed_payload = parse_udp_packet(packet)
        assert ipv4.destination == "10.1.1.53"
        assert udp.destination_port == 53
        assert udp.source_port == 40000
        assert parsed_payload == payload

    def test_udp_checksum_nonzero(self):
        packet = build_udp_packet("10.0.0.1", "10.1.1.53", 1234, 53, b"abc")
        _, udp_start = Ipv4Header.from_bytes(packet)
        checksum = int.from_bytes(udp_start[6:8], "big")
        assert checksum != 0

    def test_payload_length_mismatch(self):
        header = UdpHeader(source_port=1, destination_port=2, payload_length=4)
        with pytest.raises(PacketError):
            header.to_bytes("10.0.0.1", "10.0.0.2", b"xyz")

    def test_parse_rejects_non_udp(self):
        header = Ipv4Header("10.0.0.1", "10.0.0.2", payload_length=0, protocol=6)
        with pytest.raises(PacketError):
            parse_udp_packet(header.to_bytes())

    def test_truncated_udp(self):
        with pytest.raises(PacketError):
            UdpHeader.from_bytes(b"\x00\x01")
