"""Tests for the ZipLine packet codec (wire formats of type 2/3 packets)."""

import pytest

from repro.core.records import CompressedRecord, RawRecord, UncompressedRecord
from repro.core.transform import GDTransform
from repro.exceptions import PacketError
from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.mac import MacAddress
from repro.net.packets import PacketKind, ZipLinePacketCodec, classify_frame

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")


@pytest.fixture(scope="module")
def paper_codec():
    return ZipLinePacketCodec(GDTransform(order=8), identifier_bits=15)


@pytest.fixture(scope="module")
def small_codec():
    return ZipLinePacketCodec(GDTransform(order=4), identifier_bits=6)


class TestLayouts:
    def test_paper_payload_sizes(self, paper_codec):
        # 33-byte type-2 payloads (3 % overhead) and 3-byte type-3 payloads.
        assert paper_codec.raw_payload_bytes == 32
        assert paper_codec.uncompressed_payload_bytes == 33
        assert paper_codec.compressed_payload_bytes == 3
        assert paper_codec.uncompressed_padding_bits == 8

    def test_small_codec_layout_is_byte_aligned(self, small_codec):
        assert small_codec.uncompressed_payload_bytes * 8 >= 16
        assert small_codec.compressed_payload_bytes >= 1

    def test_explicit_padding_must_align(self):
        with pytest.raises(PacketError):
            ZipLinePacketCodec(
                GDTransform(order=8), identifier_bits=15, uncompressed_padding_bits=3
            )

    def test_invalid_identifier_bits(self):
        with pytest.raises(PacketError):
            ZipLinePacketCodec(GDTransform(order=8), identifier_bits=0)


class TestPackUnpack:
    def test_uncompressed_roundtrip(self, paper_codec, rng):
        transform = paper_codec.transform
        chunk = rng.getrandbits(256).to_bytes(32, "big")
        parts = transform.split(chunk)
        record = UncompressedRecord(
            prefix=parts.prefix,
            basis=parts.basis,
            deviation=parts.deviation,
            prefix_bits=parts.prefix_bits,
            basis_bits=parts.basis_bits,
            deviation_bits=parts.deviation_bits,
            alignment_padding_bits=8,
        )
        payload = paper_codec.pack_record(record)
        assert len(payload) == 33
        unpacked = paper_codec.unpack_uncompressed(payload)
        assert unpacked.basis == record.basis
        assert unpacked.deviation == record.deviation
        assert unpacked.prefix == record.prefix

    def test_compressed_roundtrip(self, paper_codec):
        record = CompressedRecord(
            prefix=1,
            identifier=12345,
            deviation=0x5A,
            prefix_bits=1,
            identifier_bits=15,
            deviation_bits=8,
        )
        payload = paper_codec.pack_record(record)
        assert len(payload) == 3
        unpacked = paper_codec.unpack_compressed(payload)
        assert unpacked.identifier == 12345
        assert unpacked.deviation == 0x5A
        assert unpacked.prefix == 1

    def test_pack_rejects_raw_records(self, paper_codec):
        with pytest.raises(PacketError):
            paper_codec.pack_record(RawRecord(chunk=0, chunk_bits=256))

    def test_pack_rejects_mismatched_identifier_width(self, paper_codec):
        record = CompressedRecord(
            prefix=0, identifier=1, deviation=0,
            prefix_bits=1, identifier_bits=8, deviation_bits=8,
        )
        with pytest.raises(PacketError):
            paper_codec.pack_record(record)

    def test_unpack_wrong_length(self, paper_codec):
        with pytest.raises(PacketError):
            paper_codec.unpack_compressed(b"\x00" * 4)
        with pytest.raises(PacketError):
            paper_codec.unpack_uncompressed(b"\x00" * 32)


class TestFrames:
    def test_build_and_classify_frames(self, paper_codec):
        record = CompressedRecord(
            prefix=0, identifier=7, deviation=1,
            prefix_bits=1, identifier_bits=15, deviation_bits=8,
        )
        frame = paper_codec.build_frame(record, DST, SRC)
        assert frame.ethertype == EtherType.ZIPLINE_COMPRESSED
        assert classify_frame(frame) is PacketKind.PROCESSED_COMPRESSED
        assert paper_codec.unpack_frame(frame).identifier == 7

    def test_uncompressed_frame_classification(self, paper_codec, rng):
        transform = paper_codec.transform
        parts = transform.split(rng.getrandbits(256).to_bytes(32, "big"))
        record = UncompressedRecord(
            prefix=parts.prefix, basis=parts.basis, deviation=parts.deviation,
            prefix_bits=parts.prefix_bits, basis_bits=parts.basis_bits,
            deviation_bits=parts.deviation_bits, alignment_padding_bits=8,
        )
        frame = paper_codec.build_frame(record, DST, SRC)
        assert classify_frame(frame) is PacketKind.PROCESSED_UNCOMPRESSED

    def test_other_frames_are_raw(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"x" * 20)
        assert classify_frame(frame) is PacketKind.RAW

    def test_unpack_raw_frame_rejected(self, paper_codec):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"x" * 20)
        with pytest.raises(PacketError):
            paper_codec.unpack_frame(frame)

    def test_ethertype_for_record(self, paper_codec):
        with pytest.raises(PacketError):
            paper_codec.ethertype_for_record(RawRecord(chunk=0, chunk_bits=256))
