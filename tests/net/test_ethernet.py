"""Tests for Ethernet framing and wire-size accounting."""

import pytest

from repro.exceptions import PacketError
from repro.net.ethernet import (
    ETHERNET_MIN_FRAME_BYTES,
    EthernetFrame,
    EtherType,
    frame_wire_bytes,
    wire_overhead_bytes,
)
from repro.net.mac import MacAddress

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")


class TestFrame:
    def test_serialise_parse_roundtrip(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"payload")
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert parsed == frame or (
            parsed.destination == frame.destination
            and parsed.source == frame.source
            and parsed.ethertype == frame.ethertype
            and parsed.payload == frame.payload
        )

    def test_sizes(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"\x00" * 32)
        assert frame.header_bytes == 14
        assert frame.payload_bytes == 32
        assert frame.frame_bytes == 46
        assert frame.wire_bytes == frame_wire_bytes(46)

    def test_minimum_frame_padding(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"x")
        padded = frame.to_bytes(pad=True)
        assert len(padded) == ETHERNET_MIN_FRAME_BYTES - 4  # FCS not included
        assert frame.to_bytes(pad=True, include_fcs=True)[-4:] != b"\x00\x00\x00\x00"

    def test_fcs_appended_and_consistent(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"data")
        raw = frame.to_bytes(include_fcs=True)
        assert int.from_bytes(raw[-4:], "big") == frame.fcs()

    def test_parse_with_fcs_strips_it(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"data")
        parsed = EthernetFrame.from_bytes(frame.to_bytes(include_fcs=True), has_fcs=True)
        assert parsed.payload == b"data"

    def test_parse_too_short(self):
        with pytest.raises(PacketError):
            EthernetFrame.from_bytes(b"\x00" * 10)
        with pytest.raises(PacketError):
            EthernetFrame.from_bytes(b"\x00" * 17, has_fcs=True)

    def test_invalid_ethertype(self):
        with pytest.raises(PacketError):
            EthernetFrame(DST, SRC, 0x1_0000, b"")

    def test_invalid_payload_type(self):
        with pytest.raises(PacketError):
            EthernetFrame(DST, SRC, EtherType.IPV4, "not-bytes")

    def test_with_payload_and_reverse(self):
        frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"abc")
        changed = frame.with_payload(b"xyz", ethertype=EtherType.ZIPLINE_COMPRESSED)
        assert changed.payload == b"xyz"
        assert changed.ethertype == EtherType.ZIPLINE_COMPRESSED
        reply = frame.reversed_direction()
        assert reply.destination == SRC
        assert reply.source == DST

    def test_repr_names_ethertype(self):
        frame = EthernetFrame(DST, SRC, EtherType.ZIPLINE_UNCOMPRESSED, b"")
        assert "ZipLine/uncompressed" in repr(frame)


class TestWireAccounting:
    def test_wire_overhead(self):
        assert wire_overhead_bytes() == 8 + 12 + 4

    def test_minimum_size_enforced(self):
        # A 64-byte probe frame occupies 64 + 20 = 84 bytes of wire time.
        assert frame_wire_bytes(60) == 84
        assert frame_wire_bytes(10) == 84

    def test_standard_and_jumbo_sizes(self):
        assert frame_wire_bytes(1514) == 1514 + 4 + 8 + 12
        assert frame_wire_bytes(9014) == 9014 + 4 + 8 + 12

    def test_negative_size_rejected(self):
        with pytest.raises(PacketError):
            frame_wire_bytes(-1)

    def test_ethertype_names(self):
        assert EtherType.name(EtherType.IPV4) == "IPv4"
        assert EtherType.name(0x1234) == "0x1234"
