"""Tests for the MAC address type."""

import random

import pytest

from repro.exceptions import PacketError
from repro.net.mac import BROADCAST, ZERO, MacAddress


class TestConstruction:
    def test_from_string_colon_and_dash(self):
        assert MacAddress("02:00:00:00:00:01").octets == b"\x02\x00\x00\x00\x00\x01"
        assert MacAddress("02-00-00-00-00-01") == MacAddress("02:00:00:00:00:01")

    def test_from_bytes_and_int(self):
        address = MacAddress(b"\x02\x00\x00\x00\x00\x01")
        assert MacAddress(address.to_int()) == address
        assert MacAddress(address) == address

    def test_invalid_inputs(self):
        with pytest.raises(PacketError):
            MacAddress("02:00:00:00:00")
        with pytest.raises(PacketError):
            MacAddress("zz:00:00:00:00:01")
        with pytest.raises(PacketError):
            MacAddress(b"\x01\x02")
        with pytest.raises(PacketError):
            MacAddress(1 << 48)
        with pytest.raises(PacketError):
            MacAddress(3.5)

    def test_random_unicast_is_local_and_unicast(self):
        address = MacAddress.random_unicast(random.Random(1))
        assert address.is_unicast
        assert address.is_locally_administered
        # deterministic for a given seed
        assert address == MacAddress.random_unicast(random.Random(1))


class TestProperties:
    def test_broadcast_and_zero(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_multicast
        assert not ZERO.is_broadcast
        assert ZERO.is_unicast

    def test_string_rendering(self):
        assert str(MacAddress("02:AB:00:00:00:01")) == "02:ab:00:00:00:01"
        assert "02:ab" in repr(MacAddress("02:AB:00:00:00:01"))

    def test_equality_with_other_types(self):
        address = MacAddress("02:00:00:00:00:01")
        assert address == "02:00:00:00:00:01"
        assert address == b"\x02\x00\x00\x00\x00\x01"
        assert address != "garbage"
        assert (address == 42) is False or True  # NotImplemented falls back

    def test_hashable_for_table_keys(self):
        table = {MacAddress("02:00:00:00:00:01"): 3}
        assert table[MacAddress("02:00:00:00:00:01")] == 3

    def test_bytes_conversion(self):
        assert bytes(MacAddress("ff:ff:ff:ff:ff:ff")) == b"\xff" * 6
