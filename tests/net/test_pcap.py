"""Tests for the pcap reader/writer."""

import io
import struct

import pytest

from repro.exceptions import TraceError
from repro.net.pcap import PcapPacket, PcapReader, PcapWriter, read_pcap, write_pcap


def sample_packets():
    return [
        PcapPacket(timestamp=0.0, data=b"\x01" * 60),
        PcapPacket(timestamp=0.000123, data=b"\x02" * 64),
        PcapPacket(timestamp=1.5, data=b"\x03" * 1514),
    ]


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.pcap"
        count = write_pcap(path, sample_packets())
        assert count == 3
        packets = read_pcap(path)
        assert len(packets) == 3
        assert packets[0].data == b"\x01" * 60
        assert packets[1].timestamp == pytest.approx(0.000123, abs=1e-6)
        assert packets[2].length == 1514

    def test_stream_roundtrip(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer) as writer:
            writer.write_packets(sample_packets())
            assert writer.packets_written == 3
        buffer.seek(0)
        with PcapReader(buffer) as reader:
            assert reader.link_type == 1
            assert len(reader.read_all()) == 3

    def test_snaplen_truncates(self, tmp_path):
        path = tmp_path / "snap.pcap"
        with PcapWriter(path, snaplen=16) as writer:
            writer.write(0.0, b"\xAA" * 100)
        packets = read_pcap(path)
        assert packets[0].length == 16

    def test_big_endian_files_are_readable(self, tmp_path):
        path = tmp_path / "be.pcap"
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 3, 500, 4, 4) + b"abcd"
        path.write_bytes(header + record)
        packets = read_pcap(path)
        assert packets[0].data == b"abcd"
        assert packets[0].timestamp == pytest.approx(3.0005)

    def test_nanosecond_magic(self, tmp_path):
        path = tmp_path / "ns.pcap"
        header = struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 1)
        record = struct.pack("<IIII", 1, 500_000_000, 2, 2) + b"hi"
        path.write_bytes(header + record)
        packets = read_pcap(path)
        assert packets[0].timestamp == pytest.approx(1.5)


class TestValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(TraceError):
            read_pcap(path)

    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(TraceError):
            read_pcap(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, [PcapPacket(0.0, b"\x01" * 32)])
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(TraceError):
            read_pcap(path)

    def test_negative_timestamp_rejected(self, tmp_path):
        with PcapWriter(tmp_path / "x.pcap") as writer:
            with pytest.raises(TraceError):
                writer.write(-1.0, b"x")

    def test_invalid_snaplen(self, tmp_path):
        with pytest.raises(TraceError):
            PcapWriter(tmp_path / "y.pcap", snaplen=0)

    def test_microsecond_rounding_carry(self, tmp_path):
        path = tmp_path / "carry.pcap"
        with PcapWriter(path) as writer:
            writer.write(0.9999999, b"x")
        packets = read_pcap(path)
        assert packets[0].timestamp == pytest.approx(1.0, abs=1e-5)


class TestNanosecondFormat:
    def test_write_uses_nanosecond_magic(self, tmp_path):
        path = tmp_path / "nano.pcap"
        with PcapWriter(path, nanosecond=True) as writer:
            assert writer.nanosecond
            writer.write(0.0, b"x" * 60)
        (magic,) = struct.unpack("<I", path.read_bytes()[:4])
        assert magic == 0xA1B23C4D

    def test_round_trip_preserves_nanosecond_timestamps(self, tmp_path):
        path = tmp_path / "nano.pcap"
        # 1.5 us offsets collapse under microsecond quantisation but not
        # under nanosecond resolution.
        timestamps = [0.0, 1.5e-6, 123.000000789]
        with PcapWriter(path, nanosecond=True) as writer:
            for timestamp in timestamps:
                writer.write(timestamp, b"y" * 60)
        with PcapReader(path) as reader:
            assert reader.nanosecond
            read_back = [packet.timestamp for packet in reader]
        for expected, actual in zip(timestamps, read_back):
            assert actual == pytest.approx(expected, abs=1e-9)

    def test_microsecond_writer_quantises_where_nanosecond_does_not(self, tmp_path):
        fine = 0.000000250  # 250 ns
        nano_path = tmp_path / "n.pcap"
        micro_path = tmp_path / "u.pcap"
        with PcapWriter(nano_path, nanosecond=True) as writer:
            writer.write(fine, b"z" * 60)
        with PcapWriter(micro_path) as writer:
            assert not writer.nanosecond
            writer.write(fine, b"z" * 60)
        assert read_pcap(nano_path)[0].timestamp == pytest.approx(fine, abs=1e-9)
        assert read_pcap(micro_path)[0].timestamp != pytest.approx(fine, abs=1e-9)

    def test_write_pcap_helper_forwards_nanosecond_flag(self, tmp_path):
        path = tmp_path / "helper.pcap"
        write_pcap(path, sample_packets(), nanosecond=True)
        with PcapReader(path) as reader:
            assert reader.nanosecond
            assert len(reader.read_all()) == 3

    def test_nanosecond_rounding_carry(self, tmp_path):
        path = tmp_path / "carry.pcap"
        with PcapWriter(path, nanosecond=True) as writer:
            writer.write(0.9999999999, b"x")
        packets = read_pcap(path)
        assert packets[0].timestamp == pytest.approx(1.0, abs=1e-9)
