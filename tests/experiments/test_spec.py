"""Spec validation and cross-product expansion."""

import json

import pytest

from repro.experiments import (
    DEFAULT_PARAMETERS,
    ExperimentSpec,
    ExperimentSpecError,
)


def _spec(**kwargs):
    document = {
        "name": "test",
        "base": {"workload": "synthetic", "chunks": 100, "bases": 4},
        "axes": {"scenario": ["static", "dynamic"], "loss": [0.0, 0.02]},
    }
    document.update(kwargs)
    return ExperimentSpec.from_dict(document)


class TestExpansion:
    def test_cross_product_size(self):
        spec = _spec(axes={"scenario": ["no_table", "static", "dynamic"], "loss": [0.0, 0.01, 0.05], "hops": [1, 2]})
        assert spec.matrix_size == 18
        assert len(spec.expand()) == 18

    def test_axes_sorted_last_axis_fastest(self):
        spec = _spec()
        ids = [scenario.scenario_id for scenario in spec.expand()]
        assert ids == [
            "loss=0.0/scenario=static",
            "loss=0.0/scenario=dynamic",
            "loss=0.02/scenario=static",
            "loss=0.02/scenario=dynamic",
        ]
        assert [scenario.index for scenario in spec.expand()] == [0, 1, 2, 3]

    def test_defaults_then_base_then_axis_precedence(self):
        spec = _spec()
        scenario = spec.expand()[0]
        assert scenario.params["chunks"] == 100  # base overrides default
        assert scenario.params["scenario"] == "static"  # axis overrides base
        assert scenario.params["hops"] == DEFAULT_PARAMETERS["hops"]

    def test_no_axes_yields_single_point(self):
        spec = ExperimentSpec.from_dict({"name": "one", "base": {"chunks": 10}})
        scenarios = spec.expand()
        assert len(scenarios) == 1
        assert scenarios[0].scenario_id == "point"
        assert spec.matrix_size == 1

    def test_axes_recorded_per_scenario(self):
        scenario = _spec().expand()[3]
        assert scenario.axes == {"scenario": "dynamic", "loss": 0.02}

    def test_expansion_is_reproducible(self):
        spec = _spec()
        first = [scenario.as_dict() for scenario in spec.expand()]
        second = [scenario.as_dict() for scenario in spec.expand()]
        assert first == second


class TestSeeds:
    def test_seeds_distinct_and_stable(self):
        spec = _spec()
        seeds = [scenario.seed for scenario in spec.expand()]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [scenario.seed for scenario in spec.expand()]

    def test_seed_depends_on_spec_seed(self):
        lhs = _spec(base={"seed": 1})
        rhs = _spec(base={"seed": 2})
        assert [s.seed for s in lhs.expand()] != [s.seed for s in rhs.expand()]

    def test_seed_depends_on_spec_name(self):
        lhs = _spec(name="sweep-a")
        rhs = _spec(name="sweep-b")
        assert [s.seed for s in lhs.expand()] != [s.seed for s in rhs.expand()]

    def test_seeds_non_negative(self):
        for scenario in _spec(base={"seed": -12345}).expand():
            assert 0 <= scenario.seed < 2**31


class TestOverrides:
    def test_override_applied_on_match_only(self):
        spec = _spec(
            overrides=[{"when": {"scenario": "static"}, "set": {"bases": 2}}]
        )
        by_id = {s.scenario_id: s for s in spec.expand()}
        assert by_id["loss=0.0/scenario=static"].params["bases"] == 2
        assert by_id["loss=0.0/scenario=dynamic"].params["bases"] == 4

    def test_override_with_multiple_conditions(self):
        spec = _spec(
            overrides=[
                {
                    "when": {"scenario": "static", "loss": 0.02},
                    "set": {"hops": 3},
                }
            ]
        )
        by_id = {s.scenario_id: s for s in spec.expand()}
        assert by_id["loss=0.02/scenario=static"].params["hops"] == 3
        assert by_id["loss=0.0/scenario=static"].params["hops"] == 1

    def test_override_on_non_axis_rejected(self):
        with pytest.raises(ExperimentSpecError, match="not an axis"):
            _spec(overrides=[{"when": {"hops": 1}, "set": {"bases": 2}}])

    def test_override_must_set_something(self):
        with pytest.raises(ExperimentSpecError, match="sets nothing"):
            _spec(overrides=[{"when": {"scenario": "static"}}])

    def test_override_set_validates_values(self):
        with pytest.raises(ExperimentSpecError, match="positive integer"):
            _spec(overrides=[{"when": {"scenario": "static"}, "set": {"bases": 0}}])

    def test_override_unknown_key_rejected(self):
        with pytest.raises(ExperimentSpecError, match="'when' and 'set'"):
            _spec(overrides=[{"when": {}, "set": {"bases": 2}, "extra": 1}])


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ExperimentSpecError, match="unknown axis 'los'"):
            _spec(axes={"los": [0.0, 0.1]})

    def test_unknown_base_parameter_rejected(self):
        with pytest.raises(ExperimentSpecError, match="unknown parameter"):
            _spec(base={"chunk_count": 100})

    def test_invalid_probability_rejected(self):
        with pytest.raises(ExperimentSpecError, match=r"\[0, 1\]"):
            _spec(axes={"loss": [0.0, 1.5]})

    def test_invalid_choice_rejected(self):
        with pytest.raises(ExperimentSpecError, match="must be one of"):
            _spec(axes={"scenario": ["static", "sideways"]})

    def test_non_positive_chunks_rejected(self):
        with pytest.raises(ExperimentSpecError, match="positive integer"):
            _spec(base={"chunks": 0})

    def test_bool_is_not_a_number(self):
        with pytest.raises(ExperimentSpecError):
            _spec(base={"loss": True})

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ExperimentSpecError, match="twice"):
            _spec(axes={"loss": [0.0, 0.0]})

    def test_duplicate_after_normalisation_rejected(self):
        # 0 and 0.0 validate to the same point; the sweep must not silently
        # run it twice (duplicate scenario ids, identical seeds).
        with pytest.raises(ExperimentSpecError, match="twice"):
            _spec(axes={"loss": [0, 0.0]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentSpecError, match="no values"):
            _spec(axes={"loss": []})

    def test_axis_must_be_a_list(self):
        with pytest.raises(ExperimentSpecError, match="list of values"):
            _spec(axes={"loss": 0.02})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ExperimentSpecError, match="unknown spec keys"):
            ExperimentSpec.from_dict({"name": "x", "axis": {}})

    def test_spec_must_be_mapping(self):
        with pytest.raises(ExperimentSpecError, match="must be a mapping"):
            ExperimentSpec.from_dict(["not", "a", "mapping"])


class TestFiles:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_spec().as_dict()))
        loaded = ExperimentSpec.from_file(path)
        assert [s.as_dict() for s in loaded.expand()] == [
            s.as_dict() for s in _spec().expand()
        ]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentSpecError, match="does not exist"):
            ExperimentSpec.from_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentSpecError, match="invalid JSON"):
            ExperimentSpec.from_file(path)

    def test_toml_when_available(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        del tomllib
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "toml-spec"\n'
            "[base]\n"
            'workload = "synthetic"\n'
            "chunks = 100\n"
            "[axes]\n"
            'scenario = ["static", "dynamic"]\n'
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "toml-spec"
        assert spec.matrix_size == 2

    def test_preset_specs_load(self):
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parents[2] / "examples" / "specs"
        names = sorted(path.name for path in specs_dir.glob("*.json"))
        assert names == [
            "control_churn_sweep.json",
            "fanin_topology.json",
            "loss_table_sweep.json",
            "paper_figure3.json",
            "smoke.json",
        ]
        experiment_specs = 0
        for path in specs_dir.glob("*.json"):
            if path.name == "fanin_topology.json":
                # A topology spec, not an experiment matrix: it loads
                # through repro.topology instead.
                from repro.topology import TopologySpec

                topo = TopologySpec.from_file(path)
                assert len(topo.flows) >= 4
                continue
            spec = ExperimentSpec.from_file(path)
            assert spec.matrix_size >= 4
            experiment_specs += 1
        assert experiment_specs == 4
