"""Matrix execution: sharded equivalence, aggregation, exports."""

import pytest

from repro.exceptions import ReproError
from repro.experiments import (
    ExperimentSpec,
    MatrixRunner,
    run_scenario,
    scenario_metric,
)
from repro.workloads import SyntheticSensorWorkload


def _spec(**overrides):
    document = {
        "name": "runner-test",
        "base": {"workload": "synthetic", "chunks": 150, "bases": 4, "seed": 2020},
        "axes": {"scenario": ["no_table", "static"], "loss": [0.0, 0.02]},
    }
    document.update(overrides)
    return ExperimentSpec.from_dict(document)


@pytest.fixture(scope="module")
def sequential_result():
    return MatrixRunner(_spec(), workers=1).run()


class TestSequentialRun:
    def test_every_scenario_reported_in_order(self, sequential_result):
        assert len(sequential_result) == 4
        assert [r.index for r in sequential_result.results] == [0, 1, 2, 3]

    def test_figure3_shape(self, sequential_result):
        by_id = {r.scenario_id: r for r in sequential_result.results}
        static = by_id["loss=0.0/scenario=static"].metric("compression_ratio")
        no_table = by_id["loss=0.0/scenario=no_table"].metric("compression_ratio")
        assert static < 0.15
        assert no_table > 1.0

    def test_loss_is_counted_never_corrupting(self, sequential_result):
        lossy = {
            r.scenario_id: r
            for r in sequential_result.results
        }["loss=0.02/scenario=static"]
        assert lossy.metric("integrity.missing") > 0
        assert lossy.metric("integrity.corrupted") == 0
        assert sequential_result.intact

    def test_progress_callback_fires_per_scenario(self):
        seen = []
        MatrixRunner(_spec(), workers=1).run(progress=seen.append)
        assert sorted(result.index for result in seen) == [0, 1, 2, 3]


class TestShardedEquivalence:
    def test_parallel_equals_sequential(self, sequential_result):
        sharded = MatrixRunner(_spec(), workers=2).run()
        assert sharded.json_text() == sequential_result.json_text()

    def test_parallel_csv_equals_sequential(self, sequential_result):
        sharded = MatrixRunner(_spec(), workers=3).run()
        assert sharded.csv_text() == sequential_result.csv_text()

    def test_more_workers_than_scenarios(self):
        spec = _spec(axes={"scenario": ["static", "dynamic"]})
        result = MatrixRunner(spec, workers=16).run()
        assert len(result) == 2

    def test_workers_must_be_positive(self):
        with pytest.raises(ReproError, match="positive"):
            MatrixRunner(_spec(), workers=0)


class TestAggregation:
    def test_group_by_axis(self, sequential_result):
        groups = sequential_result.group_by("scenario", "compression_ratio")
        names = [group.name for group in groups]
        assert names == ["scenario=no_table", "scenario=static"]
        assert all(group.summary.count == 2 for group in groups)

    def test_group_by_unknown_axis(self, sequential_result):
        with pytest.raises(ReproError, match="unknown group-by axis"):
            sequential_result.group_by("hops")

    def test_render_contains_axes_and_groups(self, sequential_result):
        text = sequential_result.render(group_axes=["loss"], metric="compression_ratio")
        assert "experiment runner-test (4 scenarios)" in text
        assert "compression_ratio by loss" in text
        assert "loss=0.02" in text

    def test_csv_header_and_rows(self, sequential_result):
        lines = sequential_result.csv_text().strip().splitlines()
        assert lines[0].startswith("loss,scenario,ratio,savings_%")
        assert len(lines) == 5

    def test_json_export_round_trips(self, sequential_result, tmp_path):
        import json

        target = sequential_result.to_json(tmp_path / "out" / "matrix.json")
        loaded = json.loads(target.read_text())
        assert loaded["spec"]["name"] == "runner-test"
        assert len(loaded["scenarios"]) == 4

    def test_csv_export_writes_file(self, sequential_result, tmp_path):
        target = sequential_result.to_csv(tmp_path / "out" / "matrix.csv")
        assert target.read_text() == sequential_result.csv_text()


class TestIntactVerdict:
    @staticmethod
    def _fabricated(report):
        from repro.experiments.runner import MatrixResult, ScenarioResult

        spec = _spec(axes={"scenario": ["no_table"]})
        result = ScenarioResult(
            index=0, scenario_id="scenario=no_table", axes={"scenario": "no_table"},
            seed=0, report=report,
        )
        return MatrixResult(spec, [result])

    def test_corruption_breaks_intact(self):
        assert not self._fabricated({"integrity": {"corrupted": 1}}).intact

    def test_no_integrity_falls_back_to_unknown_identifiers(self):
        # Decoder-only over a processed trace: no chunk-level integrity,
        # but unresolved identifiers mean dropped packets, not success.
        report = {
            "integrity": None,
            "metrics": {"counters": {"decoder.unknown_identifier": 7}},
        }
        assert not self._fabricated(report).intact

    def test_no_integrity_and_clean_decode_is_intact(self):
        report = {
            "integrity": None,
            "metrics": {"counters": {"decoder.unknown_identifier": 0}},
        }
        assert self._fabricated(report).intact


class TestCsvQuoting:
    def test_comma_in_axis_value_is_quoted(self, tmp_path):
        from repro.experiments.runner import MatrixResult, ScenarioResult

        trace = str(tmp_path / "run,v2.pcap")
        spec = ExperimentSpec.from_dict(
            {"name": "csv-test", "axes": {"trace": [trace, "other.pcap"]}}
        )
        results = [
            ScenarioResult(
                index=index, scenario_id=f"trace={value}",
                axes={"trace": value}, seed=0, report={},
            )
            for index, value in enumerate(spec.axes["trace"])
        ]
        import csv as csv_module
        import io

        text = MatrixResult(spec, results).csv_text()
        rows = list(csv_module.reader(io.StringIO(text)))
        assert rows[1][0] == trace
        assert len(rows[1]) == len(rows[0])


class TestScenarioMetric:
    def test_dotted_paths(self, sequential_result):
        report = sequential_result.results[0].report
        assert scenario_metric(report, "compression_ratio") == report["compression_ratio"]
        assert scenario_metric(report, "latency.p50") == report["latency"]["p50"]
        assert scenario_metric(report, "integrity.sent") == 150

    def test_counter_path(self, sequential_result):
        report = sequential_result.results[0].report
        assert (
            scenario_metric(report, "metrics.counters.wire.uncompressed_packets")
            == 150.0
        )

    def test_missing_path_is_none(self, sequential_result):
        report = sequential_result.results[0].report
        assert scenario_metric(report, "latency.p12345") is None
        assert scenario_metric(report, "no.such.path") is None

    def test_non_numeric_path_rejected(self, sequential_result):
        report = sequential_result.results[0].report
        with pytest.raises(ReproError, match="not numeric"):
            scenario_metric(report, "topology")


class TestWorkloadsAndTraces:
    def test_dns_static_scenario(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "dns-test",
                "base": {
                    "workload": "dns",
                    "chunks": 120,
                    "names": 20,
                    "scenario": "static",
                    "seed": 2016,
                },
            }
        )
        result = run_scenario(spec.expand()[0])
        assert result.report["integrity"]["lossless_in_order"]
        assert result.metric("compression_ratio") < 0.5

    def test_pcap_trace_scenario(self, tmp_path):
        workload = SyntheticSensorWorkload(num_chunks=80, distinct_bases=4, seed=7)
        trace_path = tmp_path / "trace.pcap"
        workload.trace().to_pcap(trace_path)
        spec = ExperimentSpec.from_dict(
            {
                "name": "trace-test",
                "base": {"trace": str(trace_path), "chunks": 80},
                "axes": {"scenario": ["no_table", "static"]},
            }
        )
        result = MatrixRunner(spec, workers=1).run()
        by_id = {r.scenario_id: r for r in result.results}
        assert by_id["scenario=static"].metric("compression_ratio") < 0.2
        assert by_id["scenario=no_table"].metric("compression_ratio") > 1.0

    def test_run_scenario_is_deterministic(self):
        scenario = _spec().expand()[2]
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.as_dict() == second.as_dict()


class TestFanInTopologyScenarios:
    """topology=fan-in scenarios run through the topology engine."""

    @staticmethod
    def _fan_in_spec(**base_overrides):
        base = {
            "workload": "synthetic", "chunks": 200, "bases": 3,
            "topology": "fan-in", "senders": 3, "seed": 5,
        }
        base.update(base_overrides)
        return ExperimentSpec.from_dict(
            {
                "name": "fanin-runner-test",
                "base": base,
                "axes": {"scenario": ["static", "dynamic"]},
            }
        )

    def test_fan_in_scenarios_report_per_flow_results(self):
        result = MatrixRunner(self._fan_in_spec(), workers=1).run()
        assert result.intact
        for scenario in result.results:
            flows = scenario.report["flows"]
            assert len(flows) == 3
            assert scenario.report["chunks_sent"] == 3 * 200
            assert scenario.metric("integrity.corrupted") == 0
        static = result.results[0]
        assert static.metric("compression_ratio") < 0.15

    def test_fan_in_sharded_equals_sequential(self):
        spec = self._fan_in_spec()
        sequential = MatrixRunner(spec, workers=1).run()
        sharded = MatrixRunner(spec, workers=2).run()
        assert sharded.json_text() == sequential.json_text()

    def test_flow_seeds_are_independent_of_worker_count(self):
        spec = self._fan_in_spec()
        for workers in (1, 2):
            result = MatrixRunner(spec, workers=workers).run()
            for scenario in result.results:
                from repro.topology import derive_flow_seed

                expected = [
                    derive_flow_seed(scenario.scenario_id, scenario.seed, f"flow{i}")
                    for i in range(3)
                ]
                assert [f["seed"] for f in scenario.report["flows"]] == expected

    def test_senders_parameter_is_validated(self):
        with pytest.raises(ReproError, match="senders"):
            ExperimentSpec.from_dict(
                {"name": "bad", "base": {"senders": 0}}
            )

    def test_fan_in_crosses_with_loss_axis(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "fanin-loss",
                "base": {
                    "workload": "synthetic", "chunks": 200, "bases": 3,
                    "topology": "fan-in", "senders": 2, "scenario": "no_table",
                },
                "axes": {"loss": [0.0, 0.05]},
            }
        )
        result = MatrixRunner(spec, workers=1).run()
        assert result.intact  # loss counts as missing, never corruption
        clean, lossy = result.results
        assert clean.metric("integrity.missing") == 0
        assert lossy.metric("integrity.missing") > 0
