"""Tests for the pipeline, digest engine and switch chassis."""

import pytest

from repro.exceptions import ControlPlaneError, PipelineError
from repro.sim import Simulator
from repro.tofino.digest import DigestEngine
from repro.tofino.parser import Deparser, HeaderType, Parser, ParserState
from repro.tofino.pipeline import PacketContext, Pipeline
from repro.tofino.switch import TofinoSwitch

ETHERNET = HeaderType("ethernet_h", [("dst", 48), ("src", 48), ("ether_type", 16)])


def forwarding_pipeline(egress_port=1, emit_digest=False, drop=False):
    """A trivial program: parse Ethernet, forward to a fixed port."""

    def ingress(context: PacketContext) -> None:
        if emit_digest:
            context.emit_digest("seen", {"ether_type": context.packet.header("ethernet")["ether_type"]})
        if drop:
            context.drop()
        else:
            context.send_to_port(egress_port)

    parser = Parser([ParserState(name="start", extract=("ethernet", ETHERNET))])
    return Pipeline(
        name="forward",
        parser=parser,
        ingress=ingress,
        deparser=Deparser(["ethernet"]),
    )


def frame(ether_type=0x0800, payload=b"x" * 20):
    return bytes(6) + bytes(6) + ether_type.to_bytes(2, "big") + payload


class TestPipeline:
    def test_forwarding(self):
        pipeline = forwarding_pipeline()
        result = pipeline.process(frame(), ingress_port=0)
        assert result.egress_port == 1
        assert result.frame == frame()
        assert not result.dropped
        assert pipeline.packets_processed == 1

    def test_drop(self):
        pipeline = forwarding_pipeline(drop=True)
        result = pipeline.process(frame(), ingress_port=0)
        assert result.dropped
        assert pipeline.packets_dropped == 1

    def test_parse_error_drops_without_crashing(self):
        pipeline = forwarding_pipeline()
        result = pipeline.process(b"\x00" * 5, ingress_port=0)
        assert result.dropped
        assert pipeline.parse_errors == 1

    def test_digest_collection(self):
        pipeline = forwarding_pipeline(emit_digest=True)
        result = pipeline.process(frame(0x1234), ingress_port=0)
        assert result.digests == (("seen", {"ether_type": 0x1234}),)

    def test_forbidden_features_flag(self):
        pipeline = forwarding_pipeline()
        assert not pipeline.uses_forbidden_features
        pipeline.record_recirculation()
        assert pipeline.uses_forbidden_features
        assert pipeline.summary()["recirculations"] == 1

    def test_invalid_ports(self):
        pipeline = forwarding_pipeline()
        with pytest.raises(PipelineError):
            pipeline.process(frame(), ingress_port=-1)
        context = PacketContext(packet=None, ingress_port=0)
        with pytest.raises(PipelineError):
            context.send_to_port(-2)

    def test_negative_latency_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline(
                name="bad",
                parser=Parser([ParserState(name="start")]),
                ingress=lambda ctx: None,
                deparser=Deparser(["ethernet"]),
                pipeline_latency=-1.0,
            )


class TestDigestEngine:
    def test_synchronous_delivery_without_simulator(self):
        engine = DigestEngine()
        received = []
        engine.subscribe("learn", received.append)
        assert engine.emit("learn", {"basis": 5})
        assert len(received) == 1
        assert received[0].data == {"basis": 5}
        assert engine.delivered == 1

    def test_timed_delivery_with_simulator(self):
        simulator = Simulator()
        engine = DigestEngine(simulator, delivery_latency=0.5e-3)
        times = []
        engine.subscribe("learn", lambda message: times.append(simulator.now))
        engine.emit("learn", {"basis": 1})
        assert times == []  # not yet delivered
        simulator.run()
        assert times == [pytest.approx(0.5e-3)]

    def test_queue_overflow_drops(self):
        simulator = Simulator()
        engine = DigestEngine(simulator, queue_depth=2)
        engine.subscribe("learn", lambda message: None)
        assert engine.emit("learn", {})
        assert engine.emit("learn", {})
        assert not engine.emit("learn", {})
        assert engine.dropped == 1
        simulator.run()
        assert engine.in_flight == 0

    def test_unsubscribe_and_validation(self):
        engine = DigestEngine()
        engine.subscribe("learn", lambda m: None)
        engine.unsubscribe_all("learn")
        engine.emit("learn", {})  # no subscriber, still fine
        with pytest.raises(ControlPlaneError):
            engine.subscribe("learn", "not callable")
        with pytest.raises(ControlPlaneError):
            DigestEngine(delivery_latency=-1)
        with pytest.raises(ControlPlaneError):
            DigestEngine(queue_depth=0)


class TestTofinoSwitch:
    def test_receive_and_deliver(self):
        delivered = []
        switch = TofinoSwitch("sw", forwarding_pipeline(egress_port=2))
        switch.attach_port(2, lambda data, time: delivered.append(data))
        switch.receive(frame(), ingress_port=0)
        assert delivered == [frame()]
        assert switch.port_stats(0).rx_packets == 1
        assert switch.port_stats(2).tx_packets == 1

    def test_delivery_uses_simulator_latency(self):
        simulator = Simulator()
        delivered = []
        switch = TofinoSwitch("sw", forwarding_pipeline(egress_port=1), simulator=simulator)
        switch.attach_port(1, lambda data, time: delivered.append(time))
        switch.receive(frame(), ingress_port=0)
        assert delivered == []
        simulator.run()
        assert delivered[0] == pytest.approx(switch.pipeline.pipeline_latency)

    def test_unattached_port_discards_silently(self):
        switch = TofinoSwitch("sw", forwarding_pipeline(egress_port=3))
        switch.receive(frame(), ingress_port=0)
        assert switch.port_stats(3).tx_packets == 1

    def test_digests_forwarded_to_engine(self):
        switch = TofinoSwitch("sw", forwarding_pipeline(emit_digest=True))
        switch.receive(frame(), ingress_port=0)
        assert switch.digest_engine.emitted == 1
        assert switch.summary()["digests_emitted"] == 1

    def test_port_validation(self):
        switch = TofinoSwitch("sw", forwarding_pipeline(), port_count=4)
        with pytest.raises(PipelineError):
            switch.receive(frame(), ingress_port=4)
        with pytest.raises(PipelineError):
            switch.attach_port(9, lambda d, t: None)
        with pytest.raises(PipelineError):
            switch.attach_port(0, "not callable")
        with pytest.raises(PipelineError):
            TofinoSwitch("bad", forwarding_pipeline(), port_count=0)
        with pytest.raises(PipelineError):
            TofinoSwitch("bad", forwarding_pipeline(), port_speed=0)

    def test_detach_port(self):
        delivered = []
        switch = TofinoSwitch("sw", forwarding_pipeline(egress_port=1))
        switch.attach_port(1, lambda data, time: delivered.append(data))
        switch.detach_port(1)
        switch.receive(frame(), ingress_port=0)
        assert delivered == []

    def test_totals(self):
        switch = TofinoSwitch("sw", forwarding_pipeline(egress_port=1))
        switch.receive(frame(), ingress_port=0)
        switch.receive(frame(), ingress_port=0)
        assert switch.total_rx_packets() == 2
        assert switch.total_tx_packets() == 2
