"""Tests for counters."""

import pytest

from repro.exceptions import ReproError
from repro.tofino.counters import Counter, CounterType, NamedCounterSet


class TestCounter:
    def test_packets_and_bytes(self):
        counter = Counter(size=4)
        counter.count(0, packet_bytes=100)
        counter.count(0, packet_bytes=50)
        counter.count(1, packet_bytes=10)
        assert counter.read(0).packets == 2
        assert counter.read(0).bytes == 150
        assert counter.read(1).packets == 1
        assert counter.read(3).packets == 0

    def test_packets_only(self):
        counter = Counter(size=2, counter_type=CounterType.PACKETS)
        counter.count(0, packet_bytes=100)
        assert counter.read(0).packets == 1
        assert counter.read(0).bytes == 0

    def test_bytes_only(self):
        counter = Counter(size=2, counter_type=CounterType.BYTES)
        counter.count(0, packet_bytes=100)
        assert counter.read(0).packets == 0
        assert counter.read(0).bytes == 100

    def test_bounds_and_validation(self):
        counter = Counter(size=2)
        with pytest.raises(ReproError):
            counter.count(2)
        with pytest.raises(ReproError):
            counter.count(0, packet_bytes=-1)
        with pytest.raises(ReproError):
            Counter(size=0)

    def test_read_all_and_clear(self):
        counter = Counter(size=3)
        counter.count(2, packet_bytes=9)
        samples = counter.read_all()
        assert len(samples) == 3
        assert samples[2].bytes == 9
        counter.clear()
        assert counter.read(2).bytes == 0


class TestNamedCounterSet:
    def test_count_by_label(self):
        counters = NamedCounterSet(["raw_to_uncompressed", "raw_to_compressed"])
        counters.count("raw_to_compressed", packet_bytes=3)
        counters.count("raw_to_compressed", packet_bytes=3)
        assert counters.read("raw_to_compressed").packets == 2
        assert counters.read("raw_to_uncompressed").packets == 0

    def test_as_dict_and_clear(self):
        counters = NamedCounterSet(["a", "b"])
        counters.count("a", packet_bytes=1)
        snapshot = counters.as_dict()
        assert snapshot["a"].packets == 1
        counters.clear()
        assert counters.read("a").packets == 0

    def test_unknown_label(self):
        counters = NamedCounterSet(["a"])
        with pytest.raises(ReproError):
            counters.count("b")
        with pytest.raises(ReproError):
            counters.read("b")

    def test_duplicate_or_empty_labels_rejected(self):
        with pytest.raises(ReproError):
            NamedCounterSet(["a", "a"])
        with pytest.raises(ReproError):
            NamedCounterSet([])

    def test_labels_accessor(self):
        assert NamedCounterSet(["x", "y"]).labels == ["x", "y"]
