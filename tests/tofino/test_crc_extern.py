"""Tests for the CRC/hash extern model."""

import pytest

from repro.core.bits import BitVector
from repro.core.hamming import HammingCode
from repro.exceptions import CodingError
from repro.tofino.crc_extern import CrcExtern, CrcPolynomial


class TestCrcPolynomial:
    def test_zipline_configuration_is_plain_remainder(self):
        polynomial = CrcPolynomial(coeff=0x1D, width=8)
        assert polynomial.width == 8
        assert polynomial.parameters.augment is False
        assert polynomial.parameters.is_linear

    def test_rocksoft_options_switch_to_augmented(self):
        polynomial = CrcPolynomial(coeff=0x07, width=8, init=0xFF)
        assert polynomial.parameters.augment is True


class TestCrcExtern:
    def test_matches_hamming_syndrome(self, paper_code, rng):
        extern = CrcExtern(CrcPolynomial(coeff=paper_code.crc_parameter, width=8))
        for _ in range(50):
            chunk = rng.getrandbits(paper_code.n)
            assert extern.get((chunk, paper_code.n)) == paper_code.syndrome(chunk)

    def test_field_concatenation_matches_single_field(self, hamming_7_4):
        extern = CrcExtern(CrcPolynomial(coeff=hamming_7_4.crc_parameter, width=3))
        # {3-bit 0b101, 4-bit 0b0110} concatenated is the 7-bit 0b1010110.
        combined = extern.get([(0b101, 3), (0b0110, 4)])
        single = extern.get((0b1010110, 7))
        assert combined == single

    def test_decoder_parity_computation(self, hamming_7_4, rng):
        # Feeding {basis, m zero bits} reproduces the parity of the basis —
        # the Figure 2 zero-padding step.
        extern = CrcExtern(CrcPolynomial(coeff=hamming_7_4.crc_parameter, width=3))
        for basis in range(1 << hamming_7_4.k):
            parity = extern.get([(basis, hamming_7_4.k), (0, hamming_7_4.m)])
            assert parity == hamming_7_4.parity_of_basis(basis)

    def test_bitvector_fields(self, hamming_7_4):
        extern = CrcExtern(CrcPolynomial(coeff=hamming_7_4.crc_parameter, width=3))
        assert extern.get(BitVector(0b0001000, 7)) == 0b011
        assert extern.get([BitVector(0b000, 3), BitVector(0b1000, 4)]) == 0b011

    def test_invocation_counter(self, hamming_7_4):
        extern = CrcExtern(CrcPolynomial(coeff=hamming_7_4.crc_parameter, width=3))
        extern.get((1, 7))
        extern.get((2, 7))
        assert extern.invocations == 2

    def test_field_validation(self, hamming_7_4):
        extern = CrcExtern(CrcPolynomial(coeff=hamming_7_4.crc_parameter, width=3))
        with pytest.raises(CodingError):
            extern.get((8, 3))  # value does not fit the declared width
        with pytest.raises(CodingError):
            extern.get([(1, 0)])
        with pytest.raises(CodingError):
            extern.get([])
        with pytest.raises(CodingError):
            extern.get(["bad"])
