"""Tests for the Tofino resource/alignment constraint model."""

import pytest

from repro.exceptions import ConstraintViolation
from repro.tofino.constraints import (
    ResourceTracker,
    ResourceUsage,
    TofinoResourceProfile,
    check_header_alignment,
    containers_for_field,
    header_field_padding,
)


class TestAlignment:
    def test_paper_padding_values(self):
        # The non byte-aligned field widths of the paper's configuration.
        assert header_field_padding(247) == 1
        assert header_field_padding(255) == 1
        assert header_field_padding(15) == 1
        assert header_field_padding(8) == 0
        assert header_field_padding(0) == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ConstraintViolation):
            header_field_padding(-1)

    def test_header_alignment_accepts_byte_multiples(self):
        # prefix(1) + basis(247) + syndrome(8) + pad(8) = 264 bits.
        assert check_header_alignment([1, 247, 8, 8]) == 264
        assert check_header_alignment([48, 48, 16]) == 112

    def test_header_alignment_rejects_unaligned(self):
        # The bare paper fields without padding (1 + 15 + 3 = 19 bits) would
        # be rejected by the compiler; so would a lone 247-bit basis field.
        with pytest.raises(ConstraintViolation):
            check_header_alignment([1, 15, 3])
        with pytest.raises(ConstraintViolation):
            check_header_alignment([247])

    def test_header_alignment_rejects_zero_width_fields(self):
        with pytest.raises(ConstraintViolation):
            check_header_alignment([8, 0])

    def test_container_allocation(self):
        assert containers_for_field(8) == [8]
        assert containers_for_field(32) == [32]
        assert sum(containers_for_field(247)) >= 247
        assert all(size in (8, 16, 32) for size in containers_for_field(247))
        with pytest.raises(ConstraintViolation):
            containers_for_field(0)


class TestResourceTracker:
    def test_register_within_budget(self):
        tracker = ResourceTracker()
        tracker.register(ResourceUsage(name="t1", stage=0, sram_blocks=10, entries=1024))
        tracker.register(ResourceUsage(name="t2", stage=0, sram_blocks=20, entries=2048))
        summary = tracker.stage_summary()
        assert summary[0]["sram_blocks"] == 30
        assert summary[0]["entries"] == 1024 + 2048

    def test_stage_out_of_range(self):
        tracker = ResourceTracker()
        with pytest.raises(ConstraintViolation):
            tracker.register(ResourceUsage(name="t", stage=12))

    def test_sram_budget_exceeded(self):
        tracker = ResourceTracker()
        tracker.register(ResourceUsage(name="big", stage=1, sram_blocks=80))
        with pytest.raises(ConstraintViolation):
            tracker.register(ResourceUsage(name="more", stage=1, sram_blocks=1))

    def test_tcam_budget_exceeded(self):
        tracker = ResourceTracker()
        with pytest.raises(ConstraintViolation):
            tracker.register(ResourceUsage(name="tern", stage=2, tcam_blocks=25))

    def test_negative_usage_rejected(self):
        with pytest.raises(ConstraintViolation):
            ResourceUsage(name="bad", stage=0, sram_blocks=-1)
        with pytest.raises(ConstraintViolation):
            ResourceUsage(name="bad", stage=-1)

    def test_sram_estimate_monotonic(self):
        tracker = ResourceTracker()
        small = tracker.sram_blocks_for_table(entries=1024, key_bits=16)
        large = tracker.sram_blocks_for_table(entries=32768, key_bits=247)
        assert large > small
        assert tracker.sram_blocks_for_table(entries=0, key_bits=16) == 0

    def test_report_and_describe(self):
        tracker = ResourceTracker(TofinoResourceProfile())
        tracker.register(ResourceUsage(name="t", stage=0, sram_blocks=4, entries=100))
        report = tracker.report()
        assert "stage  0" in report
        assert "12 stages" in report

    def test_paper_tables_fit_the_budget(self):
        # The ZipLine tables: a 256-entry syndrome table with a 255-bit
        # action parameter and a 32k-entry basis table with a 247-bit key.
        tracker = ResourceTracker()
        syndrome_blocks = tracker.sram_blocks_for_table(
            entries=256, key_bits=8, action_bits=255
        )
        basis_blocks = tracker.sram_blocks_for_table(
            entries=32768, key_bits=247, action_bits=15
        )
        assert syndrome_blocks <= tracker.profile.sram_blocks_per_stage
        # The basis table spans multiple stages on real hardware; here we
        # only assert the estimate is sane and positive.
        assert basis_blocks > 0
