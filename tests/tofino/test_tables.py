"""Tests for match-action tables."""

import pytest

from repro.exceptions import TableError
from repro.tofino.tables import ActionSpec, MatchActionTable, MatchKind


def make_table(size=8, idle_timeout=False):
    return MatchActionTable(
        name="basis_to_id",
        key_bits=16,
        size=size,
        actions=[ActionSpec("set_identifier", ("identifier",)), ActionSpec("learn")],
        default_action="learn",
        support_idle_timeout=idle_timeout,
    )


class TestControlPlaneApi:
    def test_add_and_lookup(self):
        table = make_table()
        table.add_entry(0xAB, "set_identifier", {"identifier": 7})
        result = table.lookup(0xAB)
        assert result.hit
        assert result.action == "set_identifier"
        assert result.params == {"identifier": 7}
        assert len(table) == 1

    def test_miss_returns_default_action(self):
        table = make_table()
        result = table.lookup(0x01)
        assert not result.hit
        assert result.action == "learn"

    def test_duplicate_key_rejected(self):
        table = make_table()
        table.add_entry(1, "learn")
        with pytest.raises(TableError):
            table.add_entry(1, "learn")

    def test_unknown_action_rejected(self):
        table = make_table()
        with pytest.raises(TableError):
            table.add_entry(1, "drop")
        with pytest.raises(TableError):
            MatchActionTable("t", 8, 4, [ActionSpec("a")], default_action="missing")

    def test_wrong_action_params_rejected(self):
        table = make_table()
        with pytest.raises(TableError):
            table.add_entry(1, "set_identifier", {"wrong": 1})
        with pytest.raises(TableError):
            table.add_entry(1, "set_identifier", {})

    def test_capacity_enforced(self):
        table = make_table(size=2)
        table.add_entry(1, "learn")
        table.add_entry(2, "learn")
        assert table.is_full()
        with pytest.raises(TableError):
            table.add_entry(3, "learn")

    def test_modify_and_delete(self):
        table = make_table()
        table.add_entry(1, "set_identifier", {"identifier": 1})
        table.modify_entry(1, "set_identifier", {"identifier": 2})
        assert table.lookup(1).params["identifier"] == 2
        table.delete_entry(1)
        assert not table.lookup(1).hit
        with pytest.raises(TableError):
            table.delete_entry(1)

    def test_const_entries_are_immutable(self):
        table = make_table()
        table.add_const_entries(iter([(5, "set_identifier", {"identifier": 9})]))
        with pytest.raises(TableError):
            table.modify_entry(5, "learn")
        with pytest.raises(TableError):
            table.delete_entry(5)
        table.clear()
        assert len(table) == 1  # const entries survive clear()
        table.clear(include_const=True)
        assert len(table) == 0

    def test_set_default_action(self):
        table = make_table()
        table.set_default_action("set_identifier", {"identifier": 0})
        result = table.lookup(99)
        assert result.action == "set_identifier"
        assert result.params == {"identifier": 0}

    def test_invalid_construction(self):
        with pytest.raises(TableError):
            MatchActionTable("t", 8, 0, [ActionSpec("a")], default_action="a")
        with pytest.raises(TableError):
            MatchActionTable("t", 0, 4, [ActionSpec("a")], default_action="a")


class TestIdleTimeout:
    def test_ttl_requires_declaration(self):
        table = make_table(idle_timeout=False)
        with pytest.raises(TableError):
            table.add_entry(1, "learn", ttl=1.0)

    def test_expiry_reported_after_idle_period(self):
        table = make_table(idle_timeout=True)
        table.add_entry(1, "learn", ttl=1.0, now=0.0)
        assert table.expired_entries(now=0.5) == []
        expired = table.expired_entries(now=1.5)
        assert [entry.key for entry in expired] == [1]

    def test_hit_refreshes_idle_timer(self):
        table = make_table(idle_timeout=True)
        table.add_entry(1, "learn", ttl=1.0, now=0.0)
        table.lookup(1, now=0.9)
        assert table.expired_entries(now=1.5) == []
        assert table.expired_entries(now=2.0) != []

    def test_reset_entry_ttl(self):
        table = make_table(idle_timeout=True)
        table.add_entry(1, "learn", ttl=1.0, now=0.0)
        table.reset_entry_ttl(1, now=0.9)
        assert table.expired_entries(now=1.5) == []

    def test_entries_without_ttl_never_expire(self):
        table = make_table(idle_timeout=True)
        table.add_entry(1, "learn", now=0.0)
        assert table.expired_entries(now=1e9) == []

    def test_hit_statistics(self):
        table = make_table()
        table.add_entry(1, "learn")
        table.lookup(1)
        table.lookup(1)
        table.lookup(2)
        assert table.lookups == 3
        assert table.hits == 2
        assert table.get_entry(1).hit_count == 2


class TestActionHandlers:
    def test_apply_invokes_handler(self):
        seen = []
        table = MatchActionTable(
            name="t",
            key_bits=8,
            size=4,
            actions=[
                ActionSpec("record", ("value",), handler=lambda value, ctx: seen.append((value, ctx))),
                ActionSpec("NoAction"),
            ],
            default_action="NoAction",
        )
        table.add_entry(1, "record", {"value": 42})
        table.apply(1, ctx="context")
        assert seen == [(42, "context")]
        table.apply(9, ctx="context")  # miss -> NoAction, no handler
        assert len(seen) == 1


class TestTernaryMatching:
    def make_ternary(self):
        return MatchActionTable(
            name="forward",
            key_bits=8,
            size=4,
            actions=[ActionSpec("to_port", ("port",))],
            default_action="NoAction",
            match_kind=MatchKind.TERNARY,
        )

    def test_priority_order(self):
        table = self.make_ternary()
        table.add_entry(0x10, "to_port", {"port": 1}, mask=0xF0, priority=1)
        table.add_entry(0x12, "to_port", {"port": 2}, mask=0xFF, priority=10)
        assert table.lookup(0x12).params["port"] == 2
        assert table.lookup(0x15).params["port"] == 1
        assert not table.lookup(0x25).hit

    def test_ternary_requires_integer_keys(self):
        table = self.make_ternary()
        table.add_entry(0x10, "to_port", {"port": 1}, mask=0xF0)
        with pytest.raises(TableError):
            table.lookup("string-key")

    def test_ternary_delete(self):
        table = self.make_ternary()
        table.add_entry(0x10, "to_port", {"port": 1}, mask=0xF0)
        table.delete_entry(0x10)
        assert len(table) == 0
        with pytest.raises(TableError):
            table.delete_entry(0x10)

    def test_get_entry_requires_exact_table(self):
        table = self.make_ternary()
        with pytest.raises(TableError):
            table.get_entry(1)
