"""Tests for the P4-style parser/deparser machinery."""

import pytest

from repro.exceptions import ParserError
from repro.tofino.parser import (
    ACCEPT,
    REJECT,
    Deparser,
    Header,
    HeaderType,
    Parser,
    ParserState,
)

ETHERNET = HeaderType("ethernet_h", [("dst", 48), ("src", 48), ("ether_type", 16)])
SMALL = HeaderType("small_h", [("flag", 1), ("value", 15)])


class TestHeaderType:
    def test_totals(self):
        assert ETHERNET.total_bits == 112
        assert ETHERNET.total_bytes == 14
        assert SMALL.total_bytes == 2

    def test_field_width_lookup(self):
        assert ETHERNET.field_width("ether_type") == 16
        with pytest.raises(ParserError):
            ETHERNET.field_width("missing")

    def test_must_be_byte_aligned(self):
        # The alignment rule is a Tofino constraint, surfaced as such.
        from repro.exceptions import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            HeaderType("bad", [("x", 3)])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ParserError):
            HeaderType("bad", [("x", 8), ("x", 8)])

    def test_empty_rejected(self):
        with pytest.raises(ParserError):
            HeaderType("bad", [])

    def test_instantiate(self):
        header = SMALL.instantiate(flag=1, value=300)
        assert header.valid
        assert header["flag"] == 1
        assert header["value"] == 300


class TestHeader:
    def test_field_width_enforced(self):
        header = Header(SMALL)
        header["flag"] = 1
        with pytest.raises(ParserError):
            header["flag"] = 2
        with pytest.raises(ParserError):
            header["missing"] = 1
        with pytest.raises(ParserError):
            _ = header["missing"]

    def test_bytes_roundtrip(self):
        header = SMALL.instantiate(flag=1, value=0x1234)
        data = header.to_bytes()
        assert len(data) == 2
        parsed = Header(SMALL)
        parsed.from_bytes(data)
        assert parsed.valid
        assert parsed["flag"] == 1
        assert parsed["value"] == 0x1234

    def test_from_bytes_length_check(self):
        header = Header(SMALL)
        with pytest.raises(ParserError):
            header.from_bytes(b"\x00")

    def test_repr(self):
        assert "invalid" in repr(Header(SMALL))
        assert "valid" in repr(SMALL.instantiate(flag=0, value=1))


def build_parser():
    return Parser(
        [
            ParserState(
                name="start",
                extract=("ethernet", ETHERNET),
                select_field=("ethernet", "ether_type"),
                transitions={0x1234: "parse_small", 0xDEAD: REJECT},
                default=ACCEPT,
            ),
            ParserState(name="parse_small", extract=("small", SMALL)),
        ]
    )


class TestParser:
    def test_parse_with_transition(self):
        frame = bytes(6) + bytes(6) + (0x1234).to_bytes(2, "big") + b"\x80\x05" + b"rest"
        packet = build_parser().parse(frame)
        assert packet.has_valid("ethernet")
        assert packet.has_valid("small")
        assert packet.header("small")["flag"] == 1
        assert packet.header("small")["value"] == 5
        assert packet.payload == b"rest"

    def test_default_transition_accepts(self):
        frame = bytes(6) + bytes(6) + (0x0800).to_bytes(2, "big") + b"payload"
        packet = build_parser().parse(frame)
        assert packet.has_valid("ethernet")
        assert not packet.has_valid("small")
        assert packet.payload == b"payload"

    def test_reject_transition(self):
        frame = bytes(6) + bytes(6) + (0xDEAD).to_bytes(2, "big")
        parser = build_parser()
        with pytest.raises(ParserError):
            parser.parse(frame)
        assert parser.packets_rejected == 1

    def test_truncated_packet(self):
        parser = build_parser()
        with pytest.raises(ParserError):
            parser.parse(bytes(10))
        frame = bytes(6) + bytes(6) + (0x1234).to_bytes(2, "big") + b"\x80"
        with pytest.raises(ParserError):
            parser.parse(frame)

    def test_missing_header_access(self):
        frame = bytes(6) + bytes(6) + (0x0800).to_bytes(2, "big")
        packet = build_parser().parse(frame)
        with pytest.raises(ParserError):
            packet.header("small")

    def test_undefined_state_and_loops_detected(self):
        with pytest.raises(ParserError):
            Parser([ParserState(name="start", default="nowhere")]).parse(b"")
        looping = Parser(
            [
                ParserState(name="start", default="again"),
                ParserState(name="again", default="start"),
            ]
        )
        with pytest.raises(ParserError):
            looping.parse(b"")

    def test_start_state_must_exist(self):
        with pytest.raises(ParserError):
            Parser([ParserState(name="s0")], start="other")

    def test_parse_counter(self):
        parser = build_parser()
        frame = bytes(6) + bytes(6) + (0x0800).to_bytes(2, "big")
        parser.parse(frame)
        parser.parse(frame)
        assert parser.packets_parsed == 2


class TestDeparser:
    def test_emits_valid_headers_in_order(self):
        frame = bytes(6) + bytes(5) + b"\x01" + (0x1234).to_bytes(2, "big") + b"\x80\x05" + b"tail"
        packet = build_parser().parse(frame)
        out = Deparser(["ethernet", "small"]).emit(packet)
        assert out == frame

    def test_skips_invalid_headers(self):
        frame = bytes(6) + bytes(6) + (0x0800).to_bytes(2, "big") + b"tail"
        packet = build_parser().parse(frame)
        out = Deparser(["ethernet", "small"]).emit(packet)
        assert out == frame

    def test_header_rewrite_changes_output(self):
        frame = bytes(6) + bytes(6) + (0x1234).to_bytes(2, "big") + b"\x80\x05"
        packet = build_parser().parse(frame)
        packet.header("small").valid = False
        out = Deparser(["ethernet", "small"]).emit(packet)
        assert out == frame[:14]

    def test_requires_order(self):
        with pytest.raises(ParserError):
            Deparser([])
