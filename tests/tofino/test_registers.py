"""Tests for registers and register actions."""

import pytest

from repro.exceptions import RegisterError
from repro.tofino.registers import Register, RegisterAction, RegisterArray


class TestRegister:
    def test_read_write(self):
        register = Register(width=16, initial=5)
        assert register.read() == 5
        register.write(0xFFFF)
        assert register.value == 0xFFFF

    def test_width_enforced(self):
        register = Register(width=4)
        with pytest.raises(RegisterError):
            register.write(16)
        with pytest.raises(RegisterError):
            Register(width=4, initial=16)
        with pytest.raises(RegisterError):
            Register(width=0)


class TestRegisterArray:
    def test_basic_access(self):
        array = RegisterArray(size=8, width=8, initial=1)
        assert array.read(0) == 1
        array.write(3, 200)
        assert array.read(3) == 200
        assert array.dump()[3] == 200

    def test_bounds_and_width_checks(self):
        array = RegisterArray(size=4, width=8)
        with pytest.raises(RegisterError):
            array.read(4)
        with pytest.raises(RegisterError):
            array.write(0, 256)
        with pytest.raises(RegisterError):
            RegisterArray(size=0, width=8)
        with pytest.raises(RegisterError):
            RegisterArray(size=4, width=8, initial=300)

    def test_clear(self):
        array = RegisterArray(size=4, width=8, initial=7)
        array.clear()
        assert array.dump() == [0, 0, 0, 0]
        with pytest.raises(RegisterError):
            array.clear(value=256)

    def test_execute_counts_data_plane_accesses(self):
        array = RegisterArray(size=4, width=8)
        array.execute(0, RegisterAction.increment())
        array.execute(0, RegisterAction.increment())
        array.read(0)  # control-plane read, not counted
        assert array.accesses == 2
        assert array.read(0) == 2


class TestRegisterAction:
    def test_read_only(self):
        array = RegisterArray(size=2, width=8, initial=9)
        assert array.execute(1, RegisterAction.read_only()) == 9
        assert array.read(1) == 9

    def test_overwrite_returns_previous(self):
        array = RegisterArray(size=2, width=8, initial=9)
        assert array.execute(0, RegisterAction.overwrite(42)) == 9
        assert array.read(0) == 42

    def test_increment_with_modulo(self):
        array = RegisterArray(size=1, width=8, initial=254)
        action = RegisterAction.increment(amount=1, modulo=256)
        assert array.execute(0, action) == 255
        assert array.execute(0, action) == 0

    def test_custom_action(self):
        array = RegisterArray(size=1, width=16)
        saturating_add = RegisterAction(
            lambda value: (min(value + 1000, 0xFFFF), value), name="sat-add"
        )
        array.execute(0, saturating_add)
        for _ in range(100):
            array.execute(0, saturating_add)
        assert array.read(0) == 0xFFFF

    def test_action_result_validation(self):
        array = RegisterArray(size=1, width=8)
        bad_shape = RegisterAction(lambda value: value)
        with pytest.raises(RegisterError):
            array.execute(0, bad_shape)
        overflowing = RegisterAction(lambda value: (512, None))
        with pytest.raises(RegisterError):
            array.execute(0, overflowing)
        with pytest.raises(RegisterError):
            RegisterAction("not callable")
