"""Tests for the gzip, exact-deduplication and no-op baselines."""

import pytest

from repro.baselines.dedup import ExactDedupBaseline
from repro.baselines.gzip_baseline import GzipBaseline
from repro.baselines.null import NullBaseline
from repro.exceptions import ReproError


class TestGzipBaseline:
    def test_whole_file_compression_of_redundant_data(self):
        baseline = GzipBaseline()
        chunks = [bytes([i % 4] * 32) for i in range(1000)]
        result = baseline.compress_chunks(chunks)
        assert result.original_bytes == 32000
        assert result.compression_ratio < 0.05
        assert result.savings_percent > 95

    def test_incompressible_data(self):
        import random

        rng = random.Random(1)
        data = bytes(rng.getrandbits(8) for _ in range(4096))
        result = GzipBaseline().compress_bytes(data)
        assert result.compression_ratio > 0.9

    def test_roundtrip(self):
        data = b"zipline" * 100
        assert GzipBaseline().roundtrip_bytes(data) == data

    def test_per_chunk_mode_is_much_worse_for_small_chunks(self, rng):
        # Realistic (high-entropy) 32-byte chunks: compressing each chunk on
        # its own cannot exploit cross-chunk redundancy, which is the paper's
        # argument for GD on small data.
        base = rng.getrandbits(256)
        chunks = [
            (base ^ (1 << rng.randrange(256))).to_bytes(32, "big")
            for _ in range(200)
        ]
        whole = GzipBaseline().compress_chunks(chunks)
        per_chunk = GzipBaseline().compress_per_chunk(chunks)
        assert per_chunk.per_chunk
        assert per_chunk.compression_ratio > whole.compression_ratio
        assert per_chunk.compression_ratio > 0.9

    def test_streaming_matches_concatenated(self):
        chunks = [bytes([i % 7] * 32) for i in range(500)]
        streaming = GzipBaseline().compressed_size_streaming(chunks)
        whole = GzipBaseline().compress_chunks(chunks)
        assert streaming.original_bytes == whole.original_bytes
        assert abs(streaming.compressed_bytes - whole.compressed_bytes) < 64

    def test_level_validation(self):
        with pytest.raises(ReproError):
            GzipBaseline(level=0)
        with pytest.raises(ReproError):
            GzipBaseline(level=10)

    def test_empty_input(self):
        assert GzipBaseline().compress_bytes(b"").compression_ratio == 0.0


class TestExactDedup:
    def test_identical_chunks_deduplicate(self):
        baseline = ExactDedupBaseline(identifier_bits=15)
        chunks = [b"\x01" * 32] * 100
        result = baseline.run(chunks)
        assert result.duplicate_chunks == 99
        assert result.duplicate_fraction == pytest.approx(0.99)
        # 1 full chunk + 99 × 2-byte references
        assert result.transmitted_bytes == 32 + 99 * 2
        assert result.compression_ratio < 0.1

    def test_gd_like_noisy_chunks_do_not_deduplicate(self, rng):
        # Single-bit noise defeats exact deduplication while GD still maps
        # every chunk to the same basis — the core motivation for GD.
        from repro.core.codec import GDCodec

        baseline = ExactDedupBaseline(identifier_bits=15)
        codec = GDCodec(order=8, identifier_bits=15, alignment_padding_bits=8)
        basis = rng.getrandbits(247)
        codeword = codec.transform.code.encode(basis)
        chunks = [
            (codeword ^ (1 << rng.randrange(255))).to_bytes(32, "big")
            for _ in range(200)
        ]
        dedup_result = baseline.run(chunks)
        gd_result = codec.compress(b"".join(chunks))
        assert gd_result.compressed_record_fraction > 0.95
        assert dedup_result.duplicate_fraction < 0.6
        assert gd_result.compression_ratio < dedup_result.compression_ratio

    def test_static_mode_does_not_learn(self):
        baseline = ExactDedupBaseline()
        result = baseline.run([b"\x01" * 32] * 10, learn=False)
        assert result.duplicate_chunks == 0
        assert len(baseline.dictionary) == 0

    def test_preload_and_reset(self):
        baseline = ExactDedupBaseline()
        baseline.preload([b"\x01" * 32])
        result = baseline.run([b"\x01" * 32] * 5, learn=False)
        assert result.duplicate_chunks == 5
        baseline.reset()
        assert len(baseline.dictionary) == 0

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            ExactDedupBaseline(identifier_bits=0)
        with pytest.raises(ReproError):
            ExactDedupBaseline(alignment_padding_bits=-1)

    def test_empty_run(self):
        result = ExactDedupBaseline().run([])
        assert result.compression_ratio == 0.0
        assert result.duplicate_fraction == 0.0


class TestNullBaseline:
    def test_identity_accounting(self):
        result = NullBaseline().run([b"\x00" * 32] * 10)
        assert result.chunks == 10
        assert result.original_bytes == 320
        assert result.transmitted_bytes == 320
        assert result.compression_ratio == 1.0

    def test_empty(self):
        assert NullBaseline().run([]).compression_ratio == 0.0
