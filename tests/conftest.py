"""Shared fixtures for the test suite.

Most tests use small Hamming orders (m = 3 or 4) so syndrome tables stay
tiny and failures are easy to read; the paper's configuration (m = 8,
256-bit chunks, 15-bit identifiers) has its own fixture used by the tests
that check paper-specific numbers.
"""

from __future__ import annotations

import random

import pytest

from repro.core.hamming import HammingCode
from repro.core.transform import GDTransform


@pytest.fixture(scope="session")
def hamming_7_4() -> HammingCode:
    """The (7, 4) Hamming code of Table 2."""
    return HammingCode(3)


@pytest.fixture(scope="session")
def hamming_15_11() -> HammingCode:
    """The (15, 11) Hamming code."""
    return HammingCode(4)


@pytest.fixture(scope="session")
def paper_code() -> HammingCode:
    """The paper's (255, 247) Hamming code."""
    return HammingCode(8)


@pytest.fixture(scope="session")
def small_transform() -> GDTransform:
    """A small GD transform (m = 4, 16-bit chunks) for exhaustive tests."""
    return GDTransform(order=4)


@pytest.fixture(scope="session")
def paper_transform() -> GDTransform:
    """The paper's GD transform (m = 8, 256-bit chunks)."""
    return GDTransform(order=8)


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG for tests that need randomness."""
    return random.Random(0xC0FFEE)


def make_clustered_chunks(transform: GDTransform, bases, count, seed=0):
    """Chunks that genuinely share the given bases (codeword ± one bit)."""
    generator = random.Random(seed)
    code = transform.code
    chunks = []
    for index in range(count):
        basis = bases[index % len(bases)]
        codeword = code.encode(basis)
        position = generator.randrange(code.n + 1)
        body = codeword if position == code.n else codeword ^ (1 << position)
        prefix = generator.getrandbits(transform.prefix_bits) if transform.prefix_bits else 0
        value = (prefix << code.n) | body
        chunks.append(value.to_bytes(transform.chunk_bytes, "big"))
    return chunks


@pytest.fixture(scope="session")
def clustered_chunk_factory():
    """Factory fixture exposing :func:`make_clustered_chunks` to tests."""
    return make_clustered_chunks
