"""Tests for the statistics, experiment-runner and reporting helpers."""

import json

import pytest

from repro.analysis.experiment import ExperimentRunner
from repro.analysis.reporting import (
    ComparisonRow,
    comparison_table,
    format_table,
    horizontal_bars,
    save_results_json,
)
from repro.analysis.statistics import (
    confidence_interval_95,
    mean,
    standard_deviation,
    summarize,
)
from repro.exceptions import ReproError


class TestStatistics:
    def test_mean_and_std(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert mean(samples) == 2.5
        assert standard_deviation(samples) == pytest.approx(1.29099, rel=1e-4)

    def test_single_sample(self):
        assert standard_deviation([5.0]) == 0.0
        assert confidence_interval_95([5.0]) == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ReproError):
            mean([])
        with pytest.raises(ReproError):
            standard_deviation([])
        with pytest.raises(ReproError):
            confidence_interval_95([])
        with pytest.raises(ReproError):
            summarize([])

    def test_confidence_interval_with_t_quantile(self):
        # 10 samples -> t(9) = 2.262
        samples = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.0]
        expected = 2.262 * standard_deviation(samples) / (10 ** 0.5)
        assert confidence_interval_95(samples) == pytest.approx(expected)

    def test_large_sample_uses_normal_quantile(self):
        samples = [float(i % 5) for i in range(100)]
        expected = 1.96 * standard_deviation(samples) / 10.0
        assert confidence_interval_95(samples) == pytest.approx(expected)

    def test_summary_formatting_and_contains(self):
        summary = summarize([1.7, 1.8, 1.75, 1.85, 1.72])
        text = summary.format("ms")
        assert "±" in text and "ms" in text
        assert summary.contains(summary.mean)
        assert not summary.contains(summary.mean + 10 * summary.ci95 + 1)
        assert summary.as_dict()["count"] == 5
        assert summary.minimum == 1.7
        assert summary.maximum == 1.85


class TestExperimentRunner:
    def test_runs_the_paper_repetition_count(self):
        runner = ExperimentRunner()
        result = runner.run("probe", lambda index: float(index), unit="s")
        assert result.summary.count == 10
        assert len(result.samples) == 10
        assert "probe" in result.format()

    def test_run_scenarios_and_report(self):
        runner = ExperimentRunner(repetitions=3)
        results = runner.run_scenarios(
            {"a": lambda i: 1.0, "b": lambda i: 2.0}, unit="Gbit/s"
        )
        assert [r.name for r in results] == ["a", "b"]
        report = runner.report()
        assert "a:" in report and "b:" in report

    def test_validation(self):
        with pytest.raises(ReproError):
            ExperimentRunner(repetitions=0)
        with pytest.raises(ReproError):
            ExperimentRunner().run("bad", "not callable")


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"], [["alpha", 1.23456], ["b", 2]], title="T")
        assert "T" in text
        assert "alpha" in text
        assert "1.235" in text

    def test_format_table_validation(self):
        with pytest.raises(ReproError):
            format_table([], [])
        with pytest.raises(ReproError):
            format_table(["a"], [["x", "y"]])

    def test_horizontal_bars(self):
        chart = horizontal_bars(
            {"Original data": 1.0, "Static table": 0.09},
            width=20,
            annotate={"Static table": "(paper: 0.09)"},
        )
        assert "Original data" in chart
        assert "█" in chart
        assert "(paper: 0.09)" in chart
        with pytest.raises(ReproError):
            horizontal_bars({}, width=10)
        with pytest.raises(ReproError):
            horizontal_bars({"a": 1.0}, width=0)

    def test_comparison_table(self):
        rows = [
            ComparisonRow("static ratio", 0.09, 0.094),
            ComparisonRow("gzip ratio", 0.09, None),
            ComparisonRow("n/a paper", None, 1.0),
        ]
        text = comparison_table(rows, title="Figure 3")
        assert "Figure 3" in text
        assert "+4.4 %" in text
        assert "n/a" in text
        assert rows[0].relative_error == pytest.approx(0.0444, rel=0.01)
        assert rows[1].relative_error is None

    def test_save_results_json(self, tmp_path):
        path = save_results_json(tmp_path / "out" / "results.json", {"ratio": 0.09})
        loaded = json.loads(path.read_text())
        assert loaded["ratio"] == 0.09
