"""Tests for the link/throughput/latency models (Figures 4 and 5)."""

import pytest

from repro.exceptions import ReproError
from repro.perfmodel.latency import LatencyComponents, LatencyModel
from repro.perfmodel.linkmodel import (
    ImpairmentModel,
    LinkModel,
    PathModel,
    SwitchModel,
    TrafficGeneratorModel,
)
from repro.perfmodel.throughput import (
    FIGURE4_FRAME_SIZES,
    SwitchOperation,
    ThroughputModel,
)
from repro.tofino.parser import Deparser, HeaderType, Parser, ParserState
from repro.tofino.pipeline import Pipeline


class TestLinkModel:
    def test_line_rate_packet_budgets(self):
        link = LinkModel(speed_bps=100e9)
        # Classic 100 GbE numbers: ~148.8 Mpps for minimum-size frames
        # (60 B + 4 B FCS = 64 B on the wire plus preamble and IFG), and
        # ~8.1 Mpps for full 1518-byte frames.
        assert link.max_packet_rate(60) == pytest.approx(148.8e6, rel=0.01)
        assert link.max_packet_rate(1514) == pytest.approx(8.12e6, rel=0.01)

    def test_wire_bits_includes_overheads(self):
        link = LinkModel()
        assert link.wire_bits(60) == 84 * 8

    def test_throughput_and_utilisation(self):
        link = LinkModel()
        assert link.throughput_bps(1500, 1e6) == pytest.approx(12e9)
        assert link.utilisation(1514, link.max_packet_rate(1514)) == pytest.approx(1.0)
        with pytest.raises(ReproError):
            link.throughput_bps(1500, -1)

    def test_serialisation_delay(self):
        # 1514-byte frame + 4 B FCS + 8 B preamble + 12 B IFG = 1538 bytes.
        assert LinkModel().serialisation_delay(1514) == pytest.approx(
            1538 * 8 / 100e9
        )

    def test_invalid_speed(self):
        with pytest.raises(ReproError):
            LinkModel(speed_bps=0)


class TestGeneratorAndSwitch:
    def test_generator_small_packet_cap(self):
        generator = TrafficGeneratorModel()
        assert generator.max_rate_for_frame(64) == pytest.approx(7e6)

    def test_generator_pcie_cap_for_jumbo(self):
        generator = TrafficGeneratorModel()
        assert generator.max_rate_for_frame(9000) < 7e6

    def test_generator_invalid_frame(self):
        with pytest.raises(ReproError):
            TrafficGeneratorModel().max_rate_for_frame(0)

    def test_switch_packet_budget(self):
        switch = SwitchModel()
        assert switch.max_packet_rate() == pytest.approx(4.7e9)
        assert switch.max_packet_rate(ports_active=32) == pytest.approx(4.7e9 / 32)
        with pytest.raises(ReproError):
            switch.max_packet_rate(0)


class TestPathModel:
    def test_bottlenecks_by_frame_size(self):
        path = PathModel()
        assert path.bottleneck(64) == "generator"
        assert path.bottleneck(1500) == "generator"
        assert path.bottleneck(9000) == "link"

    def test_small_frames_generator_limited(self):
        path = PathModel()
        assert path.achievable_packet_rate(64) == pytest.approx(7e6)
        assert path.achievable_throughput_bps(64) == pytest.approx(3.584e9)

    def test_jumbo_frames_reach_line_rate(self):
        path = PathModel()
        throughput = path.achievable_throughput_bps(9000)
        assert throughput > 99e9
        assert throughput < 100e9

    def test_recirculating_program_halves_the_rate(self):
        path = PathModel(switch=SwitchModel(line_rate_guaranteed=False))
        assert path.achievable_packet_rate(9000) < PathModel().achievable_packet_rate(9000)


def _line_rate_unsafe_pipeline():
    parser = Parser([ParserState(name="start", extract=("eth", HeaderType("eth", [("x", 112)])))])
    pipeline = Pipeline("p", parser, lambda ctx: None, Deparser(["eth"]))
    pipeline.record_recirculation()
    return pipeline


class TestThroughputModel:
    def test_figure4_shape(self):
        samples = ThroughputModel().figure4()
        assert len(samples) == 9
        by_key = {(s.operation, s.frame_bytes): s for s in samples}
        # encode and decode are indistinguishable from no_op (paper claim)
        for frame_bytes in FIGURE4_FRAME_SIZES:
            no_op = by_key[("no_op", frame_bytes)]
            assert by_key[("encode", frame_bytes)].throughput_gbps == no_op.throughput_gbps
            assert by_key[("decode", frame_bytes)].throughput_gbps == no_op.throughput_gbps
        # 64 B and 1500 B are generator-bound near 7 Mpps; 9 kB reaches line rate
        assert by_key[("no_op", 64)].packet_rate_mpps == pytest.approx(7.0, rel=0.01)
        assert by_key[("no_op", 1500)].packet_rate_mpps == pytest.approx(7.0, rel=0.01)
        assert by_key[("no_op", 9000)].throughput_gbps > 99
        assert by_key[("no_op", 64)].bottleneck == "generator"

    def test_noisy_measurements_never_exceed_the_model(self):
        model = ThroughputModel(measurement_noise=0.05, seed=1)
        samples = model.repeated_measurements(SwitchOperation("no_op"), 1500, repetitions=10)
        central = model.measure(SwitchOperation("no_op"), 1500)
        assert len(samples) == 10
        assert all(s.throughput_gbps <= central.throughput_gbps for s in samples)

    def test_line_rate_model_rejects_recirculating_programs(self):
        model = ThroughputModel()
        operation = SwitchOperation("encode", pipeline=_line_rate_unsafe_pipeline())
        with pytest.raises(ReproError):
            model.measure(operation, 1500)

    def test_validation(self):
        model = ThroughputModel()
        with pytest.raises(ReproError):
            model.measure(SwitchOperation("no_op"), 0)
        with pytest.raises(ReproError):
            model.repeated_measurements(SwitchOperation("no_op"), 64, repetitions=0)
        with pytest.raises(ReproError):
            ThroughputModel(measurement_noise=-1)

    def test_sample_as_dict(self):
        sample = ThroughputModel().measure(SwitchOperation("no_op"), 64)
        data = sample.as_dict()
        assert data["operation"] == "no_op"
        assert data["frame_bytes"] == 64


class TestLatencyModel:
    def test_rtt_in_paper_range(self):
        model = LatencyModel()
        rtt = model.round_trip_time_us("no_op")
        assert 8 < rtt < 16

    def test_operations_indistinguishable_by_default(self):
        model = LatencyModel()
        assert model.round_trip_time("encode") == model.round_trip_time("no_op")
        assert model.round_trip_time("decode") == model.round_trip_time("no_op")

    def test_extra_program_latency_is_visible_but_small(self):
        model = LatencyModel(extra_program_latency=0.2e-6)
        delta = model.round_trip_time("encode") - model.round_trip_time("no_op")
        assert delta == pytest.approx(0.4e-6)

    def test_samples_and_figure5(self):
        model = LatencyModel(seed=3)
        samples = model.samples("no_op", count=10)
        assert len(samples) == 10
        assert all(s.rtt_us >= model.round_trip_time_us("no_op") for s in samples)
        figure = model.figure5(count=5)
        assert set(figure) == {"no_op", "encode", "decode"}
        assert all(len(values) == 5 for values in figure.values())

    def test_validation(self):
        with pytest.raises(ReproError):
            LatencyModel(frame_bytes=0)
        with pytest.raises(ReproError):
            LatencyModel(extra_program_latency=-1)
        with pytest.raises(ReproError):
            LatencyModel(jitter_fraction=-1)
        with pytest.raises(ReproError):
            LatencyModel().samples(count=0)

    def test_components_one_way_cost(self):
        components = LatencyComponents()
        assert components.one_way_host_cost() == pytest.approx(
            components.host_transmit + components.nic_and_pcie + components.host_receive
        )


class TestImpairmentModel:
    def test_same_seed_same_decisions(self):
        first = ImpairmentModel(loss_probability=0.3, reorder_probability=0.2, seed=11)
        second = ImpairmentModel(loss_probability=0.3, reorder_probability=0.2, seed=11)
        decisions = [
            (first.should_drop(), first.reorder_penalty()) for _ in range(500)
        ]
        assert decisions == [
            (second.should_drop(), second.reorder_penalty()) for _ in range(500)
        ]
        assert any(drop for drop, _ in decisions)
        assert any(penalty > 0 for _, penalty in decisions)

    def test_different_seeds_diverge(self):
        first = ImpairmentModel(loss_probability=0.5, seed=1)
        second = ImpairmentModel(loss_probability=0.5, seed=2)
        assert [first.should_drop() for _ in range(200)] != [
            second.should_drop() for _ in range(200)
        ]

    def test_reset_rewinds_the_stream(self):
        model = ImpairmentModel(loss_probability=0.4, seed=5)
        first_pass = [model.should_drop() for _ in range(100)]
        model.reset()
        assert [model.should_drop() for _ in range(100)] == first_pass

    def test_fork_is_deterministic_and_independent(self):
        base = ImpairmentModel(loss_probability=0.4, seed=9)
        fork_a = base.fork(0)
        fork_b = base.fork(1)
        fork_a_again = ImpairmentModel(loss_probability=0.4, seed=9).fork(0)
        stream_a = [fork_a.should_drop() for _ in range(200)]
        assert stream_a == [fork_a_again.should_drop() for _ in range(200)]
        assert stream_a != [fork_b.should_drop() for _ in range(200)]
        with pytest.raises(ReproError):
            base.fork(-1)

    def test_lossless_shortcut_never_draws(self):
        model = ImpairmentModel(seed=3)
        assert model.lossless
        assert not model.should_drop()
        assert model.reorder_penalty() == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            ImpairmentModel(loss_probability=1.5)
        with pytest.raises(ReproError):
            ImpairmentModel(reorder_probability=-0.1)
        with pytest.raises(ReproError):
            ImpairmentModel(reorder_delay=-1e-6)
