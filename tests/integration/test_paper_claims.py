"""Shape checks against the numbers reported in the paper.

These tests assert the *reproduced shape* of every quantitative claim in the
evaluation: who wins, by roughly what factor, and where the crossovers fall.
Absolute hardware numbers (100 Gbit/s, microsecond RTTs) come from the
analytical models, so they match by construction — what is genuinely checked
here is that the GD pipeline, the workloads, the learning latency model and
the byte accounting land on the paper's figures when combined.
"""

import pytest

from repro.analysis.statistics import summarize
from repro.baselines import GzipBaseline
from repro.core.codec import GDCodec
from repro.perfmodel import LatencyModel, ThroughputModel
from repro.workloads import DnsQueryWorkload, SyntheticSensorWorkload
from repro.zipline import ZipLineDeployment

# Paper values (Figure 3 annotations and Section 7 text).
PAPER_NO_TABLE_RATIO = 1.03
PAPER_STATIC_RATIO = 0.09
PAPER_DYNAMIC_RATIO_SYNTHETIC = 0.11
PAPER_DYNAMIC_RATIO_DNS = 0.10
PAPER_GZIP_RATIO_SYNTHETIC = 0.09
PAPER_GZIP_RATIO_DNS = 0.08
PAPER_LEARNING_DELAY_MS = 1.77


@pytest.fixture(scope="module")
def synthetic_workload():
    return SyntheticSensorWorkload.paper_configuration(num_chunks=4000)


class TestFigure3Synthetic:
    def test_no_table_overhead(self, synthetic_workload):
        codec = GDCodec(order=8, mode="no_table", alignment_padding_bits=8)
        ratio = codec.compress(b"".join(synthetic_workload.chunks())).compression_ratio
        assert ratio == pytest.approx(PAPER_NO_TABLE_RATIO, abs=0.01)

    def test_static_table_ratio(self, synthetic_workload):
        codec = GDCodec(
            order=8, mode="static", static_bases=synthetic_workload.bases(),
            alignment_padding_bits=8,
        )
        ratio = codec.compress(b"".join(synthetic_workload.chunks())).compression_ratio
        assert ratio == pytest.approx(PAPER_STATIC_RATIO, abs=0.01)

    def test_gzip_ratio_is_comparable_to_zipline(self, synthetic_workload):
        gzip_ratio = GzipBaseline().compress_chunks(
            synthetic_workload.chunks()
        ).compression_ratio
        assert gzip_ratio == pytest.approx(PAPER_GZIP_RATIO_SYNTHETIC, abs=0.05)

    def test_dynamic_sits_between_static_and_no_table(self):
        # Scaled-down replay preserving the paper's time structure: the trace
        # duration equals the paper's (3.124 M chunks at 7 Mpkt/s ≈ 446 ms)
        # and the basis-discovery phase occupies the same fraction of it, so
        # the dynamic-learning penalty lands near the paper's 0.11.
        workload = SyntheticSensorWorkload(
            num_chunks=20_000, distinct_bases=16, seed=2020
        )
        chunks = workload.chunks()
        deployment = ZipLineDeployment(scenario="dynamic")
        packet_rate = len(chunks) / 0.446
        summary = deployment.replay_and_run(chunks, packet_rate=packet_rate)
        assert summary.compression_ratio == pytest.approx(
            PAPER_DYNAMIC_RATIO_SYNTHETIC, abs=0.03
        )
        assert summary.compression_ratio > 3 / 32  # strictly worse than static
        assert summary.compression_ratio < PAPER_NO_TABLE_RATIO


class TestFigure3Dns:
    def test_dns_dynamic_and_gzip_shapes(self):
        workload = DnsQueryWorkload(num_queries=30_000, distinct_names=300, seed=11)
        chunks = workload.chunks()
        gzip_ratio = GzipBaseline().compress_chunks(chunks).compression_ratio
        codec = GDCodec(order=8, identifier_bits=15, alignment_padding_bits=8)
        gd_ratio = codec.compress(b"".join(chunks)).compression_ratio
        # gzip is slightly better than ZipLine on DNS (0.08 vs 0.10), and
        # both sit far below 1.
        assert gd_ratio == pytest.approx(PAPER_DYNAMIC_RATIO_DNS, abs=0.03)
        assert gzip_ratio < gd_ratio
        assert gzip_ratio == pytest.approx(PAPER_GZIP_RATIO_DNS, abs=0.03)


class TestDynamicLearningDelay:
    def test_learning_delay_mean_and_ci(self):
        samples = []
        for repetition in range(10):
            deployment = ZipLineDeployment(scenario="dynamic", seed=repetition)
            chunk = SyntheticSensorWorkload(
                num_chunks=1, distinct_bases=1, seed=repetition
            ).chunks()[0]
            deployment.replay_chunks([chunk] * 4000, packet_rate=1e6)
            deployment.run()
            learning = deployment.learning_time()
            assert learning is not None
            samples.append(learning * 1e3)
        summary = summarize(samples)
        # Paper: (1.77 ± 0.08) ms.
        assert summary.mean == pytest.approx(PAPER_LEARNING_DELAY_MS, abs=0.15)
        assert summary.ci95 < 0.15


class TestFigure4Shape:
    def test_throughput_series(self):
        samples = ThroughputModel().figure4()
        by_key = {(s.operation, s.frame_bytes): s for s in samples}
        # encode == decode == no_op for every size (the headline claim)
        for size in (64, 1500, 9000):
            values = {
                by_key[(operation, size)].throughput_gbps
                for operation in ("no_op", "encode", "decode")
            }
            assert len(values) == 1
        # 64/1500 B generator-bound at ~7 Mpkt/s, jumbo frames at line rate
        assert by_key[("encode", 64)].packet_rate_mpps == pytest.approx(7.0, rel=0.01)
        assert by_key[("encode", 1500)].packet_rate_mpps == pytest.approx(7.0, rel=0.01)
        assert by_key[("encode", 64)].throughput_gbps < 5
        assert 80 < by_key[("encode", 1500)].throughput_gbps < 90
        assert by_key[("encode", 9000)].throughput_gbps > 99


class TestFigure5Shape:
    def test_latency_series(self):
        model = LatencyModel(seed=1)
        figure = model.figure5(count=10)
        means = {
            operation: summarize([s.rtt_us for s in samples]).mean
            for operation, samples in figure.items()
        }
        # all three operations land in the paper's 10–15 µs band and within
        # measurement noise of each other
        for value in means.values():
            assert 8 < value < 16
        spread = max(means.values()) - min(means.values())
        assert spread < 1.0
