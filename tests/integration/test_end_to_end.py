"""End-to-end integration tests crossing every package boundary."""

import pytest

from repro.baselines import ExactDedupBaseline, GzipBaseline
from repro.core.codec import GDCodec
from repro.workloads import ChunkTrace, DnsQueryWorkload, SyntheticSensorWorkload
from repro.zipline import DeploymentScenario, ZipLineDeployment


class TestWorkloadThroughDeployment:
    """Workload generator → pcap → deployment → receiver, losslessly."""

    def test_synthetic_trace_through_the_switch_pair(self, tmp_path):
        workload = SyntheticSensorWorkload(num_chunks=400, distinct_bases=20, seed=9)
        trace = workload.trace()

        # persist and reload through pcap, like the paper's tooling does
        pcap_path = tmp_path / "synthetic.pcap"
        trace.to_pcap(pcap_path, packet_rate=1e6)
        reloaded = ChunkTrace.from_pcap(pcap_path)
        assert reloaded.chunks == trace.chunks

        deployment = ZipLineDeployment(
            scenario=DeploymentScenario.STATIC, static_bases=workload.bases()
        )
        summary = deployment.replay_and_run(reloaded.chunks, packet_rate=1e6)
        assert deployment.verify_lossless(trace.chunks)
        assert summary.compression_ratio == pytest.approx(3 / 32)
        assert summary.compressed_packets == len(trace)

    def test_dns_trace_through_the_switch_pair(self):
        workload = DnsQueryWorkload(num_queries=300, distinct_names=30, seed=4)
        trace = workload.trace()
        deployment = ZipLineDeployment(scenario="dynamic")
        summary = deployment.replay_and_run(trace.chunks, packet_rate=5e4)
        assert deployment.verify_lossless(trace.chunks)
        assert summary.compressed_packets > 0
        assert summary.compression_ratio < 1.0

    def test_switch_counters_match_link_tap(self):
        workload = SyntheticSensorWorkload(num_chunks=200, distinct_bases=10, seed=3)
        deployment = ZipLineDeployment(
            scenario="static", static_bases=workload.bases()
        )
        deployment.replay_and_run(workload.chunks(), packet_rate=1e6)
        compressed_counter = deployment.encoder.counters.read("raw_to_compressed")
        assert compressed_counter.packets == 200
        assert deployment.link_tap.count_by_kind()[
            __import__("repro.net.packets", fromlist=["PacketKind"]).PacketKind.PROCESSED_COMPRESSED
        ] == 200
        decoded_counter = deployment.decoder.counters.read("compressed_to_raw")
        assert decoded_counter.packets == 200


class TestCodecAgainstDeployment:
    """The pure-software codec and the switch deployment must agree."""

    def test_static_ratios_agree(self):
        workload = SyntheticSensorWorkload(num_chunks=300, distinct_bases=15, seed=5)
        chunks = workload.chunks()

        codec = GDCodec(
            order=8,
            identifier_bits=15,
            mode="static",
            static_bases=workload.bases(),
            alignment_padding_bits=8,
        )
        codec_ratio = codec.compress(b"".join(chunks)).compression_ratio

        deployment = ZipLineDeployment(scenario="static", static_bases=workload.bases())
        deployment_ratio = deployment.replay_and_run(chunks, packet_rate=1e6).compression_ratio

        assert codec_ratio == pytest.approx(deployment_ratio)

    def test_no_table_ratios_agree(self):
        workload = SyntheticSensorWorkload(num_chunks=100, distinct_bases=5, seed=6)
        chunks = workload.chunks()
        codec = GDCodec(order=8, mode="no_table", alignment_padding_bits=8)
        codec_ratio = codec.compress(b"".join(chunks)).compression_ratio
        deployment = ZipLineDeployment(scenario="no_table")
        deployment_ratio = deployment.replay_and_run(chunks, packet_rate=1e6).compression_ratio
        assert codec_ratio == pytest.approx(deployment_ratio)


class TestBaselineComparisons:
    def test_gd_beats_exact_dedup_on_noisy_sensor_data(self):
        workload = SyntheticSensorWorkload(
            num_chunks=1000, distinct_bases=50, deviation_probability=0.9, seed=7
        )
        chunks = workload.chunks()
        gd = GDCodec(
            order=8, mode="static", static_bases=workload.bases(),
            alignment_padding_bits=8,
        ).compress(b"".join(chunks))
        dedup = ExactDedupBaseline(identifier_bits=15).run(chunks)
        assert gd.compression_ratio < dedup.compression_ratio

    def test_gzip_is_comparable_on_the_synthetic_trace(self):
        workload = SyntheticSensorWorkload(num_chunks=2000, distinct_bases=100, seed=8)
        chunks = workload.chunks()
        gd_ratio = GDCodec(
            order=8, mode="static", static_bases=workload.bases(),
            alignment_padding_bits=8,
        ).compress(b"".join(chunks)).compression_ratio
        gzip_ratio = GzipBaseline().compress_chunks(chunks).compression_ratio
        # the paper reports "circa 20 % difference"; allow a generous band
        assert gzip_ratio == pytest.approx(gd_ratio, rel=0.6)
