"""Name-based compressor registry: lookup, sniffing, extension."""

import pytest

from repro import registry
from repro.core.engine import (
    Compressor,
    DedupStreamCompressor,
    GDStreamCompressor,
    GzipStreamCompressor,
    NullStreamCompressor,
    compress_bytes,
    decompress_bytes,
)
from repro.exceptions import ReproError


class TestLookup:
    def test_all_builtins_registered(self):
        assert registry.names() == ["dedup", "gd", "gzip", "null"]

    @pytest.mark.parametrize("name", ["gd", "gzip", "dedup", "null"])
    def test_get_constructs_a_compressor(self, name):
        compressor = registry.get(name)
        assert isinstance(compressor, Compressor)
        assert compressor.name == name

    def test_get_is_case_insensitive(self):
        assert isinstance(registry.get("GD"), GDStreamCompressor)

    def test_get_forwards_parameters(self):
        compressor = registry.get("gzip", level=9)
        assert compressor.level == 9
        codec = registry.get("gd", identifier_bits=10).codec()
        assert codec.identifier_bits == 10

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ReproError, match="gd, gzip"):
            registry.get("zstd")

    def test_every_builtin_roundtrips_via_registry(self):
        data = bytes(range(256)) * 128
        for name in registry.names():
            blob = compress_bytes(registry.get(name), data)
            assert decompress_bytes(registry.get(name), blob) == data, name


class TestSniffing:
    @pytest.mark.parametrize(
        "name,factory",
        [
            ("gd", GDStreamCompressor),
            ("gzip", GzipStreamCompressor),
            ("dedup", DedupStreamCompressor),
            ("null", NullStreamCompressor),
        ],
    )
    def test_sniff_identifies_own_output(self, name, factory):
        blob = compress_bytes(factory(), b"hello world" * 10)
        assert registry.sniff(blob[:8]) == name

    def test_sniff_unknown_returns_none(self):
        assert registry.sniff(b"\x00\x01\x02\x03") is None

    def test_get_for_header_roundtrip(self):
        data = b"payload" * 100
        blob = compress_bytes(GzipStreamCompressor(), data)
        compressor = registry.get_for_header(blob[:8])
        assert decompress_bytes(compressor, blob) == data

    def test_get_for_header_unknown_raises(self):
        with pytest.raises(ReproError, match="unrecognised"):
            registry.get_for_header(b"\x00\x00\x00\x00")

    def test_magic_for(self):
        assert registry.magic_for("gzip") == b"\x1f\x8b"
        with pytest.raises(ReproError):
            registry.magic_for("zstd")


class TestExtension:
    def test_register_and_replace(self):
        class Custom(NullStreamCompressor):
            name = "custom"
            magic = b"CUST"

        registry.register("custom", Custom)
        try:
            assert "custom" in registry.names()
            assert registry.sniff(b"CUSTxxxx") == "custom"
            with pytest.raises(ReproError, match="already registered"):
                registry.register("custom", Custom)
            registry.register("custom", Custom, replace=True)
        finally:
            registry._FACTORIES.pop("custom", None)
            registry._MAGICS.pop("custom", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            registry.register("", NullStreamCompressor)
