"""Tests for the discrete-event simulator."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import MICROSECONDS, MILLISECONDS, Simulator
from repro.sim.events import Event


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(2.0, lambda: order.append("late"))
        simulator.schedule_at(1.0, lambda: order.append("early"))
        simulator.schedule_at(1.5, lambda: order.append("middle"))
        simulator.run()
        assert order == ["early", "middle", "late"]
        assert simulator.now == 2.0
        assert simulator.executed_events == 3

    def test_simultaneous_events_run_in_priority_then_fifo_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(1.0, lambda: order.append("first"), priority=1)
        simulator.schedule_at(1.0, lambda: order.append("urgent"), priority=0)
        simulator.schedule_at(1.0, lambda: order.append("second"), priority=1)
        simulator.run()
        assert order == ["urgent", "first", "second"]

    def test_schedule_in_and_now(self):
        simulator = Simulator()
        times = []
        simulator.schedule_in(5 * MILLISECONDS, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [pytest.approx(0.005)]

    def test_schedule_now_runs_after_current_event(self):
        simulator = Simulator()
        order = []

        def outer():
            order.append("outer")
            simulator.schedule_now(lambda: order.append("inner"))

        simulator.schedule_at(1.0, outer)
        simulator.run()
        assert order == ["outer", "inner"]
        assert simulator.now == 1.0

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_invalid_callback_rejected(self):
        with pytest.raises(SimulationError):
            Event.create(0.0, "not callable")

    def test_negative_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(start_time=-1.0)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        simulator = Simulator()
        ran = []
        handle = simulator.schedule_at(1.0, lambda: ran.append(True))
        handle.cancel()
        assert handle.cancelled
        simulator.run()
        assert ran == []

    def test_cancel_is_idempotent(self):
        simulator = Simulator()
        handle = simulator.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert simulator.run() == 0

    def test_handle_exposes_metadata(self):
        simulator = Simulator()
        handle = simulator.schedule_at(3.0, lambda: None, description="probe")
        assert handle.time == 3.0
        assert handle.description == "probe"


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        simulator = Simulator()
        ran = []
        simulator.schedule_at(1.0, lambda: ran.append(1))
        simulator.schedule_at(5.0, lambda: ran.append(5))
        executed = simulator.run(until=2.0)
        assert executed == 1
        assert ran == [1]
        assert simulator.now == 2.0
        simulator.run()
        assert ran == [1, 5]

    def test_run_for_advances_relative_duration(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        simulator.schedule_in(3.0, lambda: None)
        simulator.run_for(1.0)
        assert simulator.now == pytest.approx(2.0)

    def test_max_events_guard(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule_in(0.001, reschedule)

        simulator.schedule_in(0.001, reschedule)
        executed = simulator.run(max_events=10)
        assert executed == 10

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_reentrant_run_rejected(self):
        simulator = Simulator()

        def inner():
            simulator.run()

        simulator.schedule_at(1.0, inner)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_advance_to(self):
        simulator = Simulator()
        simulator.advance_to(4.0)
        assert simulator.now == 4.0
        with pytest.raises(SimulationError):
            simulator.advance_to(1.0)

    def test_advance_past_pending_event_rejected(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.advance_to(2.0)

    def test_reset(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        simulator.schedule_at(9.0, lambda: None)
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.pending_events == 0
        assert simulator.executed_events == 0

    def test_units_are_consistent(self):
        assert MILLISECONDS == pytest.approx(1e-3)
        assert MICROSECONDS == pytest.approx(1e-6)

    def test_nested_scheduling_chain_latency(self):
        # Mirrors how the control plane chains processing + 2 table writes.
        simulator = Simulator()
        finish_times = []

        def step_one():
            simulator.schedule_in(0.3e-3, step_two)

        def step_two():
            simulator.schedule_in(0.3e-3, lambda: finish_times.append(simulator.now))

        simulator.schedule_in(1.17e-3, step_one)
        simulator.run()
        assert finish_times[0] == pytest.approx(1.77e-3)
