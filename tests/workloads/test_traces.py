"""Tests for the trace container."""

import pytest

from repro.core.transform import GDTransform
from repro.exceptions import TraceError
from repro.workloads.traces import ChunkTrace


@pytest.fixture()
def trace():
    chunks = [bytes([i]) * 32 for i in range(10)] + [bytes([0]) * 32]
    return ChunkTrace(chunks, name="unit")


class TestConstruction:
    def test_basic_properties(self, trace):
        assert len(trace) == 11
        assert trace.chunk_bytes == 32
        assert trace.total_bytes == 11 * 32
        assert trace[0] == bytes(32)
        assert list(iter(trace))[1] == bytes([1]) * 32

    def test_rejects_empty_and_mixed_sizes(self):
        with pytest.raises(TraceError):
            ChunkTrace([])
        with pytest.raises(TraceError):
            ChunkTrace([b""])
        with pytest.raises(TraceError):
            ChunkTrace([b"\x00" * 32, b"\x00" * 16])

    def test_head(self, trace):
        assert len(trace.head(3)) == 3
        with pytest.raises(TraceError):
            trace.head(0)

    def test_concatenated(self, trace):
        assert len(trace.concatenated()) == trace.total_bytes


class TestStats:
    def test_distinct_counts(self, trace):
        stats = trace.stats()
        assert stats.chunks == 11
        assert stats.distinct_chunks == 10  # the zero chunk appears twice
        assert stats.distinct_bases is None

    def test_distinct_bases_with_transform(self, trace):
        transform = GDTransform(order=8)
        stats = trace.stats(transform)
        assert stats.distinct_bases == len(trace.distinct_bases(transform))
        assert stats.distinct_bases <= stats.distinct_chunks

    def test_distinct_bases_requires_matching_chunk_size(self):
        trace = ChunkTrace([b"\x00" * 16])
        with pytest.raises(TraceError):
            trace.distinct_bases(GDTransform(order=8))

    def test_stats_as_dict(self, trace):
        assert trace.stats().as_dict()["chunks"] == 11


class TestRegistryRouting:
    def test_compression_ratio_with_every_codec(self, trace):
        for codec in ("gd", "gzip", "dedup", "null"):
            ratio = trace.compression_ratio_with(codec)
            assert ratio > 0
        # A trace of 11 chunks over 10 distinct values deduplicates a bit.
        assert trace.compression_ratio_with("dedup") < 1.0
        assert trace.compression_ratio_with("null") > 1.0  # magic overhead only

    def test_parameters_forwarded(self, trace):
        assert trace.compression_ratio_with("gzip", level=1) > 0


class TestReplayHelpers:
    def test_timestamps_and_duration(self, trace):
        stamps = trace.timestamps(packet_rate=1000.0)
        assert stamps[0] == 0.0
        assert stamps[1] == pytest.approx(0.001)
        assert trace.duration(packet_rate=1000.0) == pytest.approx(0.011)
        with pytest.raises(TraceError):
            trace.timestamps(0)
        with pytest.raises(TraceError):
            trace.duration(0)


class TestPcapRoundTrip:
    def test_to_and_from_pcap(self, trace, tmp_path):
        path = tmp_path / "trace.pcap"
        count = trace.to_pcap(path, packet_rate=1e6)
        assert count == len(trace)
        loaded = ChunkTrace.from_pcap(path)
        assert loaded.chunks == trace.chunks

    def test_frames_carry_the_raw_chunk_ethertype(self, trace):
        from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

        frames = trace.to_frames()
        assert all(frame.ethertype == ETHERTYPE_RAW_CHUNK for frame in frames)
        assert all(frame.payload_bytes == 32 for frame in frames)

    def test_from_pcap_without_chunks_rejected(self, tmp_path):
        from repro.net.pcap import PcapPacket, write_pcap
        from repro.net.ethernet import EthernetFrame, EtherType
        from repro.net.mac import MacAddress

        path = tmp_path / "nochunks.pcap"
        frame = EthernetFrame(
            MacAddress("02:00:00:00:00:01"),
            MacAddress("02:00:00:00:00:02"),
            EtherType.IPV4,
            b"x",
        )
        write_pcap(path, [PcapPacket(0.0, frame.to_bytes())])
        with pytest.raises(TraceError):
            ChunkTrace.from_pcap(path)

    def test_invalid_pcap_rate(self, trace, tmp_path):
        with pytest.raises(TraceError):
            trace.to_pcap(tmp_path / "x.pcap", packet_rate=0)

    def test_nanosecond_pcap_preserves_replay_rate(self, trace, tmp_path):
        from repro.net.pcap import PcapReader

        path = tmp_path / "nano.pcap"
        trace.to_pcap(path, packet_rate=1e6, nanosecond=True)
        with PcapReader(path) as reader:
            assert reader.nanosecond
            packets = reader.read_all()
        # 1 Mpkt/s spacing (1 us) survives exactly under nanosecond stamps.
        assert packets[1].timestamp - packets[0].timestamp == pytest.approx(
            1e-6, abs=1e-9
        )
        assert ChunkTrace.from_pcap(path).chunks == trace.chunks
