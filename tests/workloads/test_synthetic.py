"""Tests for the synthetic sensor workload."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.synthetic import PAPER_SYNTHETIC_CHUNKS, SyntheticSensorWorkload


class TestConfiguration:
    def test_paper_scale_constant(self):
        assert PAPER_SYNTHETIC_CHUNKS == 3_124_000

    def test_paper_configuration_object(self):
        workload = SyntheticSensorWorkload.paper_configuration(num_chunks=1000)
        assert workload.num_chunks == 1000
        assert workload.order == 8
        assert workload.chunk_bytes == 32

    def test_total_bytes(self):
        workload = SyntheticSensorWorkload(num_chunks=100)
        assert workload.total_bytes == 3200

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(num_chunks=0)
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(distinct_bases=0)
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(locality=1.5)
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(deviation_probability=-0.1)
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(noise_fraction=2.0)
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(num_devices=0)
        with pytest.raises(WorkloadError):
            SyntheticSensorWorkload(sample_spread=-1)


class TestGeneration:
    def test_deterministic_for_a_seed(self):
        first = SyntheticSensorWorkload(num_chunks=200, distinct_bases=20, seed=5)
        second = SyntheticSensorWorkload(num_chunks=200, distinct_bases=20, seed=5)
        assert first.chunks() == second.chunks()
        third = SyntheticSensorWorkload(num_chunks=200, distinct_bases=20, seed=6)
        assert first.chunks() != third.chunks()

    def test_chunk_sizes(self):
        workload = SyntheticSensorWorkload(num_chunks=50, distinct_bases=5)
        chunks = workload.chunks()
        assert len(chunks) == 50
        assert all(len(chunk) == 32 for chunk in chunks)

    def test_chunks_cluster_on_the_declared_bases(self):
        workload = SyntheticSensorWorkload(num_chunks=500, distinct_bases=10, seed=1)
        bases = set(workload.bases())
        assert len(bases) == 10
        transform = workload.transform
        observed = {transform.split(chunk).basis for chunk in workload.chunks()}
        assert observed <= bases

    def test_iter_chunks_partial_count(self):
        workload = SyntheticSensorWorkload(num_chunks=1000, distinct_bases=5)
        assert len(list(workload.iter_chunks(10))) == 10
        with pytest.raises(WorkloadError):
            list(workload.iter_chunks(0))

    def test_noise_fraction_creates_unclustered_chunks(self):
        workload = SyntheticSensorWorkload(
            num_chunks=300, distinct_bases=4, noise_fraction=0.5, seed=2
        )
        bases = set(workload.bases())
        transform = workload.transform
        outside = [
            chunk for chunk in workload.chunks()
            if transform.split(chunk).basis not in bases
        ]
        assert len(outside) > 50

    def test_trace_integration(self):
        workload = SyntheticSensorWorkload(num_chunks=100, distinct_bases=5)
        trace = workload.trace()
        assert len(trace) == 100
        stats = trace.stats(workload.transform)
        assert stats.distinct_bases <= 5

    def test_zero_deviation_probability_yields_codewords_only(self):
        workload = SyntheticSensorWorkload(
            num_chunks=100, distinct_bases=3, deviation_probability=0.0, seed=3
        )
        transform = workload.transform
        assert all(
            transform.split(chunk).deviation == 0 for chunk in workload.chunks()
        )

    def test_structured_prototypes_are_low_entropy(self):
        # The generated chunks must be realistically compressible by a
        # dictionary compressor (the paper's gzip bar sits near 0.09).
        import gzip

        workload = SyntheticSensorWorkload(num_chunks=5000, distinct_bases=200, seed=4)
        data = b"".join(workload.chunks())
        ratio = len(gzip.compress(data, 6)) / len(data)
        assert ratio < 0.25

    def test_fits_paper_dictionary(self):
        workload = SyntheticSensorWorkload(num_chunks=10, distinct_bases=1000)
        assert len(workload.bases()) == 1000
        assert len(set(workload.bases())) == 1000
