"""Tests for the DNS query workload."""

import pytest

from repro.exceptions import WorkloadError
from repro.net.ip import parse_udp_packet
from repro.net.ethernet import EthernetFrame, EtherType
from repro.workloads.dns import PAPER_DNS_QUERY_BYTES, DnsQuery, DnsQueryWorkload


class TestDnsQuery:
    def test_message_is_exactly_34_bytes(self):
        workload = DnsQueryWorkload(num_queries=10, distinct_names=20)
        for query in workload.queries():
            assert len(query.message()) == PAPER_DNS_QUERY_BYTES

    def test_chunk_is_message_without_transaction_id(self):
        workload = DnsQueryWorkload(num_queries=5, distinct_names=20)
        for query in workload.queries():
            message = query.message()
            chunk = query.chunk()
            assert len(chunk) == 32
            assert chunk == message[2:]

    def test_message_parses_back(self):
        query = DnsQuery(transaction_id=0x1234, name="www0.cs.uni.in" + "xx"[:2], qtype=1)
        # use a generated name instead to guarantee encodability
        workload = DnsQueryWorkload(num_queries=1, distinct_names=5)
        query = workload.queries()[0]
        parsed = DnsQuery.from_message(query.message())
        assert parsed == query

    def test_from_message_validation(self):
        with pytest.raises(WorkloadError):
            DnsQuery.from_message(b"\x00" * 10)

    def test_invalid_label(self):
        bad = DnsQuery(transaction_id=1, name="a..b", qtype=1)
        with pytest.raises(WorkloadError):
            bad.message()


class TestWorkload:
    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            DnsQueryWorkload(num_queries=0)
        with pytest.raises(WorkloadError):
            DnsQueryWorkload(distinct_names=0)
        with pytest.raises(WorkloadError):
            DnsQueryWorkload(zipf_exponent=0)
        with pytest.raises(WorkloadError):
            DnsQueryWorkload(aaaa_fraction=1.5)

    def test_name_pool_properties(self):
        workload = DnsQueryWorkload(num_queries=10, distinct_names=50)
        names = workload.names()
        assert len(names) == 50
        assert len(set(names)) == 50
        assert all(len(name) == 16 for name in names)

    def test_deterministic_generation(self):
        first = DnsQueryWorkload(num_queries=100, distinct_names=30, seed=3)
        second = DnsQueryWorkload(num_queries=100, distinct_names=30, seed=3)
        assert first.chunks() == second.chunks()

    def test_transaction_ids_vary_but_chunks_do_not_depend_on_them(self):
        workload = DnsQueryWorkload(num_queries=200, distinct_names=1, seed=1)
        queries = workload.queries()
        transaction_ids = {query.transaction_id for query in queries}
        assert len(transaction_ids) > 50
        chunk_variants = {query.chunk() for query in queries}
        # one name, at most two qtypes -> at most two distinct chunks
        assert len(chunk_variants) <= 2

    def test_zipf_skew_makes_popular_names_dominate(self):
        workload = DnsQueryWorkload(
            num_queries=2000, distinct_names=100, zipf_exponent=1.2, seed=2
        )
        names = [query.name for query in workload.iter_queries()]
        most_common = max(set(names), key=names.count)
        assert names.count(most_common) > 2000 / 100 * 3

    def test_trace_and_query_bytes(self):
        workload = DnsQueryWorkload(num_queries=500, distinct_names=40)
        trace = workload.trace()
        assert len(trace) == 500
        assert trace.chunk_bytes == 32
        assert workload.query_bytes() == 500 * 34

    def test_distinct_chunks_bounded_by_name_pool(self):
        workload = DnsQueryWorkload(num_queries=1000, distinct_names=40, seed=5)
        stats = workload.trace().stats()
        assert stats.distinct_chunks <= 40 * 2  # A and AAAA variants


class TestFullPackets:
    def test_packets_are_valid_ethernet_ip_udp_dns(self):
        workload = DnsQueryWorkload(num_queries=20, distinct_names=10)
        packets = workload.packets()
        assert len(packets) == 20
        for raw in packets:
            frame = EthernetFrame.from_bytes(raw)
            assert frame.ethertype == EtherType.IPV4
            ipv4, udp, payload = parse_udp_packet(frame.payload)
            assert ipv4.destination == workload.resolver_ip
            assert udp.destination_port == 53
            assert len(payload) == 34
            DnsQuery.from_message(payload)  # parses cleanly
