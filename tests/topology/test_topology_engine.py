"""TopologyEngine: concurrent flows, determinism, in-network control."""

import pytest

from repro.topology import (
    FlowSpec,
    TopologyEngine,
    TopologySpec,
    fan_in_topology,
    linear_topology,
    paper_testbed_topology,
)


class TestFanIn:
    def test_four_senders_share_one_encoder_and_stay_intact(self):
        spec = fan_in_topology(senders=4, chunks=800, bases=5, scenario="static")
        engine = TopologyEngine(spec)
        report = engine.run()
        assert len(report.flows) == 4
        assert report.chunks_sent == 4 * 800
        assert report.integrity.intact
        assert report.integrity.missing == 0
        # All traffic crossed the one shared measured link, compressed.
        assert report.compression_ratio < 0.15
        for flow in report.flows:
            assert flow.integrity.lossless_in_order
            assert flow.delivered == 800
            assert flow.latency["count"] == 800

    def test_same_spec_and_seed_is_byte_identical(self):
        def run():
            return TopologyEngine(
                fan_in_topology(senders=4, chunks=500, bases=4, scenario="dynamic")
            ).run().json_text()

        assert run() == run()

    def test_batch_drain_report_is_byte_identical(self):
        """Draining co-resident frames as one switch batch must not change
        a single byte of the report — only the wall-clock cost."""

        def run(**kwargs):
            return TopologyEngine(
                fan_in_topology(
                    senders=4, chunks=300, bases=4, pacing="back-to-back"
                ),
                **kwargs,
            )

        base = run()
        batched = run(batch_drain=True)
        assert base.run().json_text() == batched.run().json_text()
        drained = sum(
            node.drained_batches
            for node in list(batched._encoder_nodes.values())
            + list(batched._decoder_nodes.values())
        )
        frames = sum(
            node.drained_frames
            for node in list(batched._encoder_nodes.values())
            + list(batched._decoder_nodes.values())
        )
        assert drained > 0
        assert frames > drained  # at least one true multi-frame batch

    def test_batch_drain_spec_field_round_trips(self):
        spec = fan_in_topology(senders=2, chunks=50, batch_drain=True)
        assert spec.batch_drain
        data = spec.as_dict()
        assert data["batch_drain"] is True
        assert TopologySpec.from_dict(data).batch_drain
        # Default-off specs stay silent about the knob.
        assert "batch_drain" not in fan_in_topology(senders=2, chunks=50).as_dict()

    def test_batch_drain_engine_kwarg_follows_spec_default(self):
        spec = fan_in_topology(senders=2, chunks=50, batch_drain=True)
        assert TopologyEngine(spec).batch_drain
        assert not TopologyEngine(spec, batch_drain=False).batch_drain
        assert not TopologyEngine(fan_in_topology(senders=2, chunks=50)).batch_drain

    def test_flows_have_distinct_derived_seeds_and_workloads(self):
        spec = fan_in_topology(senders=4, chunks=300, bases=4, scenario="dynamic")
        report = TopologyEngine(spec).run()
        seeds = [flow.seed for flow in report.flows]
        assert len(set(seeds)) == 4
        # Four distinct workload streams learn 4 bases each: genuine
        # dictionary contention the single-flow chain cannot express.
        assert report.metrics.counter("controlplane.mappings_learned") == 16

    def test_fan_in_exercises_every_ingress_port(self):
        spec = fan_in_topology(senders=3, chunks=100, bases=2, scenario="no_table")
        engine = TopologyEngine(spec)
        report = engine.run()
        encoder = engine._encoder_nodes["encoder"].switch
        assert report.metrics.counter("encoder.raw_to_uncompressed") == 300
        assert report.metrics.counter("shared.delivered") == 300

    def test_flow_results_independent_of_declaration_order(self):
        spec = fan_in_topology(senders=4, chunks=400, bases=4, scenario="dynamic")
        reversed_spec = TopologySpec(
            name=spec.name,
            nodes=spec.nodes,
            links=spec.links,
            flows=list(reversed(spec.flows)),
            scenario=spec.scenario,
            order=spec.order,
            identifier_bits=spec.identifier_bits,
            seed=spec.seed,
        )
        forward = TopologyEngine(spec).run()
        backward = TopologyEngine(reversed_spec).run()
        for flow in forward.flows:
            other = backward.flow(flow.name)
            assert other.seed == flow.seed
            assert other.chunks_sent == flow.chunks_sent
            assert other.delivered == flow.delivered
            assert other.integrity.as_dict() == flow.integrity.as_dict()
            assert other.latency == flow.latency
        assert backward.compression_ratio == forward.compression_ratio
        assert backward.duration == forward.duration


class TestLossyFanIn:
    def test_shared_link_loss_is_counted_never_corrupted(self):
        spec = fan_in_topology(
            senders=4, chunks=600, bases=4, scenario="no_table", loss=0.03
        )
        report = TopologyEngine(spec).run()
        assert report.integrity.corrupted == 0
        assert report.integrity.missing > 0
        dropped = report.metrics.counter("shared.dropped_loss")
        assert report.integrity.missing == dropped
        # Per-flow attribution: the sum of per-flow losses is the link loss.
        assert sum(flow.integrity.missing for flow in report.flows) == dropped

    def test_link_seed_is_derived_so_loss_is_reproducible(self):
        def run():
            spec = fan_in_topology(
                senders=2, chunks=400, bases=3, scenario="no_table", loss=0.05
            )
            return TopologyEngine(spec).run().metrics.counter("shared.dropped_loss")

        first = run()
        assert first > 0
        assert run() == first


class TestInNetworkControl:
    def test_installs_travel_as_control_messages(self):
        spec = fan_in_topology(senders=2, chunks=2500, bases=3, scenario="dynamic")
        spec.control = "in-network"
        engine = TopologyEngine(spec)
        report = engine.run()
        channel = engine.control_channels["encoder"]
        # One install message per learned mapping, all applied on arrival.
        learned = report.metrics.counter("controlplane.mappings_learned")
        assert learned == 6
        assert channel.messages_sent == learned
        assert channel.messages_applied == learned
        assert report.metrics.counter("control.encoder.messages_sent") == learned
        assert report.metrics.counter("control.encoder.link.delivered") == learned
        # The decoder still resolved everything: installs arrive before the
        # first compressed packet (control latency << encoder write latency).
        assert report.metrics.counter("decoder.unknown_identifier") == 0
        assert report.integrity.intact
        assert report.compression_ratio < 1.0

    def test_direct_mode_has_no_control_channel(self):
        spec = fan_in_topology(senders=2, chunks=200, bases=2, scenario="dynamic")
        engine = TopologyEngine(spec)
        engine.run()
        assert engine.control_channels == {}

    def test_in_network_run_is_deterministic(self):
        def run():
            spec = fan_in_topology(senders=3, chunks=900, bases=4, scenario="dynamic")
            spec.control = "in-network"
            return TopologyEngine(spec).run().json_text()

        assert run() == run()


class TestPaperTestbedPreset:
    def test_reproduces_the_deployment_numbers(self):
        from repro.zipline import ZipLineDeployment
        from repro.workloads import SyntheticSensorWorkload

        spec = paper_testbed_topology(
            chunks=4000, bases=6, scenario="dynamic", flow_seed=21
        )
        report = TopologyEngine(spec).run()
        workload = SyntheticSensorWorkload(
            num_chunks=4000, distinct_bases=6, seed=21
        )
        deployment = ZipLineDeployment(scenario="dynamic")
        summary = deployment.replay_and_run(workload.chunks(), packet_rate=1e6)
        assert report.integrity.lossless_in_order
        assert report.compression_ratio == pytest.approx(
            summary.compression_ratio, rel=1e-12
        )
        assert report.learning_time == pytest.approx(
            summary.learning_time, rel=1e-12
        )


class TestCountersOnlyMode:
    def test_verify_integrity_false_keeps_memory_bounded(self):
        spec = fan_in_topology(senders=2, chunks=300, bases=3, scenario="no_table")
        engine = TopologyEngine(spec, verify_integrity=False)
        report = engine.run()
        assert report.integrity is None
        assert report.chunks_sent == 600
        for flow in report.flows:
            assert flow.integrity is None
            assert flow.latency == {}
            assert flow.delivered == 300
        for state in engine._flows:
            assert state.sent_chunks == []
            assert state.arrivals == []


class TestDnsFlows:
    def test_dns_workload_flows_run_end_to_end(self):
        spec = fan_in_topology(
            senders=2, chunks=200, workload="dns", names=15, scenario="static"
        )
        report = TopologyEngine(spec).run()
        assert report.integrity.intact
        assert report.integrity.missing == 0
        assert report.compression_ratio < 1.0


class TestTraceDrivenFlows:
    """Trace flows get the flow's own MACs so arrival attribution works."""

    @pytest.fixture()
    def pcap(self, tmp_path):
        from repro.workloads import SyntheticSensorWorkload

        path = tmp_path / "trace.pcap"
        SyntheticSensorWorkload(num_chunks=120, distinct_bases=4, seed=9).trace(
        ).to_pcap(path)
        return path

    def test_pcap_flow_is_attributed_and_verified(self, pcap):
        spec = linear_topology(trace=str(pcap), scenario="no_table")
        report = TopologyEngine(spec).run()
        flow = report.flows[0]
        assert flow.delivered == 120
        assert flow.integrity.lossless_in_order
        assert flow.latency["count"] == 120
        assert report.metrics.counter("flows.unattributed_frames") == 0

    def test_pcap_flow_static_scenario(self, pcap):
        spec = linear_topology(trace=str(pcap), scenario="static")
        report = TopologyEngine(spec).run()
        assert report.flows[0].integrity.lossless_in_order
        assert report.compression_ratio < 0.15


class TestWideFanIn:
    def test_more_senders_than_default_switch_ports(self):
        # 40 ingress ports exceed the Tofino model's 32-port default; the
        # engine sizes the switch for the spec instead of failing mid-build.
        spec = fan_in_topology(senders=40, chunks=20, bases=2, scenario="no_table")
        report = TopologyEngine(spec).run()
        assert len(report.flows) == 40
        assert report.integrity.lossless_in_order
        assert report.chunks_sent == 40 * 20


class TestMisdeliveryDetection:
    def _misrouted_spec(self):
        from repro.topology import LinkSpec, NodeSpec

        # The decoder forwards *everything* to sinkA, but flowB declares
        # sinkB: a routing bug that must not look like success.
        return TopologySpec(
            name="misrouted",
            scenario="no_table",
            nodes=[
                NodeSpec(name="senderA", kind="host"),
                NodeSpec(name="senderB", kind="host"),
                NodeSpec(name="encoder", kind="encoder",
                         forwarding={0: 2, 1: 2}, default_egress_port=2,
                         decoder="decoder"),
                NodeSpec(name="decoder", kind="decoder",
                         forwarding={0: 1}, default_egress_port=1),
                NodeSpec(name="sinkA", kind="host"),
                NodeSpec(name="sinkB", kind="host"),
            ],
            links=[
                LinkSpec(name="inA", source=("senderA", 0),
                         target=("encoder", 0), direct=True),
                LinkSpec(name="inB", source=("senderB", 0),
                         target=("encoder", 1), direct=True),
                LinkSpec(name="wire", source=("encoder", 2),
                         target=("decoder", 0), measured=True),
                LinkSpec(name="outA", source=("decoder", 1),
                         target=("sinkA", 0), direct=True),
                LinkSpec(name="outB", source=("decoder", 2),
                         target=("sinkB", 0), direct=True),
            ],
            flows=[
                FlowSpec(name="flowA", source="senderA", sink="sinkA",
                         chunks=50, bases=2),
                FlowSpec(name="flowB", source="senderB", sink="sinkB",
                         chunks=50, bases=2),
            ],
        )

    def test_frames_at_the_wrong_sink_count_as_missing(self):
        report = TopologyEngine(self._misrouted_spec()).run()
        flow_a = report.flow("flowA")
        flow_b = report.flow("flowB")
        assert flow_a.integrity.lossless_in_order
        # flowB's traffic landed at sinkA: missing for the flow, counted
        # as misdelivered, and the aggregate is not lossless.
        assert flow_b.delivered == 0
        assert flow_b.integrity.missing == 50
        assert report.metrics.counter("flows.misdelivered_frames") == 50
        assert not report.integrity.lossless_in_order


class TestMeasuredLinkFallback:
    def test_defaults_to_the_first_emulated_link_not_the_first_link(self):
        spec = linear_topology(chunks=100, bases=2, scenario="static")
        # Strip the explicit measured flag: the direct 'ingress' link is
        # declared first, but the tap must land on the emulated wire.
        from repro.topology import LinkSpec

        spec.links = [
            LinkSpec(name=link.name, source=link.source, target=link.target,
                     bandwidth_gbps=link.bandwidth_gbps,
                     propagation_us=link.propagation_us, hops=link.hops,
                     direct=link.direct, measured=False)
            for link in spec.links
        ]
        assert spec.measured_link.name == "link0"
        report = TopologyEngine(spec).run()
        # Tapping the wire (not the raw ingress) shows the compression.
        assert report.compression_ratio < 0.15
