"""ControlChannel: command serialisation, delivery, and transports."""

import pytest

from repro.exceptions import TopologyError
from repro.replay.link import EmulatedLink
from repro.sim.simulator import Simulator
from repro.topology import ControlChannel, apply_switch_command


class _RecordingSwitch:
    def __init__(self):
        self.calls = []

    def install_identifier_mapping(self, identifier, basis):
        self.calls.append(("install_identifier", identifier, basis))

    def remove_identifier_mapping(self, identifier):
        self.calls.append(("remove_identifier", identifier))

    def install_basis_mapping(self, basis, identifier, ttl):
        self.calls.append(("install_basis", basis, identifier, ttl))

    def remove_basis_mapping(self, basis):
        self.calls.append(("remove_basis", basis))


class TestApplySwitchCommand:
    def test_every_operation_dispatches(self):
        switch = _RecordingSwitch()
        apply_switch_command(
            switch, {"op": "install_identifier", "identifier": 3, "basis": 99}
        )
        apply_switch_command(switch, {"op": "remove_identifier", "identifier": 3})
        apply_switch_command(
            switch, {"op": "install_basis", "basis": 5, "identifier": 1, "ttl": 2.0}
        )
        apply_switch_command(switch, {"op": "remove_basis", "basis": 5})
        assert switch.calls == [
            ("install_identifier", 3, 99),
            ("remove_identifier", 3),
            ("install_basis", 5, 1, 2.0),
            ("remove_basis", 5),
        ]

    def test_unknown_operation_rejected(self):
        with pytest.raises(TopologyError, match="unknown control command"):
            apply_switch_command(_RecordingSwitch(), {"op": "reboot"})


class TestControlChannel:
    def test_commands_arrive_after_link_latency(self):
        simulator = Simulator()
        link = EmulatedLink(
            simulator=simulator, name="ctl", bandwidth_bps=1e9,
            propagation_delay=10e-6,
        )
        switch = _RecordingSwitch()
        channel = ControlChannel(simulator, link, switch)
        channel.transport({"op": "install_identifier", "identifier": 7, "basis": 123})
        assert switch.calls == []  # in flight, not applied synchronously
        simulator.run()
        assert switch.calls == [("install_identifier", 7, 123)]
        assert simulator.now >= 10e-6  # at least the propagation delay
        assert channel.messages_sent == 1
        assert channel.messages_applied == 1
        assert channel.counters()["message_bytes"] > 14

    def test_control_plane_transport_defers_decoder_install(self):
        """With a transport, installs traverse the network; without, they don't."""
        from repro.controlplane.manager import ZipLineControlPlane
        from repro.tofino.digest import DigestEngine

        simulator = Simulator()
        link = EmulatedLink(
            simulator=simulator, name="ctl", bandwidth_bps=1e9,
            propagation_delay=5e-6,
        )
        decoder = _RecordingSwitch()
        channel = ControlChannel(simulator, link, decoder)
        digest_engine = DigestEngine(simulator)
        ZipLineControlPlane(
            digest_engine=digest_engine,
            decoder_switch=decoder,
            simulator=simulator,
            identifier_bits=4,
            seed=0,
            decoder_transport=channel.transport,
        )
        digest_engine.emit("zipline_learn_basis", {"basis": 77})
        simulator.run()
        assert ("install_identifier", 0, 77) in decoder.calls
        assert channel.messages_applied == 1
