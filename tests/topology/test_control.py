"""ControlChannel: command serialisation, delivery, and transports."""

import pytest

from repro.exceptions import TopologyError
from repro.replay.link import EmulatedLink
from repro.sim.simulator import Simulator
from repro.topology import ControlChannel, apply_switch_command


class _RecordingSwitch:
    def __init__(self):
        self.calls = []

    def install_identifier_mapping(self, identifier, basis):
        self.calls.append(("install_identifier", identifier, basis))

    def remove_identifier_mapping(self, identifier):
        self.calls.append(("remove_identifier", identifier))

    def install_basis_mapping(self, basis, identifier, ttl):
        self.calls.append(("install_basis", basis, identifier, ttl))

    def remove_basis_mapping(self, basis):
        self.calls.append(("remove_basis", basis))


class TestApplySwitchCommand:
    def test_every_operation_dispatches(self):
        switch = _RecordingSwitch()
        apply_switch_command(
            switch, {"op": "install_identifier", "identifier": 3, "basis": 99}
        )
        apply_switch_command(switch, {"op": "remove_identifier", "identifier": 3})
        apply_switch_command(
            switch, {"op": "install_basis", "basis": 5, "identifier": 1, "ttl": 2.0}
        )
        apply_switch_command(switch, {"op": "remove_basis", "basis": 5})
        assert switch.calls == [
            ("install_identifier", 3, 99),
            ("remove_identifier", 3),
            ("install_basis", 5, 1, 2.0),
            ("remove_basis", 5),
        ]

    def test_unknown_operation_rejected(self):
        with pytest.raises(TopologyError, match="unknown control command"):
            apply_switch_command(_RecordingSwitch(), {"op": "reboot"})


class TestControlChannel:
    def test_commands_arrive_after_link_latency(self):
        simulator = Simulator()
        link = EmulatedLink(
            simulator=simulator, name="ctl", bandwidth_bps=1e9,
            propagation_delay=10e-6,
        )
        switch = _RecordingSwitch()
        channel = ControlChannel(simulator, link, switch)
        channel.transport({"op": "install_identifier", "identifier": 7, "basis": 123})
        assert switch.calls == []  # in flight, not applied synchronously
        simulator.run()
        assert switch.calls == [("install_identifier", 7, 123)]
        assert simulator.now >= 10e-6  # at least the propagation delay
        assert channel.messages_sent == 1
        assert channel.messages_applied == 1
        assert channel.counters()["message_bytes"] > 14

    def test_control_plane_transport_defers_decoder_install(self):
        """With a transport, installs traverse the network; without, they don't."""
        from repro.controlplane.manager import ZipLineControlPlane
        from repro.tofino.digest import DigestEngine

        simulator = Simulator()
        link = EmulatedLink(
            simulator=simulator, name="ctl", bandwidth_bps=1e9,
            propagation_delay=5e-6,
        )
        decoder = _RecordingSwitch()
        channel = ControlChannel(simulator, link, decoder)
        digest_engine = DigestEngine(simulator)
        ZipLineControlPlane(
            digest_engine=digest_engine,
            decoder_switch=decoder,
            simulator=simulator,
            identifier_bits=4,
            seed=0,
            decoder_transport=channel.transport,
        )
        digest_engine.emit("zipline_learn_basis", {"basis": 77})
        simulator.run()
        assert ("install_identifier", 0, 77) in decoder.calls
        assert channel.messages_applied == 1


def _make_channel(simulator, rate=None, burst=8, queue_capacity=None,
                  propagation_delay=1e-6):
    link = EmulatedLink(
        simulator=simulator, name="ctl", bandwidth_bps=1e9,
        propagation_delay=propagation_delay,
    )
    switch = _RecordingSwitch()
    channel = ControlChannel(
        simulator, link, switch,
        rate=rate, burst=burst, queue_capacity=queue_capacity,
    )
    return link, switch, channel


class TestEpochIdempotency:
    """Regression: installs are idempotent by (identifier, epoch).

    Before the epoch guard, a reordered or duplicated install frame could
    re-apply an *older* binding for an identifier after a newer one — the
    decoder would then silently decode that identifier to the wrong basis
    (corruption, not loss).  The channel now stamps a monotone epoch on
    every identifier-carrying command and the receive side drops anything
    at or below the last applied epoch.
    """

    def _captured_frames(self, channel, link, commands):
        """Send commands while swallowing frames; return the wire bytes."""
        frames = []
        original_send = link.send
        link.send = lambda frame, time: frames.append(frame)
        try:
            for command in commands:
                channel.transport(command)
        finally:
            link.send = original_send
        return frames

    def test_reordered_install_cannot_resurrect_old_binding(self):
        simulator = Simulator()
        link, switch, channel = _make_channel(simulator)
        old, new = self._captured_frames(
            channel,
            link,
            [
                {"op": "install_identifier", "identifier": 3, "basis": 111},
                {"op": "install_identifier", "identifier": 3, "basis": 222},
            ],
        )
        # The wire reordered them: the newer binding arrives first.
        channel._on_frame(new, 1e-6)
        channel._on_frame(old, 2e-6)
        assert switch.calls == [("install_identifier", 3, 222)]
        assert channel.stale_ignored == 1
        assert channel.messages_applied == 1

    def test_duplicate_install_applies_once(self):
        simulator = Simulator()
        link, switch, channel = _make_channel(simulator)
        (frame,) = self._captured_frames(
            channel,
            link,
            [{"op": "install_identifier", "identifier": 5, "basis": 42}],
        )
        channel._on_frame(frame, 1e-6)
        channel._on_frame(frame, 2e-6)
        channel._on_frame(frame, 3e-6)
        assert switch.calls == [("install_identifier", 5, 42)]
        assert channel.stale_ignored == 2

    def test_stale_remove_is_ignored_after_newer_install(self):
        simulator = Simulator()
        link, switch, channel = _make_channel(simulator)
        remove, install = self._captured_frames(
            channel,
            link,
            [
                {"op": "remove_identifier", "identifier": 7},
                {"op": "install_identifier", "identifier": 7, "basis": 9},
            ],
        )
        channel._on_frame(install, 1e-6)
        channel._on_frame(remove, 2e-6)  # reordered: must not undo the install
        assert switch.calls == [("install_identifier", 7, 9)]
        assert channel.stale_ignored == 1

    def test_reordering_wire_never_regresses_switch_state(self):
        # End to end through a genuinely reordering link: the final applied
        # binding for every identifier equals the last one sent.
        from repro.perfmodel.linkmodel import ImpairmentModel

        simulator = Simulator()
        link = EmulatedLink(
            simulator=simulator, name="ctl", bandwidth_bps=1e9,
            propagation_delay=1e-6,
            impairments=ImpairmentModel(
                reorder_probability=0.4, reorder_delay=50e-6, seed=7
            ),
        )
        switch = _RecordingSwitch()
        channel = ControlChannel(simulator, link, switch)
        import random

        rng = random.Random(3)
        last = {}
        for step in range(40):
            identifier = rng.randrange(4)
            basis = 100 + step
            last[identifier] = basis
            simulator.schedule_at(
                step * 5e-6,
                lambda i=identifier, b=basis: channel.transport(
                    {"op": "install_identifier", "identifier": i, "basis": b}
                ),
            )
        simulator.run()
        final = {}
        for call in switch.calls:
            final[call[1]] = call[2]
        assert final == last


class TestRateLimiting:
    def test_burst_then_paced_sends(self):
        simulator = Simulator()
        link, switch, channel = _make_channel(simulator, rate=1000.0, burst=2)
        for index in range(5):
            channel.transport(
                {"op": "install_identifier", "identifier": index, "basis": index}
            )
        assert channel.messages_sent == 2  # the burst goes out immediately
        assert channel.queue_depth == 3
        assert channel.deferred == 3
        simulator.run()
        assert channel.messages_sent == 5
        assert channel.queue_depth == 0
        # Three paced sends at 1000 cmd/s: the drain takes ~3 ms.
        assert simulator.now == pytest.approx(3e-3, rel=0.01)
        assert len(switch.calls) == 5

    def test_sub_token_refill_terminates(self):
        # Regression: the drain used to compare the refilled bucket against
        # exactly 1.0; the refill after a wait of (1 - tokens)/rate lands at
        # 0.999… in floating point, so the drain rescheduled itself with
        # ~1e-14 waits forever.  The epsilon comparison must terminate.
        simulator = Simulator()
        link, switch, channel = _make_channel(simulator, rate=5000.0, burst=1)
        for index in range(50):
            channel.transport(
                {"op": "install_identifier", "identifier": index, "basis": index}
            )
        simulator.run()  # must terminate
        assert channel.messages_sent == 50
        assert len(switch.calls) == 50

    def test_bounded_queue_drops_and_reports(self):
        simulator = Simulator()
        link, switch, channel = _make_channel(
            simulator, rate=1000.0, burst=1, queue_capacity=2
        )
        dropped = []
        for index in range(6):
            channel.transport(
                {"op": "install_identifier", "identifier": index, "basis": index},
                on_drop=lambda i=index: dropped.append(i),
            )
        # 1 sent from the burst, 2 queued, 3 dropped at the full queue.
        assert channel.dropped_backpressure == 3
        assert dropped == [3, 4, 5]
        simulator.run()
        assert channel.messages_sent == 3
        assert channel.counters()["dropped"] == 3

    def test_on_applied_fires_when_the_decoder_applies_the_write(self):
        simulator = Simulator()
        link, switch, channel = _make_channel(simulator, rate=1000.0, burst=1)
        applied_at = []
        channel.transport(
            {"op": "install_identifier", "identifier": 0, "basis": 0},
            on_applied=lambda: applied_at.append(simulator.now),
        )
        channel.transport(
            {"op": "install_identifier", "identifier": 1, "basis": 1},
            on_applied=lambda: applied_at.append(simulator.now),
        )
        # Acked-write model: nothing confirms until the frame arrives and
        # the decoder table is actually written — not at send time.
        assert applied_at == []
        simulator.run()
        assert len(applied_at) == 2
        assert len(switch.calls) == 2
        assert applied_at[0] >= 1e-6  # at least the link propagation delay
        # Second command waits a full pacing interval, then the wire.
        assert applied_at[1] >= 1e-3 + 1e-6

    def test_on_drop_fires_on_wire_loss(self):
        from repro.perfmodel.linkmodel import ImpairmentModel

        simulator = Simulator()
        link = EmulatedLink(
            simulator=simulator, name="ctl", bandwidth_bps=1e9,
            propagation_delay=1e-6,
            impairments=ImpairmentModel(loss_probability=1.0, seed=3),
        )
        switch = _RecordingSwitch()
        channel = ControlChannel(simulator, link, switch)
        outcomes = []
        channel.transport(
            {"op": "install_identifier", "identifier": 0, "basis": 0},
            on_applied=lambda: outcomes.append("applied"),
            on_drop=lambda: outcomes.append("dropped"),
        )
        # Loss is detected synchronously from the link's drop counters, so
        # the issuer can roll its allocation back before anything else runs.
        assert outcomes == ["dropped"]
        simulator.run()
        assert outcomes == ["dropped"]
        assert switch.calls == []
        assert channel.counters()["dropped"] == 1
