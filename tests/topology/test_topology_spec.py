"""TopologySpec validation, presets, and seed derivation."""

import json

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    TOPOLOGY_PRESETS,
    FlowSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    derive_flow_seed,
    derive_seed,
    fan_in_topology,
    linear_topology,
    paper_testbed_topology,
    preset_topology,
)


def _minimal_dict():
    return {
        "name": "t",
        "nodes": [
            {"name": "a", "kind": "host"},
            {"name": "enc", "kind": "encoder", "forwarding": {"0": 1},
             "default_egress_port": 1},
            {"name": "dec", "kind": "decoder", "forwarding": {"0": 1},
             "default_egress_port": 1},
            {"name": "b", "kind": "host"},
        ],
        "links": [
            {"name": "in", "source": "a:0", "target": "enc:0", "direct": True},
            {"name": "wire", "source": "enc:1", "target": "dec:0",
             "measured": True},
            {"name": "out", "source": "dec:1", "target": "b:0", "direct": True},
        ],
        "flows": [
            {"name": "f", "source": "a", "sink": "b", "chunks": 10, "bases": 2},
        ],
    }


class TestValidationNamesOffender:
    """Spec errors must name the offending node, link, or flow."""

    def test_unknown_link_target_names_the_link(self):
        data = _minimal_dict()
        data["links"][1]["target"] = "decdoer:0"
        with pytest.raises(TopologyError, match=r"link 'wire'.*'decdoer'"):
            TopologySpec.from_dict(data)

    def test_unknown_node_kind_names_the_node(self):
        data = _minimal_dict()
        data["nodes"][0]["kind"] = "router"
        with pytest.raises(TopologyError, match=r"node 'a'.*kind"):
            TopologySpec.from_dict(data)

    def test_flow_at_non_host_names_the_flow(self):
        data = _minimal_dict()
        data["flows"][0]["source"] = "enc"
        with pytest.raises(TopologyError, match=r"flow 'f'.*'enc'.*not a host"):
            TopologySpec.from_dict(data)

    def test_flow_unknown_sink_names_the_flow(self):
        data = _minimal_dict()
        data["flows"][0]["sink"] = "ghost"
        with pytest.raises(TopologyError, match=r"flow 'f'.*unknown sink node 'ghost'"):
            TopologySpec.from_dict(data)

    def test_duplicate_link_names_the_link(self):
        data = _minimal_dict()
        data["links"].append(dict(data["links"][1]))
        with pytest.raises(TopologyError, match=r"link 'wire'.*more than once"):
            TopologySpec.from_dict(data)

    def test_duplicate_node_names_the_node(self):
        data = _minimal_dict()
        data["nodes"].append({"name": "a", "kind": "host"})
        with pytest.raises(TopologyError, match=r"node 'a'.*more than once"):
            TopologySpec.from_dict(data)

    def test_bad_port_ref_names_the_link(self):
        data = _minimal_dict()
        data["links"][0]["source"] = "a"
        with pytest.raises(TopologyError, match=r"link 'in'.*node:port"):
            TopologySpec.from_dict(data)

    def test_unknown_key_names_the_entity(self):
        data = _minimal_dict()
        data["links"][0]["bandwith_gbps"] = 10
        with pytest.raises(TopologyError, match=r"link 'in'.*bandwith_gbps"):
            TopologySpec.from_dict(data)

    def test_two_measured_links_are_accepted_and_enumerated(self):
        # Multi-rack topologies tap one wire per rack: several measured
        # links are legal, and measured_links lists them in order.
        data = _minimal_dict()
        data["links"][0] = dict(data["links"][0], direct=False, measured=True)
        spec = TopologySpec.from_dict(data)
        assert [link.name for link in spec.measured_links] == [
            link["name"] for link in data["links"] if link.get("measured")
        ]
        assert spec.measured_link.name == spec.measured_links[0].name

    def test_direct_link_cannot_have_hops(self):
        data = _minimal_dict()
        data["links"][0]["hops"] = 2
        with pytest.raises(TopologyError, match=r"link 'in'.*direct.*hops"):
            TopologySpec.from_dict(data)

    def test_encoder_pairing_must_be_a_decoder(self):
        data = _minimal_dict()
        data["nodes"][1]["decoder"] = "b"
        with pytest.raises(TopologyError, match=r"node 'enc'.*'b'.*not a decoder"):
            TopologySpec.from_dict(data)


class TestRoundTrip:
    def test_dict_round_trip_preserves_the_spec(self):
        spec = TopologySpec.from_dict(_minimal_dict())
        again = TopologySpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again.as_dict() == spec.as_dict()

    def test_from_file(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(_minimal_dict()))
        spec = TopologySpec.from_file(path)
        assert spec.name == "t"
        assert spec.measured_link.name == "wire"

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(TopologyError, match="does not exist"):
            TopologySpec.from_file(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(TopologyError, match="invalid JSON"):
            TopologySpec.from_file(bad)


class TestSeedDerivation:
    def test_matches_the_experiment_matrix_scheme(self):
        # One scheme for the whole repository: scenario seeds and flow seeds
        # come out of the same function.
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec.from_dict(
            {"name": "demo", "axes": {"scenario": ["static", "dynamic"]}}
        )
        for scenario in spec.expand():
            assert scenario.seed == derive_seed("demo", 0, scenario.scenario_id)

    def test_flow_seed_is_a_pure_function_of_identity(self):
        assert derive_flow_seed("t", 7, "flow0") == derive_flow_seed("t", 7, "flow0")
        assert derive_flow_seed("t", 7, "flow0") != derive_flow_seed("t", 8, "flow0")
        assert derive_flow_seed("t", 7, "flow0") != derive_flow_seed("u", 7, "flow0")
        assert 0 <= derive_flow_seed("t", -3, "x") < 2**31

    def test_explicit_flow_seed_wins(self):
        spec = linear_topology(chunks=10, bases=2, flow_seed=42)
        assert spec.flow_seed(spec.flows[0]) == 42
        spec2 = linear_topology(chunks=10, bases=2)
        assert spec2.flow_seed(spec2.flows[0]) == derive_flow_seed(
            spec2.name, spec2.seed, "flow0"
        )


class TestPresets:
    def test_unknown_preset_lists_the_valid_ones(self):
        with pytest.raises(TopologyError) as excinfo:
            preset_topology("ring")
        message = str(excinfo.value)
        for name in TOPOLOGY_PRESETS:
            assert name in message

    def test_linear_keeps_harness_link_naming(self):
        assert linear_topology(hops=1).measured_link.hop_names() == ["link0"]
        assert linear_topology(hops=3).measured_link.hop_names() == [
            "link0", "link1", "link2",
        ]

    def test_fan_in_shapes(self):
        spec = fan_in_topology(senders=5, chunks=10, bases=2)
        assert sum(1 for node in spec.nodes if node.kind == "host") == 6
        assert len(spec.flows) == 5
        # All flows share one encoder and stagger their start times.
        starts = [flow.start for flow in spec.flows]
        assert len(set(starts)) == len(starts)
        assert spec.measured_link.name == "shared"

    def test_fan_in_needs_a_sender(self):
        with pytest.raises(TopologyError, match="at least one sender"):
            fan_in_topology(senders=0)

    def test_paper_testbed_hop_is_direct_and_measured(self):
        spec = paper_testbed_topology(chunks=10, bases=2)
        link = spec.measured_link
        assert link.direct
        assert link.measured


class TestNamespaceCollisions:
    def test_expanded_hop_names_cannot_collide(self):
        data = _minimal_dict()
        data["links"][1]["hops"] = 3  # 'wire' expands to wire0..wire2
        data["links"].append(
            {"name": "wire1", "source": "b:1", "target": "a:1", "direct": True}
        )
        with pytest.raises(TopologyError, match=r"hop name 'wire1' collides"):
            TopologySpec.from_dict(data)

    def test_two_links_from_one_egress_port_rejected(self):
        data = _minimal_dict()
        data["links"].append(
            {"name": "dup", "source": "a:0", "target": "b:0", "direct": True}
        )
        with pytest.raises(
            TopologyError, match=r"link 'dup'.*source a:0 is already used"
        ):
            TopologySpec.from_dict(data)


class TestDefaultEgressValidation:
    def test_malformed_default_egress_port_names_the_node(self):
        data = _minimal_dict()
        data["nodes"][1]["default_egress_port"] = "two"
        with pytest.raises(TopologyError, match=r"node 'enc'.*default_egress_port"):
            TopologySpec.from_dict(data)
