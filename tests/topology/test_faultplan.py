"""FaultPlan scenarios: determinism, loss attribution, crash recovery.

The fault-injection layer must obey the same contract as everything else
in the topology engine: same spec + seed ⇒ byte-identical report at any
worker count and any flow declaration order.  On top of that it carries
its own promises — control-frame loss is *attributed* (``control.*.dropped``)
and degrades delivery, never integrity; a decoder restarted mid-trace
resynchronises from the control plane with zero corruption.
"""

import json

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    EvictionStorm,
    FaultPlan,
    NodeRestart,
    TopologySpec,
    fan_in_topology,
    fault_storm_topology,
    load_fault_plan,
    rack_fan_in_topology,
    run_topology,
    validate_spec_faults,
)


def assert_reports_identical(first, second):
    """Byte-identical JSON plus per-registry equality for readable diffs."""
    first_metrics = first.metrics.as_dict()
    second_metrics = second.metrics.as_dict()
    for kind in ("counters", "gauges", "distributions"):
        assert first_metrics[kind] == second_metrics[kind], kind
    assert [flow.as_dict() for flow in first.flows] == [
        flow.as_dict() for flow in second.flows
    ]
    assert first.json_text() == second.json_text()


def faulty_rack_spec(**overrides):
    """Three racks under a full fault plan: loss, two restarts, a storm."""
    spec = rack_fan_in_topology(
        racks=3,
        senders=2,
        chunks=250,
        bases=4,
        packet_rate=1e5,
        control="in-network",
        **overrides,
    )
    spec.faults = FaultPlan(
        control_loss=0.05,
        restarts=(
            NodeRestart(node="decoder0", time=2.0e-3),
            NodeRestart(node="decoder2", time=2.2e-3),
        ),
        storms=(EvictionStorm(node="encoder1", time=2.1e-3, count=2),),
    )
    validate_spec_faults(spec)
    return spec


class TestFaultPlanSpec:
    def test_round_trips_through_spec_json(self):
        spec = faulty_rack_spec()
        rebuilt = TopologySpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert rebuilt.as_dict() == spec.as_dict()
        assert rebuilt.faults.control_loss == pytest.approx(0.05)
        assert [restart.node for restart in rebuilt.faults.restarts] == [
            "decoder0",
            "decoder2",
        ]
        assert rebuilt.faults.storms[0].count == 2

    def test_inactive_plan_is_omitted_from_spec_dict(self):
        spec = fan_in_topology(control="in-network")
        spec.faults = FaultPlan()
        assert not spec.faults.active
        assert "faults" not in spec.as_dict()

    def test_restart_must_name_a_decoder(self):
        spec = fan_in_topology(control="in-network")
        spec.faults = FaultPlan(restarts=(NodeRestart(node="encoder", time=1e-3),))
        with pytest.raises(TopologyError, match="decoder"):
            validate_spec_faults(spec)

    def test_storm_must_name_an_encoder(self):
        spec = fan_in_topology(control="in-network")
        spec.faults = FaultPlan(
            storms=(EvictionStorm(node="decoder", time=1e-3, count=2),)
        )
        with pytest.raises(TopologyError, match="encoder"):
            validate_spec_faults(spec)

    def test_control_loss_requires_in_network_control(self):
        spec = fan_in_topology()  # direct control: no control link to impair
        spec.faults = FaultPlan(control_loss=0.1)
        with pytest.raises(TopologyError, match="in-network"):
            validate_spec_faults(spec)

    def test_load_fault_plan_inline_and_file(self, tmp_path):
        inline = load_fault_plan('{"control_loss": 0.25}')
        assert inline.control_loss == pytest.approx(0.25)
        path = tmp_path / "plan.json"
        path.write_text(
            '{"restarts": [{"node": "decoder", "time": 0.002}]}',
            encoding="utf-8",
        )
        from_file = load_fault_plan(str(path))
        assert from_file.restarts[0].node == "decoder"

    def test_unknown_fault_keys_rejected(self):
        with pytest.raises(TopologyError, match="unknown"):
            FaultPlan.from_dict({"control_loss": 0.1, "meteor_strike": True})

    def test_events_for_filters_node_scoped_faults(self):
        plan = faulty_rack_spec().faults
        shard_view = plan.events_for({"decoder0", "encoder0", "sender0_0"})
        assert [restart.node for restart in shard_view.restarts] == ["decoder0"]
        assert shard_view.storms == ()
        # Probabilistic impairments are per-link and stay global.
        assert shard_view.control_loss == plan.control_loss


class TestDeterminism:
    def test_fault_scenario_byte_identical_across_workers(self):
        reports = [
            run_topology(faulty_rack_spec(), workers=workers)
            for workers in (1, 2, 4)
        ]
        assert_reports_identical(reports[0], reports[1])
        assert_reports_identical(reports[0], reports[2])
        # The faults actually fired in this scenario.
        counters = reports[0].metrics.as_dict()["counters"]
        assert counters["faults.restarts"] == 2
        assert counters["faults.storm_evicted"] > 0

    def test_fault_scenario_independent_of_flow_declaration_order(self):
        spec = faulty_rack_spec()
        data = spec.as_dict()
        data["flows"] = list(reversed(data["flows"]))
        reversed_spec = TopologySpec.from_dict(data)
        forward = run_topology(spec, workers=2)
        backward = run_topology(reversed_spec, workers=2)
        for flow in forward.flows:
            other = backward.flow(flow.name)
            assert other.seed == flow.seed
            assert other.chunks_sent == flow.chunks_sent
            assert other.delivered == flow.delivered
            assert other.integrity.as_dict() == flow.integrity.as_dict()
        assert (
            forward.metrics.as_dict()["counters"]
            == backward.metrics.as_dict()["counters"]
        )

    def test_rate_limited_control_byte_identical_across_workers(self):
        spec = faulty_rack_spec(control_rate=3000.0, control_queue=32)
        assert_reports_identical(
            run_topology(spec, workers=1), run_topology(spec, workers=4)
        )


class TestLossAttribution:
    def test_control_loss_is_counted_never_corrupts_flows(self):
        spec = fan_in_topology(
            senders=4,
            chunks=400,
            bases=6,
            packet_rate=1e5,
            control="in-network",
        )
        spec.faults = FaultPlan(control_loss=0.2)
        validate_spec_faults(spec)
        report = run_topology(spec, workers=1)
        counters = report.metrics.as_dict()["counters"]
        # Every lost control frame is attributed to the channel...
        assert counters["control.encoder.dropped"] > 0
        assert (
            counters["control.encoder.dropped"]
            == counters["control.encoder.link.dropped_loss"]
        )
        # ...and the damage shows up as missing deliveries, never as a
        # corrupted chunk: a stale decoder drops what it cannot decode.
        for flow in report.flows:
            assert flow.integrity.corrupted == 0

    def test_backpressure_drops_are_attributed_separately(self):
        spec = fan_in_topology(
            senders=4,
            chunks=400,
            bases=8,
            workload="thrash",
            packet_rate=1e5,
            control="in-network",
            control_rate=500.0,
            control_queue=2,
        )
        report = run_topology(spec, workers=1)
        counters = report.metrics.as_dict()["counters"]
        assert counters["control.encoder.dropped_backpressure"] > 0
        assert counters["control.encoder.deferred"] > 0
        assert counters["control.encoder.queue_depth"] > 0
        assert counters["control.encoder.dropped"] == (
            counters["control.encoder.dropped_backpressure"]
            + counters["control.encoder.link.dropped_loss"]
            + counters["control.encoder.link.dropped_queue"]
        )
        # A dropped install is rolled back by the control plane so the
        # basis stays learnable; integrity is untouched either way.
        for flow in report.flows:
            assert flow.integrity.corrupted == 0


class TestCrashRecovery:
    def test_decoder_restart_resynchronises_with_zero_corruption(self):
        # The acceptance scenario: mid-trace decoder restart under a lossy
        # control channel.  The decoder loses its identifier table, the
        # control plane replays its bindings over the same lossy channel,
        # and the stream suffers bounded loss — never corruption.
        spec = fault_storm_topology(chunks=400, senders=2)
        report_1 = run_topology(spec, workers=1)
        report_4 = run_topology(spec, workers=4)
        assert_reports_identical(report_1, report_4)
        counters = report_1.metrics.as_dict()["counters"]
        assert counters["faults.restarts"] == 1
        assert counters["controlplane.resyncs"] == 1
        assert counters["faults.resync_installs"] > 0
        assert counters["control.encoder.resync_applied"] > 0
        for flow in report_1.flows:
            assert flow.integrity.corrupted == 0
        assert report_1.metrics.counter("shared.delivered") > 0

    def test_restart_without_resyncable_state_is_harmless(self):
        # A restart scheduled before the control plane has learned
        # anything resynchronises zero bindings and corrupts nothing.
        spec = fault_storm_topology(chunks=200, senders=2, restart_at=1e-4)
        report = run_topology(spec, workers=1)
        counters = report.metrics.as_dict()["counters"]
        assert counters["faults.restarts"] == 1
        for flow in report.flows:
            assert flow.integrity.corrupted == 0
