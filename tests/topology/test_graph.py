"""TopologyGraph wiring and the concrete node types."""

import pytest

from repro.exceptions import TopologyError
from repro.sim.simulator import Simulator
from repro.topology import (
    ForwardNode,
    HostNode,
    TopologyGraph,
    build_link_chain,
)


def test_unknown_edge_endpoints_rejected():
    graph = TopologyGraph(Simulator())
    graph.add_node(HostNode("a"))
    with pytest.raises(TopologyError, match="unknown target node 'b'"):
        graph.add_edge("a", 0, "b", 0)
    with pytest.raises(TopologyError, match="unknown source node 'x'"):
        graph.add_edge("x", 0, "a", 0)


def test_duplicate_node_rejected():
    graph = TopologyGraph(Simulator())
    graph.add_node(HostNode("a"))
    with pytest.raises(TopologyError, match="duplicate node name 'a'"):
        graph.add_node(HostNode("a"))


def test_double_wire_rejected():
    graph = TopologyGraph(Simulator())
    graph.add_node(HostNode("a"))
    graph.add_node(HostNode("b"))
    graph.add_edge("a", 0, "b", 0)
    graph.wire()
    with pytest.raises(TopologyError, match="already wired"):
        graph.wire()


def test_direct_edge_delivers_synchronously():
    simulator = Simulator()
    graph = TopologyGraph(simulator)
    a = graph.add_node(HostNode("a"))
    b = graph.add_node(HostNode("b"))
    graph.add_edge("a", 0, "b", 0)
    graph.wire()
    a.inject(b"x" * 64, 0.0)
    assert b.delivered == 1
    assert b.arrivals[0][1] == b"x" * 64


def test_forward_node_routes_and_counts():
    simulator = Simulator()
    graph = TopologyGraph(simulator)
    a = graph.add_node(HostNode("a"))
    graph.add_node(ForwardNode("fwd", forwarding={0: 1}))
    b = graph.add_node(HostNode("b"))
    graph.add_edge("a", 0, "fwd", 0)
    graph.add_edge("fwd", 1, "b", 0)
    graph.wire()
    a.inject(b"y" * 80, 0.0)
    fwd = graph.node("fwd")
    assert b.delivered == 1
    assert fwd.counters() == {
        "forwarded": 1, "forwarded_bytes": 80, "no_route": 0,
    }


def test_forward_node_counts_unroutable_frames():
    node = ForwardNode("fwd", forwarding={})
    node.receive(b"z" * 20, 5, 0.0)
    assert node.counters()["no_route"] == 1
    assert node.counters()["forwarded"] == 0


def test_multi_hop_edge_chains_links_through_the_simulator():
    simulator = Simulator()
    graph = TopologyGraph(simulator)
    a = graph.add_node(HostNode("a"))
    b = graph.add_node(HostNode("b"))
    links = build_link_chain(
        simulator, names=["hop0", "hop1"], bandwidth_bps=1e9,
        propagation_delay=1e-6,
    )
    graph.add_edge("a", 0, "b", 0, links=links)
    graph.wire()
    a.inject(b"w" * 100, 0.0)
    assert b.delivered == 0  # nothing moves until the simulator runs
    simulator.run()
    assert b.delivered == 1
    assert links[0].stats.delivered == 1
    assert links[1].stats.offered == 1
    # Two serialisations + two propagations happened on the clock.
    assert simulator.now > 2e-6


def test_link_chain_requires_names():
    with pytest.raises(TopologyError, match="at least one link name"):
        build_link_chain(Simulator(), names=[])


def test_host_inject_without_egress_is_an_error():
    with pytest.raises(TopologyError, match="no egress attached"):
        HostNode("lonely").inject(b"q", 0.0)


def test_host_egress_port_cannot_be_attached_twice():
    node = HostNode("h")
    node.attach(0, lambda frame, time: None)
    with pytest.raises(TopologyError, match="already attached"):
        node.attach(0, lambda frame, time: None)


def test_host_supports_multiple_egress_ports():
    node = HostNode("h")
    seen = []
    node.attach(0, lambda frame, time: seen.append(("p0", frame)))
    node.attach(1, lambda frame, time: seen.append(("p1", frame)))
    node.inject(b"a", 0.0)
    node.inject(b"b", 0.0, port=1)
    assert seen == [("p0", b"a"), ("p1", b"b")]


def test_forward_and_switch_nodes_refuse_egress_overwrite():
    from repro.topology import ForwardNode

    node = ForwardNode("fwd")
    node.attach(1, lambda frame, time: None)
    with pytest.raises(TopologyError, match="already attached"):
        node.attach(1, lambda frame, time: None)
