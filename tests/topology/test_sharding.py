"""Sharded execution: partitioning, worker-count equivalence, determinism.

The contract under test is the tentpole of the sharded engine: same spec +
seed ⇒ byte-identical ``TopologyReport`` JSON at any worker count, with
partitioning failures named after the offending link/flow and worker
crashes named after the failing shard.
"""

import hashlib
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    FlowSpec,
    LinkSpec,
    NodeSpec,
    PartitionError,
    TopologyEngine,
    TopologySpec,
    fan_in_topology,
    partition_spec,
    rack_fan_in_topology,
    run_topology,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def assert_reports_identical(first, second):
    """Byte-identical JSON plus explicit per-registry equality.

    ``json_text`` equality already implies the rest, but comparing every
    counter, gauge and distribution summary separately turns "the 60 kB
    JSON blobs differ" into "counter shared.delivered: 1198 != 1200".
    """
    first_metrics = first.metrics.as_dict()
    second_metrics = second.metrics.as_dict()
    for kind in ("counters", "gauges", "distributions"):
        assert first_metrics[kind] == second_metrics[kind], kind
    assert [flow.as_dict() for flow in first.flows] == [
        flow.as_dict() for flow in second.flows
    ]
    assert first.json_text() == second.json_text()


class TestWorkerCountEquivalence:
    def test_fan_in_workers_1_vs_4_byte_identical(self):
        spec = fan_in_topology(senders=4, chunks=400, bases=4)
        assert_reports_identical(
            run_topology(spec, workers=1), run_topology(spec, workers=4)
        )

    def test_rack_fan_in_workers_1_vs_4_byte_identical(self):
        spec = rack_fan_in_topology(racks=4, senders=2, chunks=200, bases=4)
        assert_reports_identical(
            run_topology(spec, workers=1), run_topology(spec, workers=4)
        )

    def test_streaming_metrics_workers_1_vs_4_byte_identical(self):
        spec = rack_fan_in_topology(racks=3, senders=2, chunks=200, bases=4)
        assert_reports_identical(
            run_topology(spec, workers=1, metrics_mode="streaming"),
            run_topology(spec, workers=4, metrics_mode="streaming"),
        )

    def test_single_shard_path_matches_monolithic_engine(self):
        spec = fan_in_topology(senders=3, chunks=300, bases=4)
        assert_reports_identical(
            TopologyEngine(spec).run(), run_topology(spec, workers=1)
        )

    def test_multi_shard_path_matches_monolithic_engine(self):
        spec = rack_fan_in_topology(racks=3, senders=2, chunks=150, bases=3)
        assert_reports_identical(
            TopologyEngine(spec).run(), run_topology(spec, workers=2)
        )

    def test_lossy_rack_spec_stays_identical_across_workers(self):
        spec = rack_fan_in_topology(
            racks=2, senders=2, chunks=300, bases=3,
            scenario="no_table", loss=0.03,
        )
        first = run_topology(spec, workers=1)
        second = run_topology(spec, workers=2)
        assert first.integrity.missing > 0
        assert_reports_identical(first, second)


class TestHashSeedDeterminism:
    def test_json_text_is_stable_across_hash_seeds(self):
        # dict iteration order is the classic source of hash-seed
        # sensitivity; the report digest must not move when it changes.
        code = (
            "import hashlib\n"
            "from repro.topology import fan_in_topology, run_topology\n"
            "spec = fan_in_topology(senders=3, chunks=120, bases=3)\n"
            "text = run_topology(spec, workers=1).json_text()\n"
            "print(hashlib.sha256(text.encode()).hexdigest())\n"
        )
        digests = set()
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
            result = subprocess.run(
                [sys.executable, "-c", code],
                env=env, capture_output=True, text=True, check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1


class TestPartitioning:
    def test_rack_preset_splits_one_shard_per_rack(self):
        spec = rack_fan_in_topology(racks=3, senders=2, chunks=50)
        shards = partition_spec(spec)
        assert [shard.name for shard in shards] == [
            "encoder0", "encoder1", "encoder2"
        ]
        for rack, shard in enumerate(shards):
            assert {flow.name for flow in shard.spec.flows} == {
                f"flow{rack}_0", f"flow{rack}_1"
            }
            # The shard keeps the full spec's name and seed, so every
            # CRC-derived flow/link seed matches the monolithic run.
            assert shard.spec.name == spec.name
            assert shard.spec.seed == spec.seed

    def test_shard_keeps_only_its_measured_link(self):
        spec = rack_fan_in_topology(racks=2, senders=2, chunks=50)
        shards = partition_spec(spec)
        for rack, shard in enumerate(shards):
            assert [link.name for link in shard.spec.measured_links] == [
                f"wire{rack}"
            ]

    def test_single_component_spec_is_one_shard(self):
        spec = fan_in_topology(senders=5, chunks=50)
        shards = partition_spec(spec)
        assert len(shards) == 1
        assert shards[0].name == "encoder"
        assert len(shards[0].spec.flows) == 5

    def _bridged_encoders_spec(self):
        return TopologySpec(
            name="bridged",
            scenario="no_table",
            nodes=[
                NodeSpec(name="senderA", kind="host"),
                NodeSpec(name="encoderA", kind="encoder",
                         forwarding={0: 1}, default_egress_port=1,
                         decoder="decoderA"),
                NodeSpec(name="encoderB", kind="encoder",
                         forwarding={0: 1}, default_egress_port=1,
                         decoder="decoderB"),
                NodeSpec(name="decoderA", kind="decoder",
                         forwarding={0: 1}, default_egress_port=1),
                NodeSpec(name="decoderB", kind="decoder",
                         forwarding={0: 1}, default_egress_port=1),
                NodeSpec(name="sinkA", kind="host"),
            ],
            links=[
                LinkSpec(name="inA", source=("senderA", 0),
                         target=("encoderA", 0), direct=True),
                LinkSpec(name="wireA", source=("encoderA", 1),
                         target=("decoderA", 0), measured=True),
                LinkSpec(name="outA", source=("decoderA", 1),
                         target=("sinkA", 0), direct=True),
                # The offender: a data link bridging the two encoder
                # subgraphs, so no process boundary can separate them.
                LinkSpec(name="bridge", source=("decoderA", 2),
                         target=("encoderB", 0)),
                LinkSpec(name="wireB", source=("encoderB", 1),
                         target=("decoderB", 0)),
            ],
            flows=[
                FlowSpec(name="flowA", source="senderA", sink="sinkA",
                         chunks=10, bases=2),
            ],
        )

    def test_bridged_encoders_rejected_naming_the_link(self):
        with pytest.raises(PartitionError, match=r"link 'bridge'"):
            partition_spec(self._bridged_encoders_spec())

    def test_unpartitionable_spec_still_runs_at_one_worker(self):
        spec = self._bridged_encoders_spec()
        report = run_topology(spec, workers=1)
        assert report.flow("flowA").delivered == 10

    def test_unpartitionable_spec_rejected_at_two_workers(self):
        with pytest.raises(PartitionError, match=r"link 'bridge'"):
            run_topology(self._bridged_encoders_spec(), workers=2)

    def test_shared_decoder_via_links_rejected_naming_the_link(self):
        spec = TopologySpec(
            name="shared-decoder",
            scenario="no_table",
            nodes=[
                NodeSpec(name="senderA", kind="host"),
                NodeSpec(name="senderB", kind="host"),
                NodeSpec(name="encoderA", kind="encoder",
                         forwarding={0: 1}, default_egress_port=1,
                         decoder="decoder"),
                NodeSpec(name="encoderB", kind="encoder",
                         forwarding={0: 1}, default_egress_port=1,
                         decoder="decoder"),
                NodeSpec(name="decoder", kind="decoder",
                         forwarding={0: 2}, default_egress_port=2),
                NodeSpec(name="sink", kind="host"),
            ],
            links=[
                LinkSpec(name="inA", source=("senderA", 0),
                         target=("encoderA", 0), direct=True),
                LinkSpec(name="inB", source=("senderB", 0),
                         target=("encoderB", 0), direct=True),
                LinkSpec(name="wireA", source=("encoderA", 1),
                         target=("decoder", 0), measured=True),
                LinkSpec(name="wireB", source=("encoderB", 1),
                         target=("decoder", 1)),
                LinkSpec(name="out", source=("decoder", 2),
                         target=("sink", 0), direct=True),
            ],
            flows=[
                FlowSpec(name="flowA", source="senderA", sink="sink",
                         chunks=10, bases=2),
            ],
        )
        # wireB is the link that funnels the second encoder into the
        # already-claimed decoder: it gets named, not a bare refusal.
        with pytest.raises(PartitionError, match=r"link 'wireB'"):
            partition_spec(spec)

    def test_pairing_only_decoder_sharing_names_the_encoders(self):
        # No data link joins the two encoder subgraphs — only encoderB's
        # explicit control pairing claims encoderA's decoder.  There is
        # no link to blame, so the error names the encoders instead.
        spec = TopologySpec(
            name="pairing-clash",
            scenario="no_table",
            nodes=[
                NodeSpec(name="senderA", kind="host"),
                NodeSpec(name="senderB", kind="host"),
                NodeSpec(name="encoderA", kind="encoder",
                         forwarding={0: 1}, default_egress_port=1,
                         decoder="decoder"),
                NodeSpec(name="encoderB", kind="encoder",
                         forwarding={0: 1}, default_egress_port=1,
                         decoder="decoder"),
                NodeSpec(name="decoder", kind="decoder",
                         forwarding={0: 1}, default_egress_port=1),
                NodeSpec(name="decoderB", kind="decoder",
                         forwarding={0: 1}, default_egress_port=1),
                NodeSpec(name="sinkA", kind="host"),
                NodeSpec(name="sinkB", kind="host"),
            ],
            links=[
                LinkSpec(name="inA", source=("senderA", 0),
                         target=("encoderA", 0), direct=True),
                LinkSpec(name="inB", source=("senderB", 0),
                         target=("encoderB", 0), direct=True),
                LinkSpec(name="wireA", source=("encoderA", 1),
                         target=("decoder", 0), measured=True),
                LinkSpec(name="wireB", source=("encoderB", 1),
                         target=("decoderB", 0)),
                LinkSpec(name="outA", source=("decoder", 1),
                         target=("sinkA", 0), direct=True),
                LinkSpec(name="outB", source=("decoderB", 1),
                         target=("sinkB", 0), direct=True),
            ],
            flows=[
                FlowSpec(name="flowA", source="senderA", sink="sinkA",
                         chunks=10, bases=2),
            ],
        )
        with pytest.raises(
            PartitionError, match=r"'encoderA', 'encoderB' share a decoder"
        ):
            partition_spec(spec)

    def test_cross_component_flow_rejected_naming_the_flow(self):
        spec = rack_fan_in_topology(racks=2, senders=2, chunks=10)
        spec.flows = [
            replace(flow, sink="sink1") if flow.name == "flow0_0" else flow
            for flow in spec.flows
        ]
        with pytest.raises(PartitionError, match=r"flow 'flow0_0'"):
            partition_spec(spec)


class TestWorkerCrashReporting:
    def _broken_rack_spec(self):
        # Rack 1's flows read a trace file that does not exist, so that
        # shard's worker crashes while rack 0 is perfectly healthy.
        spec = rack_fan_in_topology(racks=2, senders=2, chunks=20)
        spec.flows = [
            flow if flow.source.startswith("sender0")
            else replace(flow, trace="/nonexistent/trace.pcap")
            for flow in spec.flows
        ]
        return spec

    def test_sequential_crash_names_the_shard(self):
        with pytest.raises(TopologyError, match=r"shard 'encoder1'"):
            run_topology(self._broken_rack_spec(), workers=1)

    def test_pool_crash_names_the_shard_not_a_bare_traceback(self):
        with pytest.raises(TopologyError, match=r"shard 'encoder1'"):
            run_topology(self._broken_rack_spec(), workers=2)


class TestRunTopologyValidation:
    def test_zero_workers_rejected(self):
        spec = fan_in_topology(senders=2, chunks=10)
        with pytest.raises(TopologyError, match=r"workers must be"):
            run_topology(spec, workers=0)

    def test_bad_metrics_mode_rejected(self):
        spec = fan_in_topology(senders=2, chunks=10)
        with pytest.raises(TopologyError, match=r"metrics_mode"):
            run_topology(spec, metrics_mode="approximate")

    def test_progress_reports_every_shard(self):
        spec = rack_fan_in_topology(racks=3, senders=2, chunks=30)
        lines = []
        run_topology(spec, workers=1, progress=lines.append)
        assert len(lines) == 3
        assert any("encoder2" in line for line in lines)


class TestStreamingMemoryBounds:
    def test_streaming_mode_retains_no_per_sample_state(self):
        from repro.exceptions import ReplayError

        spec = fan_in_topology(senders=3, chunks=200, bases=3)
        engine = TopologyEngine(spec, metrics_mode="streaming")
        report = engine.run()
        assert report.integrity.lossless_in_order
        # The tap records nothing per-frame; counters and byte totals
        # still come out of its O(1) aggregates.
        for _name, tap in engine.measured_taps:
            assert tap.records == []
        assert report.wire_payload_bytes > 0
        # Flow accounts match online: after a lossless run the pending
        # table has drained and no sent/arrival lists were ever kept.
        for state in engine._flows:
            assert state.account.pending == {}
            assert not hasattr(state.account, "arrivals")
        # Every distribution is a fixed-size sketch: asking for raw
        # samples is an error by design.
        latency = report.metrics.distributions()["endtoend.latency"]
        with pytest.raises(ReplayError, match=r"retains no samples"):
            latency.samples

    def test_streaming_and_exact_agree_on_everything_but_percentiles(self):
        spec = rack_fan_in_topology(racks=2, senders=2, chunks=250, bases=4)
        exact = run_topology(spec, workers=1, metrics_mode="exact")
        streaming = run_topology(spec, workers=1, metrics_mode="streaming")
        assert exact.metrics.as_dict()["counters"] == (
            streaming.metrics.as_dict()["counters"]
        )
        assert exact.integrity.as_dict() == streaming.integrity.as_dict()
        assert exact.chunks_sent == streaming.chunks_sent
        assert exact.wire_payload_bytes == streaming.wire_payload_bytes
        assert exact.duration == streaming.duration
        exact_latency = exact.latency_summary()
        streaming_latency = streaming.latency_summary()
        assert streaming_latency["count"] == exact_latency["count"]
        assert streaming_latency["min"] == exact_latency["min"]
        assert streaming_latency["max"] == exact_latency["max"]
        for key in ("p50", "p90", "p99"):
            assert streaming_latency[key] == pytest.approx(
                exact_latency[key], rel=0.011
            )
