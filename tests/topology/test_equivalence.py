"""Equivalence: a 1-flow linear TopologySpec reproduces ReplayHarness exactly.

The refactor's core promise: the generalised topology engine is not an
approximation of the linear harness — on a one-flow chain it produces the
*same* ratios, counters, integrity verdicts, latency distributions and
simulated timeline, bit for bit, across the figure-3 scenarios and under
loss, reordering and multi-hop paths.
"""

import pytest

from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay import FixedRatePacing, ReplayHarness, WorkloadTraceSource
from repro.topology import TopologyEngine, linear_topology
from repro.workloads import SyntheticSensorWorkload

CHUNKS = 3000
BASES = 6
FLOW_SEED = 21


def run_harness(scenario, hops=1, loss=0.0, reorder=0.0, link_seed=0):
    workload = SyntheticSensorWorkload(
        num_chunks=CHUNKS, distinct_bases=BASES, seed=FLOW_SEED
    )
    impairments = None
    if loss or reorder:
        impairments = ImpairmentModel(
            loss_probability=loss, reorder_probability=reorder, seed=link_seed
        )
    harness = ReplayHarness(
        scenario=scenario,
        static_bases=workload.bases() if scenario == "static" else None,
        hops=hops,
        impairments=impairments,
        seed=0,
    )
    return harness.run(
        WorkloadTraceSource(workload), FixedRatePacing(packet_rate=1e6)
    )


def run_engine(scenario, hops=1, loss=0.0, reorder=0.0, link_seed=0):
    spec = linear_topology(
        scenario=scenario,
        hops=hops,
        chunks=CHUNKS,
        bases=BASES,
        flow_seed=FLOW_SEED,
        loss=loss,
        reorder=reorder,
        link_seed=link_seed,
        seed=0,
    )
    return TopologyEngine(spec).run()


def assert_bit_identical(engine_report, harness_report):
    engine_dict = engine_report.as_dict()
    harness_dict = harness_report.as_dict()
    # Headline numbers.
    for key in (
        "chunks_sent",
        "payload_bytes_sent",
        "wire_payload_bytes",
        "compression_ratio",
        "savings_percent",
        "duration",
        "learning_time",
        "integrity",
        "latency",
    ):
        assert engine_dict[key] == harness_dict[key], key
    # Every counter, gauge and distribution — the engine only *adds* the
    # per-flow attribution namespace on top of the harness's set.
    engine_counters = {
        name: value
        for name, value in engine_dict["metrics"]["counters"].items()
        if not name.startswith("flow.")
    }
    assert engine_counters == harness_dict["metrics"]["counters"]
    assert engine_dict["metrics"]["gauges"] == harness_dict["metrics"]["gauges"]
    engine_distributions = {
        name: value
        for name, value in engine_dict["metrics"]["distributions"].items()
        if not name.startswith("flow.")
    }
    assert engine_distributions == harness_dict["metrics"]["distributions"]


@pytest.mark.parametrize("scenario", ["no_table", "static", "dynamic"])
def test_linear_one_flow_matches_harness(scenario):
    assert_bit_identical(run_engine(scenario), run_harness(scenario))


def test_dynamic_scenario_actually_compressed():
    # Guard the parametrised equivalence against a trivially-empty run: the
    # dynamic scenario must have learned and compressed on both sides.
    report = run_engine("dynamic")
    assert report.learning_time is not None
    assert report.metrics.counter("encoder.raw_to_compressed") > 0


@pytest.mark.parametrize("hops", [2, 3])
def test_multi_hop_matches_harness(hops):
    assert_bit_identical(
        run_engine("dynamic", hops=hops), run_harness("dynamic", hops=hops)
    )


@pytest.mark.parametrize("link_seed", [0, 7, 99])
def test_lossy_reordered_link_matches_harness(link_seed):
    """Property over impairment seeds: identical loss/reorder trajectories."""
    engine_report = run_engine(
        "dynamic", loss=0.04, reorder=0.03, link_seed=link_seed
    )
    harness_report = run_harness(
        "dynamic", loss=0.04, reorder=0.03, link_seed=link_seed
    )
    assert engine_report.integrity.missing > 0
    assert_bit_identical(engine_report, harness_report)


def test_multi_hop_lossy_matches_harness():
    assert_bit_identical(
        run_engine("no_table", hops=3, loss=0.05, link_seed=3),
        run_harness("no_table", hops=3, loss=0.05, link_seed=3),
    )
