"""Unit tests for the tracer core: event shapes, context, the global swap."""

import pytest

from repro import obs
from repro.obs import EventCollector, NullTracer, Tracer


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    """Every test leaves the process-wide tracer the way it found it."""
    before = obs.TRACER
    yield
    obs.TRACER = before


class TestTracerEvents:
    def test_instant_shape(self):
        sink = EventCollector()
        tracer = Tracer(sink)
        tracer.instant("link.drop", track="wire", args={"reason": "loss"})
        (event,) = sink.events
        assert event["ph"] == "i"
        assert event["name"] == "link.drop"
        assert event["track"] == "wire"
        assert event["ts"] == 0.0
        assert event["args"] == {"reason": "loss"}
        assert event["seq"] == 0
        assert event["shard"] == 0

    def test_span_records_duration(self):
        sink = EventCollector()
        tracer = Tracer(sink)
        tracer.span("encode", track="encoder", start=1.0, end=1.5)
        (event,) = sink.events
        assert event["ph"] == "X"
        assert event["ts"] == 1.0
        assert event["dur"] == 0.5

    def test_span_duration_never_negative(self):
        sink = EventCollector()
        Tracer(sink).span("encode", track="e", start=2.0, end=1.0)
        assert sink.events[0]["dur"] == 0.0

    def test_counter_shape(self):
        sink = EventCollector()
        Tracer(sink).counter("snapshot", track="snapshots", values={"q": 3})
        (event,) = sink.events
        assert event["ph"] == "C"
        assert event["args"] == {"q": 3}

    def test_sequence_numbers_increment(self):
        sink = EventCollector()
        tracer = Tracer(sink)
        for _ in range(3):
            tracer.instant("tick", track="t")
        assert [event["seq"] for event in sink.events] == [0, 1, 2]

    def test_clock_supplies_timestamps(self):
        sink = EventCollector()
        tracer = Tracer(sink, clock=lambda: 42.0)
        tracer.instant("tick", track="t")
        assert sink.events[0]["ts"] == 42.0

    def test_explicit_ts_beats_the_clock(self):
        sink = EventCollector()
        tracer = Tracer(sink, clock=lambda: 42.0)
        tracer.instant("tick", track="t", ts=7.0)
        assert sink.events[0]["ts"] == 7.0

    def test_shard_is_stamped(self):
        sink = EventCollector()
        Tracer(sink, shard=3).instant("tick", track="t")
        assert sink.events[0]["shard"] == 3


class TestContext:
    def test_context_attached_to_events(self):
        sink = EventCollector()
        tracer = Tracer(sink)
        tracer.set_context("flow0", 17)
        tracer.instant("encode", track="e")
        tracer.clear_context()
        tracer.instant("idle", track="e")
        tagged, untagged = sink.events
        assert tagged["flow"] == "flow0"
        assert tagged["chunk"] == 17
        assert "flow" not in untagged
        assert "chunk" not in untagged

    def test_restore_context_round_trips(self):
        tracer = Tracer(EventCollector())
        tracer.set_context("flow1", 2)
        saved = tracer.context
        tracer.clear_context()
        assert tracer.context is None
        tracer.restore_context(saved)
        assert tracer.context == ("flow1", 2)


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.context is None
        # Every instrumentation entry point is a no-op.
        tracer.instant("x", track="t")
        tracer.span("x", track="t", start=0.0, end=1.0)
        tracer.counter("x", track="t", values={})
        tracer.set_context("f", 1)
        tracer.clear_context()
        tracer.restore_context(("f", 1))
        tracer.emit_raw({"ph": "i"})


class TestGlobalSwap:
    def test_enable_installs_and_disable_restores_null(self):
        tracer = obs.enable()
        assert obs.TRACER is tracer
        assert tracer.enabled
        previous = obs.disable()
        assert previous is tracer
        assert isinstance(obs.TRACER, NullTracer)

    def test_enable_forwards_snapshot_interval(self):
        tracer = obs.enable(snapshot_interval=0.5)
        try:
            assert tracer.snapshot_interval == 0.5
        finally:
            obs.disable()
