"""End-to-end telemetry: chunk lifecycle, off-mode invariance, sharding.

These are the integration contracts of the observability layer:

* every chunk's full lifecycle — source injection, encode, wire,
  decode, sink arrival — is reconstructable from the trace via its
  ``(flow, chunk)`` identity;
* tracing observes and never perturbs: the report of a traced run is
  byte-identical to the untraced one, at any worker count;
* the merged multi-worker trace is exactly the sequential trace.
"""

import pytest

from repro import obs
from repro.topology import preset_topology, run_topology


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    before = obs.TRACER
    yield
    obs.TRACER = before


def _spec(**overrides):
    kwargs = dict(chunks=30, bases=3, seed=2020)
    kwargs.update(overrides)
    return preset_topology("fan-in", **kwargs)


def _traced_run(workers=1, snapshot_interval=None):
    tracer = obs.enable(snapshot_interval=snapshot_interval)
    try:
        report = run_topology(_spec(), workers=workers)
    finally:
        obs.disable()
    return report, tracer.sink.events


class TestChunkLifecycle:
    def test_every_stage_of_one_chunk_is_reconstructable(self):
        report, events = _traced_run()
        assert report.integrity.intact

        chunk = [
            event for event in events
            if event.get("flow") == "flow0" and event.get("chunk") == 0
        ]
        stages = [event["name"] for event in chunk]
        for stage in ("flow.inject", "encode", "link.serialize",
                      "link.propagate", "decode", "flow.arrive"):
            assert stage in stages, f"missing lifecycle stage {stage}"
        # The lifecycle is causally ordered in simulated time.
        timestamps = [event["ts"] for event in chunk]
        assert timestamps == sorted(timestamps)
        arrive = next(e for e in chunk if e["name"] == "flow.arrive")
        assert arrive["args"]["outcome"] == "delivered"

    def test_every_chunk_of_every_flow_is_delivered_in_the_trace(self):
        report, events = _traced_run()
        arrivals = {
            (event["flow"], event["chunk"])
            for event in events
            if event["name"] == "flow.arrive"
            and event["args"]["outcome"] == "delivered"
        }
        spec = _spec()
        expected = {
            (flow.name, index)
            for flow in spec.flows
            for index in range(30)
        }
        assert arrivals == expected

    def test_dictionary_outcomes_are_annotated(self):
        # Dynamic scenario: the run (tens of us) ends before the control
        # plane's ~1.8 ms installs land, so every encode is a learn miss
        # carrying the basis it digested.
        _report, events = _traced_run()
        encodes = [event for event in events if event["name"] == "encode"]
        assert encodes
        assert all(e["args"]["outcome"] == "miss" for e in encodes)
        assert all("basis" in e["args"] for e in encodes)

        # Static scenario: mappings are preinstalled, every encode hits
        # and is annotated with the identifier it compressed to.
        tracer = obs.enable()
        try:
            run_topology(_spec(scenario="static"), workers=1)
        finally:
            obs.disable()
        hits = [e for e in tracer.sink.events if e["name"] == "encode"]
        assert hits
        assert all(e["args"]["outcome"] == "hit" for e in hits)
        assert all("identifier" in e["args"] for e in hits)


class TestOffModeInvariance:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_report_bytes_identical_with_tracing_on_and_off(self, workers):
        plain = run_topology(_spec(), workers=workers)
        traced_report, events = _traced_run(
            workers=workers, snapshot_interval=1e-5
        )
        assert traced_report.json_text() == plain.json_text()
        assert events, "traced run recorded nothing"

    def test_snapshots_do_not_change_the_trace_timeline(self):
        _report, bare = _traced_run()
        _report, sampled = _traced_run(snapshot_interval=1e-5)
        non_counter = [e for e in sampled if e["ph"] != "C"]
        # Snapshot counters are interleaved; everything else is unchanged
        # (sequence numbers differ because counters consume them).
        strip = lambda e: {k: v for k, v in e.items() if k != "seq"}
        assert [strip(e) for e in non_counter] == [strip(e) for e in bare]
        assert any(e["ph"] == "C" for e in sampled)


class TestShardedTraces:
    def test_merged_trace_is_worker_count_independent(self):
        _report, sequential = _traced_run(workers=1, snapshot_interval=1e-5)
        _report, sharded = _traced_run(workers=2, snapshot_interval=1e-5)
        assert sharded == sequential

    def test_snapshot_counters_survive_the_segment_round_trip(self):
        _report, sharded = _traced_run(workers=2, snapshot_interval=1e-5)
        counters = [e for e in sharded if e["ph"] == "C"]
        assert counters
        sample = counters[0]["args"]
        for series in ("ratio", "queue_depth", "pkt_per_s",
                       "dictionary_entries"):
            assert series in sample
