"""Sinks and exporters: JSONL round trip, Chrome export, segment merge."""

import json

import pytest

from repro.obs import (
    EventCollector,
    JsonLinesSink,
    Tracer,
    event_sort_key,
    merge_segments,
    read_events,
    write_chrome_trace,
    write_events,
)


def _sample_events():
    sink = EventCollector()
    tracer = Tracer(sink)
    tracer.set_context("flow0", 0)
    tracer.span("encode", track="encoder", start=1e-6, end=2e-6,
                args={"outcome": "miss"})
    tracer.clear_context()
    tracer.instant("link.drop", track="wire", ts=3e-6, args={"reason": "loss"})
    tracer.counter("snapshot", track="snapshots", values={"queue_depth": 2},
                   ts=4e-6)
    return sink.events


class TestJsonLinesSink:
    def test_streams_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(str(path))
        tracer = Tracer(sink)
        tracer.instant("a", track="t", ts=1.0)
        tracer.instant("b", track="t", ts=2.0)
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonLinesSink(str(tmp_path / "trace.jsonl"))
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"ph": "i"})


class TestWriteReadEvents:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "events.jsonl"
        assert write_events(events, str(path)) == len(events)
        assert read_events(str(path)) == events

    def test_chrome_trace_loads_and_scales_back(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(events, str(path)) == len(events)

        document = json.loads(path.read_text(encoding="utf-8"))
        records = document["traceEvents"]
        # Perfetto essentials: metadata names the tracks, spans carry dur,
        # instants carry a scope, timestamps are microseconds.
        metadata = [record for record in records if record["ph"] == "M"]
        assert any(record["name"] == "process_name" for record in metadata)
        thread_names = {
            record["args"]["name"]
            for record in metadata
            if record["name"] == "thread_name"
        }
        assert {"encoder", "wire", "snapshots"} <= thread_names
        span = next(record for record in records if record["ph"] == "X")
        assert span["dur"] == pytest.approx(1.0)  # 1 us
        assert span["ts"] == pytest.approx(1.0)
        instant = next(record for record in records if record["ph"] == "i")
        assert instant["s"] == "t"

        # read_events detects the Chrome format and scales back to seconds.
        recovered = read_events(str(path))
        assert len(recovered) == len(events)
        assert recovered[0]["ts"] == pytest.approx(1e-6)
        assert recovered[0]["flow"] == "flow0"
        assert recovered[0]["chunk"] == 0


class TestMergeSegments:
    def test_merge_orders_by_ts_then_shard_then_seq(self, tmp_path):
        first = tmp_path / "shard-0.jsonl"
        second = tmp_path / "shard-1.jsonl"
        sink0 = JsonLinesSink(str(first))
        tracer0 = Tracer(sink0, shard=0)
        tracer0.instant("late", track="t", ts=2.0)
        tracer0.instant("early", track="t", ts=1.0)
        sink0.close()
        sink1 = JsonLinesSink(str(second))
        tracer1 = Tracer(sink1, shard=1)
        tracer1.instant("tie", track="t", ts=1.0)
        sink1.close()

        merged = merge_segments([str(first), str(second)])
        assert [event["name"] for event in merged] == ["early", "tie", "late"]
        # The key is a pure function of (ts, shard, seq): shard 0 wins ties.
        assert [event_sort_key(event)[1] for event in merged] == [0, 1, 0]

    def test_merge_of_nothing_is_empty(self):
        assert merge_segments([]) == []
