"""PeriodicSnapshotter: boundary crossing, flush, simulator integration."""

import pytest

from repro.obs import EventCollector, PeriodicSnapshotter, Tracer
from repro.sim.simulator import Simulator


class _ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBoundaries:
    def test_rejects_non_positive_interval(self):
        tracer = Tracer(EventCollector())
        with pytest.raises(ValueError):
            PeriodicSnapshotter(0.0, tracer, dict)
        with pytest.raises(ValueError):
            PeriodicSnapshotter(-1.0, tracer, dict)

    def test_emits_one_sample_per_crossed_boundary(self):
        clock = _ManualClock()
        sink = EventCollector()
        tracer = Tracer(sink, clock=clock)
        snapshotter = PeriodicSnapshotter(1.0, tracer, lambda: {"v": 7})

        clock.now = 0.5
        snapshotter.on_event()
        assert snapshotter.samples_taken == 0

        # One event jumps past three boundaries: all three are emitted,
        # stamped at the boundary times, not at the observation time.
        clock.now = 3.2
        snapshotter.on_event()
        assert snapshotter.samples_taken == 3
        assert [event["ts"] for event in sink.events] == [1.0, 2.0, 3.0]
        assert all(event["ph"] == "C" for event in sink.events)
        assert all(event["args"] == {"v": 7} for event in sink.events)

    def test_flush_stamps_the_current_time(self):
        clock = _ManualClock()
        sink = EventCollector()
        tracer = Tracer(sink, clock=clock)
        snapshotter = PeriodicSnapshotter(1.0, tracer, lambda: {"v": 1})
        clock.now = 0.7
        snapshotter.flush()
        assert sink.events[-1]["ts"] == 0.7
        assert snapshotter.samples_taken == 1


class TestSimulatorObserver:
    def test_observer_does_not_change_the_schedule(self):
        """Snapshots must not perturb executed_events or the run duration."""

        def run(with_snapshots):
            simulator = Simulator()
            sink = EventCollector()
            tracer = Tracer(sink, clock=lambda: simulator.now)
            snapshotter = None
            if with_snapshots:
                snapshotter = PeriodicSnapshotter(0.25, tracer, lambda: {"v": 1})
                simulator.add_observer(snapshotter.on_event)
            for step in range(1, 5):
                simulator.schedule_at(step * 0.3, lambda: None)
            simulator.run()
            return simulator.executed_events, simulator.now, snapshotter

        plain_events, plain_now, _ = run(with_snapshots=False)
        traced_events, traced_now, snapshotter = run(with_snapshots=True)
        assert traced_events == plain_events
        assert traced_now == plain_now
        assert snapshotter.samples_taken > 0

    def test_remove_observer_stops_sampling(self):
        simulator = Simulator()
        sink = EventCollector()
        tracer = Tracer(sink, clock=lambda: simulator.now)
        snapshotter = PeriodicSnapshotter(0.1, tracer, lambda: {"v": 1})
        simulator.add_observer(snapshotter.on_event)
        simulator.remove_observer(snapshotter.on_event)
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        assert snapshotter.samples_taken == 0
