"""Span statistics: per-stage aggregation and the rendered summary."""

import pytest

from repro.obs import EventCollector, Tracer, format_summary, summarize_events


def _events_with_spans():
    sink = EventCollector()
    tracer = Tracer(sink)
    for index, duration in enumerate((1e-6, 2e-6, 3e-6, 4e-6, 5e-6)):
        tracer.set_context("flow0", index)
        tracer.span("encode", track="encoder", start=index * 1e-5,
                    end=index * 1e-5 + duration)
    tracer.clear_context()
    tracer.span("decode", track="decoder", start=0.0, end=6e-6)
    tracer.instant("link.drop", track="wire", ts=1.0)  # not a span
    return sink.events


class TestSummarizeEvents:
    def test_counts_and_stage_stats(self):
        summary = summarize_events(_events_with_spans(), top=2)
        assert summary["events"] == 7
        assert summary["spans"] == 6
        stages = {stage["stage"]: stage for stage in summary["stages"]}
        assert set(stages) == {"encode", "decode"}

        encode = stages["encode"]
        assert encode["count"] == 5
        assert encode["mean_s"] == pytest.approx(3e-6)
        assert encode["max_s"] == pytest.approx(5e-6)
        assert encode["total_s"] == pytest.approx(1.5e-5)
        # Nearest-rank percentiles over [1, 2, 3, 4, 5] us.
        assert encode["p50_s"] == pytest.approx(3e-6)
        assert encode["p99_s"] == pytest.approx(5e-6)

    def test_stages_sorted_by_total_time(self):
        summary = summarize_events(_events_with_spans())
        totals = [stage["total_s"] for stage in summary["stages"]]
        assert totals == sorted(totals, reverse=True)

    def test_slowest_spans_carry_chunk_identity(self):
        summary = summarize_events(_events_with_spans(), top=2)
        encode = next(s for s in summary["stages"] if s["stage"] == "encode")
        slowest = encode["slowest"]
        assert len(slowest) == 2
        assert slowest[0]["dur_s"] == pytest.approx(5e-6)
        assert slowest[0]["flow"] == "flow0"
        assert slowest[0]["chunk"] == 4

    def test_empty_input(self):
        summary = summarize_events([])
        assert summary["events"] == 0
        assert summary["spans"] == 0
        assert summary["stages"] == []


class TestFormatSummary:
    def test_renders_table_and_slowest_sections(self):
        text = format_summary(summarize_events(_events_with_spans(), top=1))
        assert "7 events, 6 spans, 2 stages" in text
        assert "encode" in text and "decode" in text
        for column in ("count", "mean", "p50", "p99", "total"):
            assert column in text
        assert "slowest encode:" in text
        assert "flow=flow0" in text

    def test_renders_empty_summary(self):
        assert "0 events" in format_summary(summarize_events([]))
