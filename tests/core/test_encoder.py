"""Tests for the GD encoder."""

import pytest

from repro.core.dictionary import BasisDictionary
from repro.core.encoder import EncoderMode, GDEncoder
from repro.core.records import CompressedRecord, RecordType, UncompressedRecord
from repro.core.transform import GDTransform
from repro.exceptions import CodingError, DictionaryError


@pytest.fixture()
def transform():
    return GDTransform(order=4)  # 16-bit chunks keep tests readable


def make_chunks(transform, bases, deviations):
    """Chunks built from (basis index, deviation position) pairs."""
    code = transform.code
    chunks = []
    for basis, position in deviations:
        codeword = code.encode(bases[basis])
        body = codeword if position is None else codeword ^ (1 << position)
        chunks.append(body.to_bytes(transform.chunk_bytes, "big"))
    return chunks


class TestModes:
    def test_mode_parsing(self):
        assert EncoderMode.from_name("static") is EncoderMode.STATIC
        assert EncoderMode.from_name(EncoderMode.DYNAMIC) is EncoderMode.DYNAMIC
        with pytest.raises(CodingError):
            EncoderMode.from_name("bogus")

    def test_no_table_mode_never_compresses(self, transform):
        encoder = GDEncoder(transform, mode="no_table", alignment_padding_bits=0)
        records = encoder.encode_all([b"\x00\x01", b"\x00\x01", b"\x00\x01"])
        assert all(isinstance(r, UncompressedRecord) for r in records)
        assert encoder.stats.compressed_records == 0

    def test_table_modes_require_dictionary(self, transform):
        with pytest.raises(DictionaryError):
            GDEncoder(transform, mode="dynamic")
        with pytest.raises(DictionaryError):
            GDEncoder(transform, mode="static")

    def test_static_mode_does_not_learn(self, transform):
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(transform, dictionary, mode="static")
        encoder.encode_chunk(b"\x12\x34")
        assert len(dictionary) == 0

    def test_dynamic_mode_learns_and_compresses_repeats(self, transform):
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(transform, dictionary, mode="dynamic")
        first = encoder.encode_chunk(b"\x12\x34")
        second = encoder.encode_chunk(b"\x12\x34")
        assert isinstance(first, UncompressedRecord)
        assert isinstance(second, CompressedRecord)
        assert len(dictionary) == 1

    def test_static_mode_compresses_preloaded_bases(self, transform):
        chunk = b"\x12\x34"
        basis = transform.split(chunk).basis
        dictionary = BasisDictionary(16)
        dictionary.preload(iter([basis]))
        encoder = GDEncoder(transform, dictionary, mode="static")
        record = encoder.encode_chunk(chunk)
        assert isinstance(record, CompressedRecord)
        assert record.identifier == 0


class TestIdentifierWidth:
    def test_default_width_matches_dictionary(self, transform):
        dictionary = BasisDictionary(1 << 10)
        encoder = GDEncoder(transform, dictionary)
        assert encoder.identifier_bits == 10

    def test_explicit_width_validated_against_capacity(self, transform):
        dictionary = BasisDictionary(1 << 10)
        with pytest.raises(DictionaryError):
            GDEncoder(transform, dictionary, identifier_bits=8)

    def test_records_carry_the_configured_width(self, transform):
        dictionary = BasisDictionary(1 << 6)
        encoder = GDEncoder(transform, dictionary, identifier_bits=6)
        encoder.encode_chunk(b"\x12\x34")
        record = encoder.encode_chunk(b"\x12\x34")
        assert isinstance(record, CompressedRecord)
        assert record.identifier_bits == 6


class TestLearningDelay:
    def test_learning_delay_keeps_chunks_uncompressed(self, transform):
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(
            transform, dictionary, mode="dynamic", learning_delay_chunks=3
        )
        chunk = b"\x12\x34"
        kinds = [encoder.encode_chunk(chunk).record_type for _ in range(6)]
        # chunk 1 misses and starts learning; chunks 2-4 fall inside the
        # delay window; chunks 5+ are compressed.
        assert kinds[:4] == [RecordType.UNCOMPRESSED] * 4
        assert kinds[4:] == [RecordType.COMPRESSED] * 2

    def test_zero_delay_compresses_immediately(self, transform):
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(transform, dictionary, mode="dynamic")
        chunk = b"\x12\x34"
        encoder.encode_chunk(chunk)
        assert encoder.encode_chunk(chunk).record_type is RecordType.COMPRESSED

    def test_negative_delay_rejected(self, transform):
        with pytest.raises(CodingError):
            GDEncoder(transform, BasisDictionary(4), learning_delay_chunks=-1)


class TestStats:
    def test_paper_ratios_from_stats(self):
        transform = GDTransform(order=8)
        dictionary = BasisDictionary(1 << 15)
        encoder = GDEncoder(
            transform, dictionary, mode="dynamic", alignment_padding_bits=8
        )
        chunk = bytes(31) + b"\x01"
        encoder.encode_chunk(chunk)
        for _ in range(99):
            encoder.encode_chunk(chunk)
        stats = encoder.stats
        assert stats.chunks == 100
        assert stats.uncompressed_records == 1
        assert stats.compressed_records == 99
        # 1 × 33 B + 99 × 3 B over 100 × 32 B.
        expected = (33 + 99 * 3) / (100 * 32)
        assert stats.compression_ratio == pytest.approx(expected)
        assert stats.unpadded_ratio < stats.compression_ratio
        assert stats.input_bytes == 3200
        assert stats.output_bytes == 33 + 99 * 3

    def test_stats_as_dict_and_reset(self, transform):
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(transform, dictionary)
        encoder.encode_chunk(b"\x12\x34")
        assert encoder.stats.as_dict()["chunks"] == 1
        encoder.reset_stats()
        assert encoder.stats.chunks == 0
        assert len(dictionary) == 1  # dictionary survives a stats reset

    def test_empty_stats_ratios(self, transform):
        encoder = GDEncoder(transform, BasisDictionary(4))
        assert encoder.stats.compression_ratio == 0.0
        assert encoder.stats.unpadded_ratio == 0.0


class TestStreaming:
    def test_encode_stream_is_lazy(self, transform):
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(transform, dictionary)
        stream = encoder.encode_stream(iter([b"\x12\x34", b"\x12\x34"]))
        first = next(stream)
        assert encoder.stats.chunks == 1
        assert isinstance(first, UncompressedRecord)
        assert isinstance(next(stream), CompressedRecord)

    def test_chunks_sharing_a_basis_share_an_identifier(self, transform, rng):
        code = transform.code
        basis = rng.getrandbits(code.k)
        codeword = code.encode(basis)
        chunks = [
            (codeword ^ (1 << position)).to_bytes(2, "big")
            for position in range(0, code.n, 3)
        ]
        dictionary = BasisDictionary(16)
        encoder = GDEncoder(transform, dictionary)
        records = encoder.encode_all(chunks)
        identifiers = {
            record.identifier
            for record in records
            if isinstance(record, CompressedRecord)
        }
        assert identifiers == {0}
        assert len(dictionary) == 1
