"""Property-based tests (hypothesis) for the core coding invariants.

These are the invariants the whole system rests on:

* the CRC used for syndromes is linear over GF(2);
* the GD transformation is a bijection: split/join round-trips for every
  chunk, at several Hamming orders;
* chunks within Hamming distance one of a codeword share that codeword's
  basis;
* the codec is lossless for arbitrary byte strings;
* the dictionary never hands out two identifiers for one key or one
  identifier for two keys.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import GDCodec
from repro.core.crc import syndrome_crc
from repro.core.dictionary import BasisDictionary
from repro.core.hamming import HammingCode
from repro.core.transform import GDTransform

# Session-scoped codes/transforms so hypothesis examples do not pay the
# construction cost repeatedly.
_CODE_BY_ORDER = {order: HammingCode(order) for order in (3, 4, 5, 8)}
_TRANSFORM_BY_ORDER = {order: GDTransform(order=order) for order in (3, 4, 8)}


class TestCrcProperties:
    @given(
        left=st.integers(min_value=0, max_value=(1 << 255) - 1),
        right=st.integers(min_value=0, max_value=(1 << 255) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_syndrome_crc_is_linear(self, left, right):
        engine = _CODE_BY_ORDER[8].crc_engine
        combined = engine.compute_bits(left ^ right, 255)
        assert combined == engine.compute_bits(left, 255) ^ engine.compute_bits(right, 255)

    @given(value=st.integers(min_value=0, max_value=(1 << 127) - 1))
    @settings(max_examples=60, deadline=None)
    def test_syndrome_width_bounded(self, value):
        engine = syndrome_crc(0x09, 7)
        syndrome = engine.compute_bits(value, 127)
        assert 0 <= syndrome < (1 << 7)

    @given(value=st.integers(min_value=0, max_value=(1 << 63) - 1))
    @settings(max_examples=60, deadline=None)
    def test_crc_of_shifted_unit_matches_unit_table(self, value):
        # CRC(x^i) values are the columns of H; any message's CRC is the XOR
        # of the columns selected by its set bits.
        engine = syndrome_crc(0x03, 6)
        width = 63
        units = engine.unit_crcs(width)
        expected = 0
        for position in range(width):
            if (value >> position) & 1:
                expected ^= units[position]
        assert engine.compute_bits(value, width) == expected


class TestHammingProperties:
    @given(
        order=st.sampled_from([3, 4, 5, 8]),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_join_roundtrip(self, order, data):
        code = _CODE_BY_ORDER[order]
        chunk = data.draw(st.integers(min_value=0, max_value=(1 << code.n) - 1))
        basis, syndrome = code.chunk_to_basis(chunk)
        assert code.basis_to_chunk(basis, syndrome) == chunk

    @given(
        order=st.sampled_from([3, 4, 8]),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_bit_neighbours_share_basis(self, order, data):
        code = _CODE_BY_ORDER[order]
        basis = data.draw(st.integers(min_value=0, max_value=(1 << code.k) - 1))
        position = data.draw(st.integers(min_value=0, max_value=code.n - 1))
        codeword = code.encode(basis)
        neighbour = codeword ^ (1 << position)
        neighbour_basis, syndrome = code.chunk_to_basis(neighbour)
        assert neighbour_basis == basis
        assert code.error_position(syndrome) == position

    @given(
        order=st.sampled_from([3, 4]),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_syndrome_zero_iff_codeword(self, order, data):
        code = _CODE_BY_ORDER[order]
        chunk = data.draw(st.integers(min_value=0, max_value=(1 << code.n) - 1))
        is_codeword = code.syndrome(chunk) == 0
        assert is_codeword == code.is_codeword(chunk)


class TestTransformProperties:
    @given(
        order=st.sampled_from([3, 4, 8]),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_transform_bijection(self, order, data):
        transform = _TRANSFORM_BY_ORDER[order]
        chunk = data.draw(
            st.binary(min_size=transform.chunk_bytes, max_size=transform.chunk_bytes)
        )
        parts = transform.split(chunk)
        assert transform.join_to_bytes(parts) == chunk

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_field_widths_always_respected(self, data):
        transform = _TRANSFORM_BY_ORDER[4]
        chunk = data.draw(st.integers(min_value=0, max_value=(1 << 16) - 1))
        parts = transform.split(chunk)
        assert 0 <= parts.prefix < (1 << transform.prefix_bits)
        assert 0 <= parts.basis < (1 << transform.basis_bits)
        assert 0 <= parts.deviation < (1 << transform.deviation_bits)


class TestCodecProperties:
    @given(payload=st.binary(min_size=0, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_codec_lossless_for_arbitrary_bytes(self, payload):
        codec = GDCodec(order=4)
        assert codec.roundtrip(payload, pad=True) == payload

    @given(payload=st.binary(min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_container_roundtrip_arbitrary_bytes(self, payload):
        codec = GDCodec(order=4, identifier_bits=8)
        blob = codec.compress_to_container(payload)
        assert GDCodec(order=4, identifier_bits=8).decompress_container(blob) == payload

    @given(payload=st.binary(min_size=32, max_size=320))
    @settings(max_examples=40, deadline=None)
    def test_no_table_mode_never_shrinks_or_learns(self, payload):
        codec = GDCodec(order=8, mode="no_table", alignment_padding_bits=8)
        result = codec.compress(payload, pad=True)
        assert result.compressed_record_fraction == 0.0
        assert result.payload_bytes >= len(payload)


class TestDictionaryProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200),
        capacity=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_mapping_stays_bijective(self, keys, capacity):
        dictionary = BasisDictionary(capacity)
        for key in keys:
            dictionary.insert(key)
            snapshot = dictionary.snapshot()
            # no two keys share an identifier, no identifier out of range
            identifiers = list(snapshot.values())
            assert len(identifiers) == len(set(identifiers))
            assert all(0 <= identifier < capacity for identifier in identifiers)
            assert len(snapshot) <= capacity

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=120),
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_after_insert_always_hits(self, keys):
        dictionary = BasisDictionary(64)
        for key in keys:
            identifier, _ = dictionary.insert(key)
            assert dictionary.lookup(key) == identifier
            assert dictionary.reverse_lookup(identifier) == key
