"""Tests for the GD transformation (chunk ⇄ prefix/basis/deviation)."""

import pytest

from repro.core.bits import BitVector
from repro.core.transform import GDParts, GDTransform
from repro.exceptions import ChunkSizeError, CodingError


class TestConfiguration:
    def test_paper_configuration(self, paper_transform):
        assert paper_transform.order == 8
        assert paper_transform.chunk_bits == 256
        assert paper_transform.chunk_bytes == 32
        assert paper_transform.prefix_bits == 1
        assert paper_transform.basis_bits == 247
        assert paper_transform.deviation_bits == 8

    def test_uncompressed_bits_equals_chunk_bits(self, paper_transform):
        # "Applying GD does not introduce additional bits" (Section 7).
        assert paper_transform.uncompressed_bits == paper_transform.chunk_bits

    def test_small_configuration(self, small_transform):
        assert small_transform.chunk_bits == 16
        assert small_transform.prefix_bits == 1
        assert small_transform.basis_bits == 11
        assert small_transform.deviation_bits == 4

    def test_custom_chunk_bits(self):
        transform = GDTransform(order=4, chunk_bits=24)
        assert transform.prefix_bits == 24 - 15

    def test_exact_code_length_chunk(self):
        transform = GDTransform(order=4, chunk_bits=15)
        assert transform.prefix_bits == 0

    def test_chunk_bits_below_code_length_rejected(self):
        with pytest.raises(CodingError):
            GDTransform(order=4, chunk_bits=14)

    def test_repr_mentions_parameters(self, paper_transform):
        assert "order=8" in repr(paper_transform)
        assert "k=247" in repr(paper_transform)


class TestSplitJoin:
    def test_roundtrip_bytes(self, paper_transform, rng):
        for _ in range(100):
            chunk = rng.getrandbits(256).to_bytes(32, "big")
            parts = paper_transform.split(chunk)
            assert paper_transform.join_to_bytes(parts) == chunk

    def test_roundtrip_int_and_bitvector(self, small_transform, rng):
        for _ in range(100):
            value = rng.getrandbits(16)
            parts_from_int = small_transform.split(value)
            parts_from_vec = small_transform.split(BitVector(value, 16))
            assert parts_from_int == parts_from_vec
            assert small_transform.join(parts_from_int) == value

    def test_exhaustive_small_transform_bijection(self, small_transform):
        seen = set()
        for value in range(1 << 16):
            parts = small_transform.split(value)
            key = (parts.prefix, parts.basis, parts.deviation)
            assert key not in seen
            seen.add(key)
            assert small_transform.join(parts) == value
        assert len(seen) == 1 << 16

    def test_prefix_is_msb(self, paper_transform):
        chunk_with_msb = (1 << 255).to_bytes(32, "big")
        parts = paper_transform.split(chunk_with_msb)
        assert parts.prefix == 1
        parts_zero = paper_transform.split(bytes(32))
        assert parts_zero.prefix == 0

    def test_dedup_key_is_basis_only(self, paper_transform, rng):
        basis = rng.getrandbits(247)
        codeword = paper_transform.code.encode(basis)
        with_msb = ((1 << 255) | codeword).to_bytes(32, "big")
        without_msb = codeword.to_bytes(32, "big")
        assert paper_transform.split(with_msb).dedup_key == basis
        assert paper_transform.split(without_msb).dedup_key == basis

    def test_join_fields(self, small_transform, rng):
        value = rng.getrandbits(16)
        parts = small_transform.split(value)
        assert (
            small_transform.join_fields(parts.prefix, parts.basis, parts.deviation)
            == value
        )

    def test_split_bytes_multi_chunk(self, paper_transform, rng):
        data = rng.getrandbits(256 * 5).to_bytes(32 * 5, "big")
        parts = paper_transform.split_bytes(data)
        assert len(parts) == 5
        restored = b"".join(paper_transform.join_to_bytes(p) for p in parts)
        assert restored == data

    def test_split_bytes_rejects_partial_chunks(self, paper_transform):
        with pytest.raises(ChunkSizeError):
            paper_transform.split_bytes(b"\x00" * 33)

    def test_iter_split(self, small_transform, rng):
        chunks = [rng.getrandbits(16) for _ in range(10)]
        parts = list(small_transform.iter_split(chunks))
        assert [small_transform.join(p) for p in parts] == chunks


class TestValidation:
    def test_wrong_byte_length_rejected(self, paper_transform):
        with pytest.raises(ChunkSizeError):
            paper_transform.split(b"\x00" * 31)

    def test_wrong_bitvector_width_rejected(self, paper_transform):
        with pytest.raises(ChunkSizeError):
            paper_transform.split(BitVector(0, 255))

    def test_oversized_int_rejected(self, small_transform):
        with pytest.raises(ChunkSizeError):
            small_transform.split(1 << 16)
        with pytest.raises(ChunkSizeError):
            small_transform.split(-1)

    def test_unsupported_type_rejected(self, small_transform):
        with pytest.raises(ChunkSizeError):
            small_transform.split(3.14)

    def test_join_checks_part_widths(self, small_transform, paper_transform):
        parts = paper_transform.split(bytes(32))
        with pytest.raises(CodingError):
            small_transform.join(parts)

    def test_parts_validate_field_ranges(self):
        with pytest.raises(CodingError):
            GDParts(prefix=2, basis=0, deviation=0, prefix_bits=1, basis_bits=4, deviation_bits=3)
        with pytest.raises(CodingError):
            GDParts(prefix=0, basis=16, deviation=0, prefix_bits=1, basis_bits=4, deviation_bits=3)
        with pytest.raises(CodingError):
            GDParts(prefix=0, basis=0, deviation=8, prefix_bits=1, basis_bits=4, deviation_bits=3)

    def test_parts_zero_prefix_bits(self):
        parts = GDParts(
            prefix=0, basis=3, deviation=1, prefix_bits=0, basis_bits=4, deviation_bits=3
        )
        assert parts.chunk_bits == 7

    def test_chunk_to_bytes(self, small_transform):
        assert small_transform.chunk_to_bytes(0x1234) == b"\x12\x34"
