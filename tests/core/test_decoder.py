"""Tests for the GD decoder."""

import pytest

from repro.core.decoder import GDDecoder
from repro.core.dictionary import BasisDictionary
from repro.core.encoder import GDEncoder
from repro.core.records import CompressedRecord, RawRecord, UncompressedRecord
from repro.core.transform import GDTransform
from repro.exceptions import CodingError, DictionaryError


@pytest.fixture()
def transform():
    return GDTransform(order=4)


def encoded_stream(transform, chunks):
    """Encode chunks with a fresh dynamic encoder, returning the records."""
    encoder = GDEncoder(transform, BasisDictionary(64), mode="dynamic")
    return encoder.encode_all(chunks)


class TestDecodeRecords:
    def test_uncompressed_roundtrip(self, transform, rng):
        decoder = GDDecoder(transform, BasisDictionary(64))
        for _ in range(50):
            chunk = rng.getrandbits(16).to_bytes(2, "big")
            parts = transform.split(chunk)
            record = UncompressedRecord(
                prefix=parts.prefix,
                basis=parts.basis,
                deviation=parts.deviation,
                prefix_bits=parts.prefix_bits,
                basis_bits=parts.basis_bits,
                deviation_bits=parts.deviation_bits,
            )
            assert decoder.decode_record_to_bytes(record) == chunk

    def test_raw_record_passthrough(self, transform):
        decoder = GDDecoder(transform)
        record = RawRecord(chunk=0x1234, chunk_bits=16)
        assert decoder.decode_record(record) == 0x1234
        assert decoder.stats.raw_records == 1

    def test_compressed_requires_dictionary(self, transform):
        decoder = GDDecoder(transform, dictionary=None)
        record = CompressedRecord(
            prefix=0, identifier=0, deviation=0,
            prefix_bits=1, identifier_bits=6, deviation_bits=4,
        )
        with pytest.raises(DictionaryError):
            decoder.decode_record(record)

    def test_unknown_identifier_raises_and_counts(self, transform):
        decoder = GDDecoder(transform, BasisDictionary(64))
        record = CompressedRecord(
            prefix=0, identifier=7, deviation=0,
            prefix_bits=1, identifier_bits=6, deviation_bits=4,
        )
        with pytest.raises(DictionaryError):
            decoder.decode_record(record)
        assert decoder.stats.unknown_identifiers == 1

    def test_unsupported_record_type(self, transform):
        decoder = GDDecoder(transform)
        with pytest.raises(CodingError):
            decoder.decode_record("not a record")

    def test_width_mismatch_rejected(self, transform):
        other = GDTransform(order=3)
        decoder = GDDecoder(transform, BasisDictionary(64))
        parts = other.split(0b0101010)
        record = UncompressedRecord(
            prefix=parts.prefix,
            basis=parts.basis,
            deviation=parts.deviation,
            prefix_bits=parts.prefix_bits,
            basis_bits=parts.basis_bits,
            deviation_bits=parts.deviation_bits,
        )
        with pytest.raises(CodingError):
            decoder.decode_record(record)


class TestEncoderDecoderPairing:
    def test_learning_decoder_tracks_dynamic_encoder(self, transform, rng):
        chunks = []
        code = transform.code
        bases = [rng.getrandbits(code.k) for _ in range(5)]
        for index in range(200):
            codeword = code.encode(bases[index % 5])
            body = codeword ^ (1 << rng.randrange(code.n)) if index % 3 else codeword
            chunks.append(body.to_bytes(2, "big"))
        records = encoded_stream(transform, chunks)
        decoder = GDDecoder(transform, BasisDictionary(64))
        restored = [
            value.to_bytes(transform.chunk_bytes, "big")
            for value in decoder.decode_all(records)
        ]
        assert restored == chunks
        assert decoder.stats.records == 200
        assert decoder.stats.compressed_records > 0

    def test_decode_to_bytes_concatenates(self, transform):
        chunks = [b"\x12\x34", b"\x12\x34", b"\x56\x78"]
        records = encoded_stream(transform, chunks)
        decoder = GDDecoder(transform, BasisDictionary(64))
        assert decoder.decode_to_bytes(records) == b"".join(chunks)

    def test_shared_dictionary_zero_latency_model(self, transform):
        # Encoder and decoder sharing one dictionary models the original
        # register-based design with instantaneous learning.
        shared = BasisDictionary(64)
        encoder = GDEncoder(transform, shared, mode="dynamic")
        decoder = GDDecoder(transform, shared, learn_from_uncompressed=False)
        chunks = [b"\xAA\x55"] * 4
        records = encoder.encode_all(chunks)
        assert decoder.decode_to_bytes(records) == b"".join(chunks)

    def test_eviction_stays_consistent_between_sides(self, transform, rng):
        # A tiny dictionary forces evictions; decoder recency tracking must
        # keep both sides aligned so decoding still succeeds.
        code = transform.code
        bases = [rng.getrandbits(code.k) for _ in range(8)]
        chunks = []
        for index in range(400):
            basis = bases[rng.randrange(len(bases))]
            codeword = code.encode(basis)
            chunks.append(codeword.to_bytes(2, "big"))
        encoder = GDEncoder(transform, BasisDictionary(4), mode="dynamic")
        decoder = GDDecoder(transform, BasisDictionary(4))
        records = encoder.encode_all(chunks)
        restored = [
            value.to_bytes(2, "big") for value in decoder.decode_all(records)
        ]
        assert restored == chunks
        assert encoder.dictionary.stats.evictions > 0

    def test_stats_reset(self, transform):
        decoder = GDDecoder(transform, BasisDictionary(8))
        records = encoded_stream(transform, [b"\x01\x02"])
        decoder.decode_all(records)
        decoder.reset_stats()
        assert decoder.stats.records == 0
