"""Batch APIs: split_batch / encode_batch / decode_batch match the unit paths.

The batch entry points exist purely for speed (amortized accounting and
hoisted lookups); these tests pin down that they are observationally
identical to the one-chunk-at-a-time paths — same records, same stats, same
dictionary evolution, including the dynamic-learning activation delay.
"""

import random

import pytest

from repro.core.codec import GDCodec
from repro.core.decoder import GDDecoder
from repro.core.dictionary import BasisDictionary
from repro.core.encoder import EncoderMode, GDEncoder
from repro.core.records import RawRecord
from repro.core.transform import GDTransform
from repro.exceptions import ChunkSizeError


def clustered_chunks(count: int, seed: int = 3, bases: int = 6) -> list:
    rng = random.Random(seed)
    population = [rng.getrandbits(247) for _ in range(bases)]
    chunks = []
    for _ in range(count):
        body = rng.choice(population) ^ (1 << rng.randrange(255))
        chunks.append(((rng.getrandbits(1) << 255) | body).to_bytes(32, "big"))
    return chunks


class TestSplitBatch:
    def test_matches_per_chunk_split(self):
        transform = GDTransform(order=8)
        chunks = clustered_chunks(50)
        expected = [transform.split(chunk) for chunk in chunks]
        assert transform.split_batch(b"".join(chunks)) == expected

    def test_split_bytes_delegates(self):
        transform = GDTransform(order=4)
        data = bytes(range(transform.chunk_bytes * 3))
        assert transform.split_bytes(data) == transform.split_batch(data)

    def test_rejects_ragged_buffer(self):
        transform = GDTransform(order=8)
        with pytest.raises(ChunkSizeError):
            transform.split_batch(b"\x00" * 33)

    def test_non_byte_aligned_chunk_bits_range_checked(self):
        transform = GDTransform(order=8, chunk_bits=257)
        oversized = (1 << 257).to_bytes(transform.chunk_bytes, "big")
        with pytest.raises(ChunkSizeError):
            transform.split_batch(oversized)


def _fresh_encoder(mode=EncoderMode.DYNAMIC, learning_delay_chunks=0):
    transform = GDTransform(order=8)
    dictionary = None
    if mode is not EncoderMode.NO_TABLE:
        dictionary = BasisDictionary(1 << 15)
    return GDEncoder(
        transform,
        dictionary,
        mode=mode,
        alignment_padding_bits=8,
        learning_delay_chunks=learning_delay_chunks,
    )


class TestEncodeBatch:
    @pytest.mark.parametrize("delay", [0, 7])
    def test_matches_encode_chunk_sequence(self, delay):
        chunks = clustered_chunks(300)
        unit = _fresh_encoder(learning_delay_chunks=delay)
        batch = _fresh_encoder(learning_delay_chunks=delay)
        expected = [unit.encode_chunk(chunk) for chunk in chunks]
        assert batch.encode_batch(chunks) == expected
        assert batch.stats.as_dict() == unit.stats.as_dict()
        assert batch.dictionary.snapshot() == unit.dictionary.snapshot()

    def test_encode_buffer_matches_chunk_list(self):
        chunks = clustered_chunks(120)
        unit = _fresh_encoder()
        batch = _fresh_encoder()
        expected = unit.encode_all(chunks)
        assert batch.encode_buffer(b"".join(chunks)) == expected

    def test_batches_compose_with_state(self):
        """Two consecutive batches equal one batch over the concatenation."""
        chunks = clustered_chunks(200)
        split_run = _fresh_encoder(learning_delay_chunks=3)
        whole_run = _fresh_encoder(learning_delay_chunks=3)
        first = split_run.encode_batch(chunks[:90])
        second = split_run.encode_batch(chunks[90:])
        assert first + second == whole_run.encode_batch(chunks)
        assert split_run.stats.as_dict() == whole_run.stats.as_dict()

    def test_no_table_mode(self):
        chunks = clustered_chunks(40)
        encoder = _fresh_encoder(mode=EncoderMode.NO_TABLE)
        records = encoder.encode_batch(chunks)
        assert len(records) == 40
        assert encoder.stats.compressed_records == 0


class TestDecodeBatch:
    def test_matches_decode_record_sequence(self):
        chunks = clustered_chunks(250)
        codec = GDCodec(order=8, identifier_bits=15)
        records = list(codec.compress(b"".join(chunks)).records)

        transform = GDTransform(order=8)
        unit = GDDecoder(transform, BasisDictionary(1 << 15))
        batch = GDDecoder(transform, BasisDictionary(1 << 15))
        expected = [unit.decode_record(record) for record in records]
        assert batch.decode_batch(records) == expected
        assert batch.stats.as_dict() == unit.stats.as_dict()

    def test_raw_records_pass_through(self):
        transform = GDTransform(order=8)
        decoder = GDDecoder(transform)
        records = [RawRecord(chunk=123, chunk_bits=256)]
        assert decoder.decode_batch(records) == [123]
        assert decoder.stats.raw_records == 1
        assert decoder.stats.output_bits == 256

    def test_decode_batch_to_bytes_roundtrip(self):
        chunks = clustered_chunks(100)
        data = b"".join(chunks)
        codec = GDCodec(order=8, identifier_bits=15)
        result = codec.compress(data)
        assert codec.decompress_records(result.records) == data


class TestEvictionSeedPlumbing:
    def test_seeded_random_eviction_reproducible_through_codec(self):
        """Same seed -> identical record streams under dictionary pressure."""
        chunks = clustered_chunks(2000, bases=64)
        data = b"".join(chunks)

        def run(seed):
            codec = GDCodec(
                order=8,
                identifier_bits=4,  # 16 slots for 64 bases: constant eviction
                eviction_policy="random",
                eviction_seed=seed,
            )
            return codec.compress(data).records

        assert run(1234) == run(1234)

    def test_seeded_codec_roundtrips_with_random_eviction(self):
        chunks = clustered_chunks(1500, bases=64)
        data = b"".join(chunks)
        codec = GDCodec(
            order=8,
            identifier_bits=4,
            eviction_policy="random",
            eviction_seed=99,
        )
        assert codec.roundtrip(data) == data

    def test_clone_preserves_seed(self):
        codec = GDCodec(eviction_policy="random", eviction_seed=5)
        assert codec.clone()._eviction_seed == 5

    def test_unseeded_random_eviction_still_lossless_in_process(self):
        """Without an explicit seed the codec samples one shared seed, so
        encoder and decoder dictionaries evict in lock-step and round trips
        stay exact even under dictionary pressure."""
        chunks = clustered_chunks(1500, bases=64)
        data = b"".join(chunks)
        codec = GDCodec(order=8, identifier_bits=4, eviction_policy="random")
        assert codec.roundtrip(data) == data
