"""Batch CRC equivalence: whole-buffer folds vs the bit-serial reference.

`CrcEngine.compute_batch` must be bit-identical to the bit-serial Rocksoft
reference for every record, for arbitrary polynomials, non-byte-aligned
record widths and batch sizes (including empty and single-record buffers),
on every available backend.  These are the property tests that pin that
contract, plus the slice-table registry-sharing guarantees the batch path
is built on.
"""

import random

import pytest

from repro.core import crc as crc_module
from repro.core.backends import (
    MIN_BATCH_CHUNKS,
    available_backend_names,
    backend_status,
    get_backend,
)
from repro.core.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_ETHERNET,
    CrcEngine,
    CrcParameters,
    crc_table,
    slice_table,
    slice_tables,
)
from repro.exceptions import CodingError
from repro.tofino.crc_extern import CrcExtern, CrcPolynomial

BACKENDS = available_backend_names()


def _random_parameters(rng):
    """A random CRC parameter set; Rocksoft knobs only where they are legal.

    Plain-remainder (non-augmented) CRCs forbid init/xor_out/reflection, so
    those knobs are only rolled for augmented parameter sets.
    """
    width = rng.randrange(1, 33)
    polynomial = rng.getrandbits(width) | 1
    augment = rng.random() < 0.5
    init = rng.getrandbits(width) if augment and rng.random() < 0.5 else 0
    xor_out = rng.getrandbits(width) if augment and rng.random() < 0.5 else 0
    reflect = bool(augment and rng.random() < 0.3)
    return CrcParameters(
        polynomial=polynomial,
        width=width,
        init=init,
        xor_out=xor_out,
        reflect_in=reflect,
        reflect_out=reflect,
        augment=augment,
    )


def _record_buffer(rng, record_bits, count):
    record_bytes = (record_bits + 7) // 8
    values = [rng.getrandbits(record_bits) for _ in range(count)]
    buffer = b"".join(value.to_bytes(record_bytes, "big") for value in values)
    return buffer, values


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchMatchesReference:
    def test_random_parameter_matrix(self, backend):
        rng = random.Random(0xC0DEC + len(backend))
        for _ in range(30):
            params = _random_parameters(rng)
            engine = CrcEngine(params)
            record_bits = rng.randrange(1, 101)
            if params.reflect_in and record_bits % 8:
                record_bits = max(8, record_bits - record_bits % 8)
            count = rng.choice([0, 1, 2, 17, 33])
            buffer, values = _record_buffer(rng, record_bits, count)
            got = engine.compute_batch(buffer, record_bits, backend=backend)
            expected = [
                engine.compute_bits_reference(value, record_bits)
                for value in values
            ]
            assert got == expected, (params, record_bits, count)

    def test_non_byte_aligned_widths(self, backend):
        rng = random.Random(7)
        for params in (CRC8_ATM, CRC16_CCITT, CRC32_ETHERNET):
            engine = CrcEngine(params)
            for record_bits in (1, 3, 7, 9, 15, 17, 23, 33, 63, 65):
                if params.reflect_in and record_bits % 8:
                    continue  # reflection is byte-oriented by definition
                buffer, values = _record_buffer(rng, record_bits, 21)
                got = engine.compute_batch(buffer, record_bits, backend=backend)
                assert got == [
                    engine.compute_bits(value, record_bits) for value in values
                ]

    def test_empty_and_single_record(self, backend):
        engine = CrcEngine(CRC16_CCITT)
        assert engine.compute_batch(b"", 12, backend=backend) == []
        assert engine.compute_batch(b"\x0f\xa5", 12, backend=backend) == [
            engine.compute_bits(0xFA5, 12)
        ]

    def test_overlong_record_named_in_error(self, backend):
        engine = CrcEngine(CRC8_ATM)
        buffer = (0x5).to_bytes(2, "big") + (0x1FFF).to_bytes(2, "big")
        with pytest.raises(CodingError, match="record 1 does not fit in 12 bits"):
            engine.compute_batch(buffer, 12, backend=backend)

    def test_ragged_buffer_rejected(self, backend):
        engine = CrcEngine(CRC8_ATM)
        with pytest.raises(CodingError, match="whole number of 2-byte records"):
            engine.compute_batch(b"\x00\x01\x02", 12, backend=backend)


class TestBatchValidation:
    def test_record_width_must_be_positive(self):
        engine = CrcEngine(CRC8_ATM)
        with pytest.raises(CodingError, match="record width must be positive"):
            engine.compute_batch(b"", 0)

    def test_reflect_in_requires_byte_alignment(self):
        params = CrcParameters(
            polynomial=CRC16_CCITT.polynomial,
            width=16,
            reflect_in=True,
            reflect_out=True,
            augment=True,
        )
        engine = CrcEngine(params)
        with pytest.raises(CodingError, match="byte-aligned"):
            engine.compute_batch(b"\x00\x00", 12)

    def test_small_batches_stay_on_the_pure_fold(self, monkeypatch):
        """Automatic selection needs MIN_BATCH_CHUNKS records; below that the
        pure fold runs even when an accelerated backend is available."""
        engine = CrcEngine(CRC8_ATM)
        for name in BACKENDS:
            backend = get_backend(name)
            if backend.accelerated:
                monkeypatch.setattr(
                    type(backend),
                    "crc_batch",
                    lambda *args, **kwargs: pytest.fail(
                        "accelerated batch used below the count gate"
                    ),
                )
        buffer, values = _record_buffer(random.Random(1), 8, MIN_BATCH_CHUNKS - 1)
        assert engine.compute_batch(buffer, 8) == [
            engine.compute_bits(value, 8) for value in values
        ]


class TestSliceTableRegistry:
    def test_distance_equal_width_aliases_the_byte_table(self):
        table = slice_table(CRC32_ETHERNET.polynomial, 32, 32)
        assert table is crc_table(CRC32_ETHERNET.polynomial, 32)

    def test_repeated_lookups_share_one_object(self):
        first = slice_table(CRC16_CCITT.polynomial, 16, 40)
        second = slice_table(CRC16_CCITT.polynomial, 16, 40)
        assert first is second

    def test_slice_tables_positions_alias_registry_entries(self):
        tables = slice_tables(CRC16_CCITT.polynomial, 16, 4)
        for position, table in enumerate(tables):
            distance = 8 * (len(tables) - 1 - position)
            assert table is slice_table(CRC16_CCITT.polynomial, 16, distance)
        # A second ask resolves the very same objects, not rebuilt copies.
        again = slice_tables(CRC16_CCITT.polynomial, 16, 4)
        assert all(a is b for a, b in zip(tables, again))

    def test_engine_and_extern_share_slice_tables(self):
        """The Tofino CRC extern and CrcEngine must resolve the *same* table
        objects from the registry — no duplicate table builds."""
        extern = CrcExtern(CrcPolynomial(coeff=0x1D, width=8))
        engine = extern._engine
        record_bytes = 4
        extern_tables = extern.slice_tables(record_bytes)
        _rb, engine_tables, _init, _head = engine._batch_state(8 * record_bytes)
        assert len(extern_tables) == len(engine_tables) == record_bytes
        for ours, theirs in zip(extern_tables, engine_tables):
            assert ours is theirs


class TestCrcExternBatch:
    def test_get_batch_matches_get_and_counts_invocations(self):
        extern = CrcExtern(CrcPolynomial(coeff=0x1D, width=8))
        rng = random.Random(5)
        record_bits = 24
        buffer, values = _record_buffer(rng, record_bits, 20)
        before = extern.invocations
        got = extern.get_batch(buffer, record_bits)
        assert extern.invocations == before + 20
        assert got == [extern.get([(value, record_bits)]) for value in values]

    def test_backend_status_reports_crc_batch(self):
        rows = backend_status()
        assert rows, "backend registry is empty"
        for row in rows:
            assert "crc_batch" in row
        by_name = {row["name"]: row for row in rows}
        assert by_name["pure"]["crc_batch"] is False
        if "numpy" in by_name and by_name["numpy"]["available"]:
            assert by_name["numpy"]["crc_batch"] is True
