"""Tests for the high-level GDCodec."""

import pytest

from repro.core.codec import GDCodec
from repro.core.records import RecordType
from repro.exceptions import ChunkSizeError, CodingError


def clustered_data(codec, bases, count, rng):
    """Data whose chunks share the given bases (codeword ± one bit)."""
    code = codec.transform.code
    chunks = []
    for index in range(count):
        codeword = code.encode(bases[index % len(bases)])
        position = rng.randrange(code.n + 1)
        body = codeword if position == code.n else codeword ^ (1 << position)
        chunks.append(body.to_bytes(codec.chunk_bytes, "big"))
    return b"".join(chunks)


class TestConstruction:
    def test_paper_defaults(self):
        codec = GDCodec()
        assert codec.transform.order == 8
        assert codec.chunk_bytes == 32
        assert codec.identifier_bits == 15

    def test_invalid_identifier_bits(self):
        with pytest.raises(CodingError):
            GDCodec(identifier_bits=0)

    def test_static_requires_bases(self):
        with pytest.raises(CodingError):
            GDCodec(mode="static")

    def test_clone_preserves_parameters(self):
        codec = GDCodec(order=4, identifier_bits=6, alignment_padding_bits=8)
        clone = codec.clone()
        assert clone.transform.order == 4
        assert clone.identifier_bits == 6
        assert clone.encoder.alignment_padding_bits == 8


class TestChunking:
    def test_chunk_data_exact_multiple(self):
        codec = GDCodec(order=4)
        chunks = codec.chunk_data(b"\x00" * 6)
        assert len(chunks) == 3

    def test_chunk_data_requires_padding_flag(self):
        codec = GDCodec(order=4)
        with pytest.raises(ChunkSizeError):
            codec.chunk_data(b"\x00" * 5)
        chunks = codec.chunk_data(b"\x00" * 5, pad=True)
        assert len(chunks) == 3
        assert len(chunks[-1]) == 2


class TestCompressionModes:
    def test_dynamic_roundtrip_and_ratio(self, rng):
        codec = GDCodec(order=8, alignment_padding_bits=8)
        bases = [rng.getrandbits(247) for _ in range(4)]
        data = clustered_data(codec, bases, 500, rng)
        result = codec.compress(data)
        assert codec.decompress_records(result.records, len(data)) == data
        assert result.compression_ratio < 0.12
        assert result.compressed_record_fraction > 0.95

    def test_static_matches_paper_ratio(self, rng):
        bases = [rng.getrandbits(247) for _ in range(4)]
        codec = GDCodec(
            order=8, mode="static", static_bases=bases, alignment_padding_bits=8
        )
        data = clustered_data(codec, bases, 200, rng)
        result = codec.compress(data)
        # Every chunk compresses: 3 bytes out of 32 (the paper's 0.09).
        assert result.compression_ratio == pytest.approx(3 / 32)

    def test_no_table_matches_paper_overhead(self, rng):
        codec = GDCodec(order=8, mode="no_table", alignment_padding_bits=8)
        bases = [rng.getrandbits(247) for _ in range(2)]
        data = clustered_data(codec, bases, 100, rng)
        result = codec.compress(data)
        # 33 bytes out of 32: the 1.03 padding-only overhead of Figure 3.
        assert result.compression_ratio == pytest.approx(33 / 32)
        assert result.compressed_record_fraction == 0.0

    def test_roundtrip_without_padding(self, rng):
        codec = GDCodec(order=4)
        data = bytes(rng.getrandbits(8) for _ in range(2 * 100))
        assert codec.roundtrip(data) == data

    def test_roundtrip_with_final_partial_chunk(self, rng):
        codec = GDCodec(order=4)
        data = bytes(rng.getrandbits(8) for _ in range(33))
        assert codec.roundtrip(data, pad=True) == data

    def test_learning_delay_parameter(self, rng):
        bases = [rng.getrandbits(247)]
        codec = GDCodec(order=8, learning_delay_chunks=5, alignment_padding_bits=8)
        data = clustered_data(codec, bases, 20, rng)
        result = codec.compress(data)
        uncompressed = sum(
            1 for record in result.records
            if record.record_type is RecordType.UNCOMPRESSED
        )
        assert uncompressed >= 6  # first miss + the delay window

    def test_compression_ratio_shortcut(self, rng):
        codec = GDCodec(order=4)
        data = bytes(4 * 10)
        assert codec.compression_ratio(data) == codec.clone().compress(data).compression_ratio


class TestContainers:
    def test_container_roundtrip_fresh_codec(self, rng):
        codec = GDCodec(order=8, alignment_padding_bits=8)
        bases = [rng.getrandbits(247) for _ in range(3)]
        data = clustered_data(codec, bases, 120, rng)
        blob = codec.compress_to_container(data)
        restored = GDCodec(order=8, alignment_padding_bits=8).decompress_container(blob)
        assert restored == data

    def test_container_is_self_contained_despite_prior_state(self, rng):
        codec = GDCodec(order=8, alignment_padding_bits=8)
        bases = [rng.getrandbits(247) for _ in range(3)]
        data = clustered_data(codec, bases, 60, rng)
        codec.compress(data)  # warm up the encoder dictionary
        blob = codec.compress_to_container(data)
        fresh = GDCodec(order=8, alignment_padding_bits=8)
        assert fresh.decompress_container(blob) == data

    def test_container_header_mismatch_detected(self, rng):
        codec_a = GDCodec(order=8)
        codec_b = GDCodec(order=4)
        blob = codec_a.compress_to_container(bytes(64))
        with pytest.raises(CodingError):
            codec_b.decompress_container(blob)

    def test_container_identifier_width_mismatch(self):
        blob = GDCodec(order=4, identifier_bits=6).compress_to_container(bytes(8))
        with pytest.raises(CodingError):
            GDCodec(order=4, identifier_bits=7).decompress_container(blob)

    def test_container_bad_magic(self):
        codec = GDCodec(order=4)
        with pytest.raises(CodingError):
            codec.decompress_container(b"NOPE" + bytes(32))
        with pytest.raises(CodingError):
            codec.decompress_container(b"\x00" * 4)

    def test_container_truncation_detected(self, rng):
        codec = GDCodec(order=4)
        blob = codec.compress_to_container(bytes(16))
        with pytest.raises(CodingError):
            codec.decompress_container(blob[:-1])

    def test_from_container_header(self):
        blob = GDCodec(order=4, identifier_bits=6).compress_to_container(bytes(8))
        rebuilt = GDCodec.from_container_header(blob)
        assert rebuilt.transform.order == 4
        assert rebuilt.identifier_bits == 6

    def test_container_sizes_reported(self, rng):
        codec = GDCodec(order=8, alignment_padding_bits=8)
        bases = [rng.getrandbits(247)]
        data = clustered_data(codec, bases, 50, rng)
        result = codec.compress(data)
        blob = codec.to_container(result)
        assert result.container_bytes == len(blob)
        assert result.container_ratio > result.compression_ratio
