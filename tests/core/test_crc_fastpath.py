"""Table-driven CRC fast path: equivalence with the bitwise references.

The acceptance bar for the fast path is bit-identical results everywhere the
slow paths are defined: random polynomials, message widths 1-512 including
non-byte-aligned ones (255/511-bit chunks), and the full Rocksoft variant
space (init / reflect-in / reflect-out / xor-out, augmented and plain).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_ETHERNET,
    CrcEngine,
    CrcParameters,
    crc_table,
    poly_mod,
    poly_mod_table,
    syndrome_crc,
)
from repro.core.hamming import HammingCode
from repro.exceptions import CodingError
from repro.tofino.crc_extern import CrcExtern, CrcPolynomial


@st.composite
def polynomial_and_message(draw):
    """A random (width, polynomial, message_bits, message) quadruple.

    Polynomial widths 1-64, message widths 0-512 with no alignment
    restriction, and an odd constant term so the polynomial is a valid
    CRC generator.
    """
    width = draw(st.integers(min_value=1, max_value=64))
    polynomial = draw(st.integers(min_value=1, max_value=(1 << width) - 1)) | 1
    message_bits = draw(st.integers(min_value=0, max_value=512))
    message = draw(
        st.integers(min_value=0, max_value=(1 << message_bits) - 1 if message_bits else 0)
    )
    return width, polynomial, message_bits, message


class TestPlainRemainderEquivalence:
    @given(case=polynomial_and_message())
    @settings(max_examples=300, deadline=None)
    def test_table_matches_bitwise_division(self, case):
        width, polynomial, _message_bits, message = case
        full = (1 << width) | polynomial
        assert poly_mod_table(message, polynomial, width) == poly_mod(message, full)

    @given(case=polynomial_and_message())
    @settings(max_examples=150, deadline=None)
    def test_engine_dispatch_matches_reference(self, case):
        width, polynomial, message_bits, message = case
        engine = syndrome_crc(polynomial, width)
        expected = engine.compute_bits_reference(message, message_bits)
        assert engine.compute_bits(message, message_bits) == expected
        assert engine.compute_bits_table(message, message_bits) == expected

    def test_non_byte_aligned_chunk_widths(self):
        """The paper's chunk sizes: 255 bits (order 8) and 511 bits (order 9)."""
        rng = random.Random(2020)
        for width, polynomial, chunk_bits in ((8, 0x1D, 255), (9, 0x11, 511)):
            engine = syndrome_crc(polynomial, width)
            full = (1 << width) | polynomial
            for _ in range(200):
                value = rng.getrandbits(chunk_bits)
                assert engine.compute_bits(value, chunk_bits) == poly_mod(value, full)

    def test_every_width_1_through_512(self):
        """Sweep every message width once (catches tail-handling bugs)."""
        rng = random.Random(7)
        engine = syndrome_crc(0x1D, 8)
        for width in range(1, 513):
            value = rng.getrandbits(width)
            assert engine.compute_bits_table(value, width) == poly_mod(value, 0x11D)


class TestRocksoftVariantEquivalence:
    @given(
        width_index=st.integers(min_value=0, max_value=2),
        init_seed=st.integers(min_value=0),
        xor_seed=st.integers(min_value=0),
        reflect_in=st.booleans(),
        reflect_out=st.booleans(),
        message_bytes=st.binary(min_size=0, max_size=64),
    )
    @settings(max_examples=150, deadline=None)
    def test_random_variants_match_bit_serial(
        self, width_index, init_seed, xor_seed, reflect_in, reflect_out, message_bytes
    ):
        width, polynomial = ((8, 0x07), (16, 0x1021), (32, 0x04C11DB7))[width_index]
        parameters = CrcParameters(
            polynomial=polynomial,
            width=width,
            init=init_seed % (1 << width),
            reflect_in=reflect_in,
            reflect_out=reflect_out,
            xor_out=xor_seed % (1 << width),
            augment=True,
        )
        engine = CrcEngine(parameters)
        value = int.from_bytes(message_bytes, "big")
        bits = len(message_bytes) * 8
        expected = engine.compute_bits_reference(value, bits)
        assert engine.compute_bits_table(value, bits) == expected
        assert engine.compute_bits(value, bits) == expected
        assert engine.compute_bytes(message_bytes) == expected

    @pytest.mark.parametrize(
        "parameters,check",
        [
            (CRC32_ETHERNET, 0xCBF43926),
            (CRC16_CCITT, 0x29B1),
            (CRC8_ATM, 0xF4),
        ],
    )
    def test_known_check_values(self, parameters, check):
        """The canonical '123456789' check values survive the fast path."""
        engine = CrcEngine(parameters)
        assert engine.compute_bytes(b"123456789") == check

    def test_reflect_in_still_requires_byte_alignment(self):
        engine = CrcEngine(CRC32_ETHERNET)
        with pytest.raises(CodingError):
            engine.compute_bits_table(0, 7)
        with pytest.raises(CodingError):
            engine.compute_bits(0, 31)


class TestTableRegistrySharing:
    def test_tables_are_cached_per_polynomial(self):
        assert crc_table(0x1D, 8) is crc_table(0x1D, 8)
        assert crc_table(0x1D, 8) is not crc_table(0x11, 9)

    def test_hamming_and_extern_share_one_table(self):
        """core and tofino layers reduce through the same table object."""
        code = HammingCode(8)
        extern = CrcExtern(CrcPolynomial(coeff=code.crc_parameter, width=code.m))
        assert code.crc_engine.lookup_table is extern.lookup_table

    def test_table_entries_are_remainders(self):
        table = crc_table(0x1D, 8)
        assert len(table) == 256
        for index in (0, 1, 2, 128, 255):
            assert table[index] == poly_mod(index << 8, 0x11D)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(CodingError):
            crc_table(0x1D, 0)
        with pytest.raises(CodingError):
            crc_table(0x100, 8)
        with pytest.raises(CodingError):
            crc_table(0, 8)

    def test_value_must_be_non_negative(self):
        with pytest.raises(CodingError):
            poly_mod_table(-1, 0x1D, 8)
