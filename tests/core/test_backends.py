"""Property tests: every codec backend is bit-identical to the reference.

The backend matrix sweeps Hamming orders 3..8 × prefix widths ×
``REPRO_GD_FAST`` ∈ {0, 1} × every available backend and requires exact
equality of splits, columns, joins, batch decodes, container bytes and
dictionary state under eviction pressure.  The selection tests pin the
documented precedence (argument > ``REPRO_GD_BACKEND`` > best available)
and the error behaviour when a named backend is not importable — the
numpy-less case is simulated by monkeypatching the lazy probe, so the
test runs in every environment.
"""

import random

import pytest

from repro import registry
from repro.core import backends
from repro.core.backends import (
    MIN_BATCH_CHUNKS,
    BatchSplit,
    CodecBackend,
    numpy_backend,
)
from repro.core.codec import GDCodec
from repro.core.decoder import GDDecoder
from repro.core.dictionary import BasisDictionary, EvictionPolicy
from repro.core.records import RawRecord
from repro.core.transform import GDTransform
from repro.exceptions import BackendError, ChunkSizeError
from repro.workloads import SyntheticSensorWorkload

ORDERS = range(3, 9)
PREFIX_EXTRAS = (0, 1, 3, 7, 8, 13)

AVAILABLE = backends.available_backend_names()
ACCELERATED = [
    name
    for name in AVAILABLE
    if backends.get_backend(name).accelerated
]


def _random_buffer(transform, count, rng, clustered=False):
    """``count`` random chunks as one contiguous buffer."""
    code = transform.code
    chunks = []
    for _ in range(count):
        if clustered and rng.random() < 0.7:
            basis = rng.randrange(8)
            body = code.encode(basis)
            if rng.random() < 0.8:
                body ^= 1 << rng.randrange(code.n)
            value = (rng.getrandbits(transform.prefix_bits) << code.n) | body
        else:
            value = rng.getrandbits(transform.chunk_bits)
        chunks.append(value.to_bytes(transform.chunk_bytes, "big"))
    return b"".join(chunks)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"pure", "numpy", "native"} <= set(backends.backend_names())
        assert "pure" in AVAILABLE
        assert "native" not in AVAILABLE  # stub slot, never available

    def test_pure_is_always_available(self):
        assert backends.get_backend("pure").available()

    def test_unknown_backend_errors_with_known_names(self):
        with pytest.raises(BackendError, match="unknown codec backend"):
            backends.get_backend("simd")
        with pytest.raises(BackendError, match="pure"):
            backends.resolve_backend("simd")

    def test_native_stub_is_unavailable_with_actionable_detail(self):
        native = backends.get_backend("native")
        assert not native.available()
        assert "docs/backends.md" in native.availability_detail()
        with pytest.raises(BackendError, match="not available"):
            backends.resolve_backend("native")
        with pytest.raises(BackendError):
            native.split_batch_fields(GDTransform(order=3, backend="pure"), b"")

    def test_duplicate_registration_requires_replace(self, monkeypatch):
        monkeypatch.setattr(backends, "_BACKENDS", dict(backends._BACKENDS))

        class Dummy(CodecBackend):
            name = "pure"

        with pytest.raises(BackendError, match="already registered"):
            backends.register_backend(Dummy())
        backends.register_backend(Dummy(), replace=True)
        assert isinstance(backends.get_backend("pure"), Dummy)

    def test_backend_status_rows(self):
        rows = {row["name"]: row for row in backends.backend_status()}
        assert rows["pure"]["available"] is True
        assert rows["native"]["available"] is False
        assert sum(1 for row in rows.values() if row["default"]) == 1

    def test_registry_module_reexports_backend_registry(self):
        assert registry.backend_names() == backends.backend_names()
        assert registry.available_backend_names() == AVAILABLE
        assert registry.get_backend("pure") is backends.get_backend("pure")
        assert registry.default_backend().name == backends.default_backend().name


class TestSelection:
    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_GD_BACKEND", "native")
        assert GDTransform(order=8, backend="pure").backend == "pure"

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_GD_BACKEND", "pure")
        assert GDTransform(order=8).backend == "pure"

    def test_auto_is_best_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_GD_BACKEND", raising=False)
        expected = max(
            (backends.get_backend(name) for name in AVAILABLE),
            key=lambda backend: backend.priority,
        ).name
        assert GDTransform(order=8).backend == expected
        assert GDTransform(order=8, backend="auto").backend == expected

    def test_environment_naming_unavailable_backend_errors(self, monkeypatch):
        monkeypatch.setenv("REPRO_GD_BACKEND", "native")
        with pytest.raises(BackendError, match="REPRO_GD_BACKEND"):
            GDTransform(order=8)

    def test_numpy_selection_errors_clearly_without_numpy(self, monkeypatch):
        """``REPRO_GD_BACKEND=numpy`` on a numpy-less interpreter must fail
        with a message naming the backend and the missing dependency."""
        monkeypatch.setattr(
            numpy_backend,
            "_PROBE",
            (None, "numpy is not installed (No module named 'numpy'); "
                   "install the 'fast' extra to enable this backend"),
        )
        monkeypatch.setenv("REPRO_GD_BACKEND", "numpy")
        with pytest.raises(BackendError) as excinfo:
            GDTransform(order=8)
        message = str(excinfo.value)
        assert "numpy" in message
        assert "not available" in message
        assert "fast" in message

    def test_auto_falls_back_to_pure_without_numpy(self, monkeypatch):
        monkeypatch.setattr(numpy_backend, "_PROBE", (None, "numpy is not installed"))
        monkeypatch.delenv("REPRO_GD_BACKEND", raising=False)
        transform = GDTransform(order=8)
        assert transform.backend == "pure"
        data = _random_buffer(transform, 40, random.Random(1))
        reference = GDTransform(order=8, fast=False, backend="pure")
        assert transform.split_batch_fields(data) == reference.split_batch_fields(data)

    def test_codec_and_compressor_registry_accept_backend(self):
        for name in AVAILABLE:
            codec = GDCodec(identifier_bits=6, backend=name)
            assert codec.transform.backend == name
            assert codec.clone().transform.backend == name
            compressor = registry.get("gd", backend=name)
            assert compressor.codec().transform.backend == name


class TestBatchSplitApi:
    def test_columns_expose_fields_and_columns(self):
        transform = GDTransform(order=8, backend="pure")
        data = _random_buffer(transform, 40, random.Random(2))
        split = transform.split_batch_columns(data)
        fields = transform.split_batch_fields(data)
        assert split.fields() == fields
        assert len(split) == 40
        assert split.prefixes() == [prefix for prefix, _, _ in fields]
        assert split.bases() == [basis for _, basis, _ in fields]
        assert split.deviations() == [deviation for _, _, deviation in fields]
        assert split == BatchSplit.from_fields(fields, backend="elsewhere")
        assert "BatchSplit" in repr(split)


@pytest.mark.parametrize("fast_env", ["0", "1"])
@pytest.mark.parametrize("order", ORDERS)
class TestEquivalenceMatrix:
    """orders × prefix widths × REPRO_GD_FAST × available backends."""

    def test_splits_columns_and_joins_match_reference(
        self, order, fast_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GD_FAST", fast_env)
        rng = random.Random(order * 13 + int(fast_env))
        n = (1 << order) - 1
        for extra_bits in PREFIX_EXTRAS:
            chunk_bits = n + extra_bits
            reference = GDTransform(
                order=order, chunk_bits=chunk_bits, fast=False, backend="pure"
            )
            transforms = {
                name: GDTransform(order=order, chunk_bits=chunk_bits, backend=name)
                for name in AVAILABLE
            }
            data = _random_buffer(transforms["pure"], 72, rng)
            expected = reference.split_batch_fields(data)
            for name, transform in transforms.items():
                assert transform.split_batch_fields(data) == expected, (
                    name,
                    order,
                    extra_bits,
                )
                columns = transform.split_batch_columns(data)
                assert columns.fields() == expected
            if chunk_bits % 8 == 0:
                prefixes = [prefix for prefix, _, _ in expected]
                bases = [basis for _, basis, _ in expected]
                deviations = [deviation for _, _, deviation in expected]
                for name, transform in transforms.items():
                    backend = transform.backend_impl
                    if not (backend.accelerated and backend.supports_join(transform)):
                        continue
                    assert (
                        backend.join_batch_to_bytes(
                            transform, prefixes, bases, deviations
                        )
                        == data
                    ), (name, order, extra_bits)

    def test_batch_decode_matches_reference(self, order, fast_env, monkeypatch):
        monkeypatch.setenv("REPRO_GD_FAST", fast_env)
        rng = random.Random(order * 17 + int(fast_env))
        for name in AVAILABLE:
            codec = GDCodec(order=order, identifier_bits=5, backend=name)
            data = _random_buffer(codec.transform, 90, rng, clustered=True)
            records = list(codec.compress(data).records)
            # interleave raw records to exercise the mixed decode path
            raw = RawRecord(chunk=0, chunk_bits=codec.transform.chunk_bits)
            mixed = records[:3] + [raw] + records[3:] + [raw]

            backend_decoder = GDDecoder(
                GDTransform(order=order, backend=name), BasisDictionary(1 << 5)
            )
            reference_decoder = GDDecoder(
                GDTransform(order=order, fast=False, backend="pure"),
                BasisDictionary(1 << 5),
            )
            chunks = backend_decoder.decode_batch(mixed)
            assert chunks == reference_decoder.decode_batch(mixed)
            assert (
                backend_decoder.stats.as_dict() == reference_decoder.stats.as_dict()
            )

            bytes_decoder = GDDecoder(
                GDTransform(order=order, backend=name), BasisDictionary(1 << 5)
            )
            reference_bytes_decoder = GDDecoder(
                GDTransform(order=order, fast=False, backend="pure"),
                BasisDictionary(1 << 5),
            )
            assert bytes_decoder.decode_batch_to_bytes(
                mixed
            ) == reference_bytes_decoder.decode_batch_to_bytes(mixed)
            assert (
                bytes_decoder.stats.as_dict()
                == reference_bytes_decoder.stats.as_dict()
            )

    def test_bulk_parities_match_reference(self, order, fast_env, monkeypatch):
        monkeypatch.setenv("REPRO_GD_FAST", fast_env)
        rng = random.Random(order * 19)
        code = GDTransform(order=order, backend="pure").code
        bases = [rng.getrandbits(code.k) for _ in range(60)] + [0, (1 << code.k) - 1]
        expected = [code.parity_of_basis(basis) for basis in bases]
        assert list(code.parities_of_bases(bases)) == expected
        for name in ACCELERATED:
            backend = backends.get_backend(name)
            assert (
                list(code.parities_of_bases(bases, backend=backend)) == expected
            ), name
            if backend.supports_parity(code):
                assert list(backend.parities_of_bases(code, bases)) == expected


class TestContainerEquivalence:
    @pytest.mark.parametrize("backend_name", AVAILABLE)
    def test_container_roundtrip_bit_identical(self, backend_name):
        data = b"".join(
            SyntheticSensorWorkload(
                num_chunks=400, distinct_bases=25, seed=6
            ).chunks()
        )
        pure_codec = GDCodec(order=8, identifier_bits=6, backend="pure")
        codec = GDCodec(order=8, identifier_bits=6, backend=backend_name)
        container = codec.compress_to_container(data)
        assert container == pure_codec.compress_to_container(data)
        assert codec.clone().decompress_container(container) == data

    @pytest.mark.parametrize("backend_name", AVAILABLE)
    def test_eviction_pressure_dictionary_state_identical(self, backend_name):
        """Tiny dictionary + seeded random eviction: every backend walks the
        same insert/evict sequence and ends in the same dictionary state."""
        data = b"".join(
            SyntheticSensorWorkload(
                num_chunks=600, distinct_bases=40, seed=9
            ).chunks()
        )
        snapshots = {}
        containers = {}
        for name in ("pure", backend_name):
            codec = GDCodec(
                order=8,
                identifier_bits=4,
                eviction_policy=EvictionPolicy.RANDOM,
                eviction_seed=4321,
                backend=name,
            )
            assert codec.roundtrip(data) == data
            containers[name] = codec.compress_to_container(data)
            codec.compress(data)
            snapshots[name] = codec.encoder.dictionary.snapshot()
        assert containers[backend_name] == containers["pure"]
        assert snapshots[backend_name] == snapshots["pure"]

    @pytest.mark.parametrize("backend_name", AVAILABLE)
    def test_env_forced_backend_full_roundtrip(self, backend_name, monkeypatch):
        monkeypatch.setenv("REPRO_GD_BACKEND", backend_name)
        codec = GDCodec(order=8, identifier_bits=6)
        assert codec.transform.backend == backend_name
        data = b"".join(
            SyntheticSensorWorkload(num_chunks=200, distinct_bases=12, seed=2).chunks()
        )
        assert codec.roundtrip(data) == data


class TestDispatchBoundaries:
    @pytest.mark.parametrize("backend_name", ACCELERATED)
    def test_small_batches_stay_correct(self, backend_name):
        transform = GDTransform(order=8, backend=backend_name)
        reference = GDTransform(order=8, fast=False, backend="pure")
        rng = random.Random(3)
        for count in (0, 1, MIN_BATCH_CHUNKS - 1, MIN_BATCH_CHUNKS):
            data = _random_buffer(transform, count, rng)
            assert transform.split_batch_fields(data) == reference.split_batch_fields(
                data
            )

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    def test_invalid_chunk_value_raises_same_error(self, backend_name):
        transform = GDTransform(order=8, chunk_bits=255, backend=backend_name)
        pure = GDTransform(order=8, chunk_bits=255, backend="pure")
        bad = b"\xff" * (32 * (MIN_BATCH_CHUNKS + 4))
        with pytest.raises(ChunkSizeError) as backend_error:
            transform.split_batch_fields(bad)
        with pytest.raises(ChunkSizeError) as pure_error:
            pure.split_batch_fields(bad)
        assert str(backend_error.value) == str(pure_error.value)

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    def test_misaligned_length_raises_same_error(self, backend_name):
        transform = GDTransform(order=8, backend=backend_name)
        pure = GDTransform(order=8, backend="pure")
        bad = b"\x00" * (32 * MIN_BATCH_CHUNKS + 1)
        with pytest.raises(ChunkSizeError) as backend_error:
            transform.split_batch_fields(bad)
        with pytest.raises(ChunkSizeError) as pure_error:
            pure.split_batch_fields(bad)
        assert str(backend_error.value) == str(pure_error.value)

    @pytest.mark.parametrize("backend_name", ACCELERATED)
    def test_memoryview_and_bytearray_inputs(self, backend_name):
        transform = GDTransform(order=8, backend=backend_name)
        data = _random_buffer(transform, 48, random.Random(5))
        expected = transform.split_batch_fields(data)
        assert transform.split_batch_fields(bytearray(data)) == expected
        padded = b"\xff" * 32 + data + b"\xff" * 7
        view = memoryview(padded)[32 : 32 + len(data)]
        assert transform.split_batch_fields(view) == expected

    def test_unsupported_order_falls_back_to_pure_loop(self):
        """Orders above 8 are outside every accelerated backend's envelope;
        the dispatch must quietly run the pure loop."""
        for name in AVAILABLE:
            transform = GDTransform(order=9, backend=name)
            reference = GDTransform(order=9, fast=False, backend="pure")
            data = _random_buffer(transform, MIN_BATCH_CHUNKS + 8, random.Random(7))
            assert transform.split_batch_fields(data) == reference.split_batch_fields(
                data
            )
