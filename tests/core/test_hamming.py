"""Tests for the Hamming code implementation."""

import random

import pytest

from repro.core.bits import BitVector
from repro.core.hamming import HammingCode, hamming_parameters_for_order
from repro.exceptions import CodingError


class TestParameters:
    def test_parameters_for_order(self):
        assert hamming_parameters_for_order(3) == (7, 4)
        assert hamming_parameters_for_order(4) == (15, 11)
        assert hamming_parameters_for_order(8) == (255, 247)
        assert hamming_parameters_for_order(15) == (32767, 32752)

    def test_rejects_tiny_order(self):
        with pytest.raises(CodingError):
            hamming_parameters_for_order(1)

    def test_default_polynomial_comes_from_table_1(self, hamming_7_4):
        assert hamming_7_4.full_polynomial == 0b1011
        assert hamming_7_4.crc_parameter == 0x3

    def test_explicit_polynomial_must_match_order(self):
        with pytest.raises(CodingError):
            HammingCode(3, polynomial=0b10011)  # degree 4 polynomial for m=3
        with pytest.raises(CodingError):
            HammingCode(3, polynomial=0b1010)  # zero constant term

    def test_non_primitive_polynomial_rejected_during_table_build(self):
        # (x + 1)^3 has order < 7, so two positions collide.
        with pytest.raises(CodingError):
            HammingCode(3, polynomial=0b1111)


class TestTable2Syndromes:
    """Table 2a of the paper: Hamming (7, 4) syndromes of single-bit errors."""

    EXPECTED = {0: 0b001, 1: 0b010, 2: 0b100, 3: 0b011, 4: 0b110, 5: 0b111, 6: 0b101}

    def test_single_bit_error_syndromes(self, hamming_7_4):
        for position, expected in self.EXPECTED.items():
            assert hamming_7_4.syndrome_of_error_position(position) == expected

    def test_syndrome_lookup_table_inverts_the_mapping(self, hamming_7_4):
        for position, syndrome in self.EXPECTED.items():
            assert hamming_7_4.error_position(syndrome) == position
            assert hamming_7_4.error_mask(syndrome) == 1 << position

    def test_zero_syndrome_has_no_error(self, hamming_7_4):
        assert hamming_7_4.error_position(0) is None
        assert hamming_7_4.error_mask(0) == 0

    def test_syndrome_equals_crc(self, hamming_7_4):
        for value in range(1 << 7):
            assert hamming_7_4.syndrome(value) == hamming_7_4.crc_engine.compute_bits(value, 7)

    def test_syndrome_equals_matrix_product(self, hamming_7_4):
        for value in (0, 1, 0b1010101, 0b1111111, 0b0110011):
            assert hamming_7_4.syndrome(value) == hamming_7_4.syndrome_via_matrix(value)


class TestCodewordAlgebra:
    def test_encode_produces_codewords(self, hamming_7_4):
        for message in range(1 << 4):
            codeword = hamming_7_4.encode(message)
            assert hamming_7_4.is_codeword(codeword)
            assert hamming_7_4.extract_message(codeword) == message

    def test_codewords_are_distinct(self, hamming_15_11):
        codewords = {hamming_15_11.encode(m) for m in range(1 << 11)}
        assert len(codewords) == 1 << 11

    def test_minimum_distance_is_three(self, hamming_7_4):
        codewords = [hamming_7_4.encode(m) for m in range(1 << 4)]
        minimum = min(
            bin(a ^ b).count("1")
            for i, a in enumerate(codewords)
            for b in codewords[i + 1 :]
        )
        assert minimum == 3

    def test_correct_single_bit_errors(self, hamming_7_4):
        for message in range(1 << 4):
            codeword = hamming_7_4.encode(message)
            for position in range(7):
                corrupted = codeword ^ (1 << position)
                corrected, flipped = hamming_7_4.correct(corrupted)
                assert corrected == codeword
                assert flipped == position

    def test_correct_clean_codeword(self, hamming_7_4):
        codeword = hamming_7_4.encode(0b1001)
        corrected, flipped = hamming_7_4.correct(codeword)
        assert corrected == codeword
        assert flipped is None

    def test_generator_and_parity_check_orthogonal(self, hamming_7_4):
        generator = hamming_7_4.generator_matrix()
        parity = hamming_7_4.parity_check_matrix()
        n, k, m = hamming_7_4.n, hamming_7_4.k, hamming_7_4.m
        assert len(generator) == k and all(len(row) == n for row in generator)
        assert len(parity) == m and all(len(row) == n for row in parity)
        for g_row in generator:
            for h_row in parity:
                dot = 0
                for g_bit, h_bit in zip(g_row, h_row):
                    dot ^= g_bit & h_bit
                assert dot == 0

    def test_parity_check_columns_are_distinct_nonzero(self, hamming_7_4):
        parity = hamming_7_4.parity_check_matrix()
        columns = [
            tuple(parity[row][col] for row in range(hamming_7_4.m))
            for col in range(hamming_7_4.n)
        ]
        assert len(set(columns)) == hamming_7_4.n
        assert all(any(column) for column in columns)


class TestGDSplit:
    def test_roundtrip_exhaustive_small_code(self, hamming_7_4):
        for chunk in range(1 << 7):
            basis, syndrome = hamming_7_4.chunk_to_basis(chunk)
            assert 0 <= basis < (1 << 4)
            assert 0 <= syndrome < (1 << 3)
            assert hamming_7_4.basis_to_chunk(basis, syndrome) == chunk

    def test_split_is_a_bijection(self, hamming_7_4):
        pairs = {hamming_7_4.chunk_to_basis(chunk) for chunk in range(1 << 7)}
        assert len(pairs) == 1 << 7

    def test_roundtrip_random_paper_code(self, paper_code, rng):
        for _ in range(200):
            chunk = rng.getrandbits(paper_code.n)
            basis, syndrome = paper_code.chunk_to_basis(chunk)
            assert paper_code.basis_to_chunk(basis, syndrome) == chunk

    def test_codeword_maps_to_zero_syndrome(self, paper_code, rng):
        basis = rng.getrandbits(paper_code.k)
        codeword = paper_code.encode(basis)
        got_basis, syndrome = paper_code.chunk_to_basis(codeword)
        assert syndrome == 0
        assert got_basis == basis

    def test_single_bit_neighbours_share_the_basis(self, paper_code, rng):
        basis = rng.getrandbits(paper_code.k)
        codeword = paper_code.encode(basis)
        for _ in range(50):
            position = rng.randrange(paper_code.n)
            neighbour = codeword ^ (1 << position)
            got_basis, syndrome = paper_code.chunk_to_basis(neighbour)
            assert got_basis == basis
            assert paper_code.error_position(syndrome) == position

    def test_bases_sharing_chunk_count(self, hamming_7_4):
        assert hamming_7_4.bases_sharing_chunk(0) == 8

    def test_parity_of_basis_matches_encode(self, hamming_15_11, rng):
        for _ in range(100):
            basis = rng.getrandbits(hamming_15_11.k)
            assert hamming_15_11.encode(basis) == (
                (basis << hamming_15_11.m) | hamming_15_11.parity_of_basis(basis)
            )

    def test_bitvector_interface(self, hamming_7_4):
        chunk = BitVector(0b1010110, 7)
        basis, syndrome = hamming_7_4.chunk_vector_to_basis(chunk)
        assert basis.width == 4
        assert syndrome.width == 3
        assert hamming_7_4.basis_vector_to_chunk(basis, syndrome) == chunk

    def test_bitvector_interface_rejects_wrong_widths(self, hamming_7_4):
        with pytest.raises(CodingError):
            hamming_7_4.chunk_vector_to_basis(BitVector(0, 8))
        with pytest.raises(CodingError):
            hamming_7_4.basis_vector_to_chunk(BitVector(0, 5), BitVector(0, 3))

    def test_bounds_checking(self, hamming_7_4):
        with pytest.raises(CodingError):
            hamming_7_4.syndrome(1 << 7)
        with pytest.raises(CodingError):
            hamming_7_4.parity_of_basis(1 << 4)
        with pytest.raises(CodingError):
            hamming_7_4.basis_to_chunk(0, 1 << 3)
        with pytest.raises(CodingError):
            hamming_7_4.syndrome_of_error_position(7)
        with pytest.raises(CodingError):
            hamming_7_4.chunk_to_basis(-1)


class TestAllTable1Orders:
    @pytest.mark.parametrize("order", [3, 4, 5, 6, 7, 8, 9, 10])
    def test_roundtrip_for_every_order(self, order):
        code = HammingCode(order)
        generator = random.Random(order)
        for _ in range(25):
            chunk = generator.getrandbits(code.n)
            basis, syndrome = code.chunk_to_basis(chunk)
            assert code.basis_to_chunk(basis, syndrome) == chunk
