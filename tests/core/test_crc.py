"""Tests for the CRC engine and GF(2) polynomial arithmetic."""

import pytest

from repro.core.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_ETHERNET,
    CrcEngine,
    CrcParameters,
    is_primitive_polynomial,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_mulmod,
    polynomial_degree,
    polynomial_str,
    reflect_bits,
    syndrome_crc,
)
from repro.exceptions import CodingError


class TestPolynomialArithmetic:
    def test_poly_mod_known_values(self):
        # x^3 mod (x^3 + x + 1) = x + 1
        assert poly_mod(0b1000, 0b1011) == 0b011
        # x^6 mod (x^3 + x + 1) = x^2 + 1
        assert poly_mod(0b1000000, 0b1011) == 0b101
        assert poly_mod(0, 0b1011) == 0

    def test_poly_mod_degree_below_divisor(self):
        assert poly_mod(0b101, 0b1011) == 0b101

    def test_poly_mod_invalid(self):
        with pytest.raises(CodingError):
            poly_mod(5, 0)
        with pytest.raises(CodingError):
            poly_mod(-1, 3)

    def test_poly_mul(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101
        assert poly_mul(0b1011, 1) == 0b1011
        assert poly_mul(0, 0b1011) == 0

    def test_poly_mulmod_and_gcd(self):
        modulus = 0b1011
        assert poly_mulmod(0b100, 0b10, modulus) == poly_mod(0b1000, modulus)
        assert poly_gcd(0b1011, 0b11) == 1
        # gcd(x^2 + x, x) = x
        assert poly_gcd(0b110, 0b10) == 0b10

    def test_polynomial_degree_and_str(self):
        assert polynomial_degree(0b1011) == 3
        assert polynomial_str(0b1011) == "x^3 + x + 1"
        assert polynomial_str(0b1) == "1"
        assert polynomial_str(0b110) == "x^2 + x"

    def test_primitivity_check(self):
        assert is_primitive_polynomial(0b1011)       # x^3 + x + 1
        assert is_primitive_polynomial(0b100011101)  # x^8 + x^4 + x^3 + x^2 + 1
        assert is_primitive_polynomial(0b111)        # x^2 + x + 1
        assert not is_primitive_polynomial(0b1111)   # (x + 1)^3, reducible
        assert not is_primitive_polynomial(0b1001)   # x^3 + 1 = (x + 1)(x^2 + x + 1)

    def test_reflect_bits(self):
        assert reflect_bits(0b0001, 4) == 0b1000
        assert reflect_bits(0b1101, 4) == 0b1011
        assert reflect_bits(0xA5, 8) == 0xA5
        with pytest.raises(CodingError):
            reflect_bits(0x100, 8)


class TestCrcParameters:
    def test_full_polynomial_adds_leading_term(self):
        params = CrcParameters(polynomial=0x3, width=3, augment=False)
        assert params.full_polynomial == 0b1011

    def test_rejects_oversized_polynomial(self):
        with pytest.raises(CodingError):
            CrcParameters(polynomial=0x1F, width=3)

    def test_rejects_zero_polynomial(self):
        with pytest.raises(CodingError):
            CrcParameters(polynomial=0, width=8)

    def test_plain_remainder_rejects_rocksoft_options(self):
        with pytest.raises(CodingError):
            CrcParameters(polynomial=0x3, width=3, augment=False, init=1)
        with pytest.raises(CodingError):
            CrcParameters(polynomial=0x3, width=3, augment=False, reflect_in=True)

    def test_is_linear(self):
        assert CrcParameters(polynomial=0x3, width=3, augment=False).is_linear
        assert not CRC32_ETHERNET.is_linear

    def test_describe_mentions_polynomial(self):
        text = CRC16_CCITT.describe()
        assert "CRC-16" in text
        assert "0x1021" in text


class TestSyndromeCrc:
    """The plain-remainder CRC used as Hamming syndrome (Table 2b)."""

    TABLE_2B = {
        0b0000001: 0b001,
        0b0000010: 0b010,
        0b0000100: 0b100,
        0b0001000: 0b011,
        0b0010000: 0b110,
        0b0100000: 0b111,
        0b1000000: 0b101,
    }

    def test_table_2b_values(self):
        engine = syndrome_crc(0x3, 3)
        for sequence, expected in self.TABLE_2B.items():
            assert engine.compute_bits(sequence, 7) == expected

    def test_zero_message_has_zero_crc(self):
        engine = syndrome_crc(0x3, 3)
        assert engine.compute_bits(0, 7) == 0

    def test_linearity(self):
        engine = syndrome_crc(0x3, 3)
        samples = [0b0000001, 0b0010000, 0b1010101, 0b1111111, 0]
        assert engine.verify_linearity(samples, 7)

    def test_unit_crcs_are_table_2b(self):
        engine = syndrome_crc(0x3, 3)
        units = engine.unit_crcs(7)
        assert units == [0b001, 0b010, 0b100, 0b011, 0b110, 0b111, 0b101]

    def test_unit_crcs_distinct_for_primitive_polynomial(self):
        engine = syndrome_crc(0x1D, 8)
        units = engine.unit_crcs(255)
        assert len(set(units)) == 255
        assert 0 not in units

    def test_compute_accepts_bitvector_and_bytes(self):
        from repro.core.bits import BitVector

        engine = syndrome_crc(0x3, 3)
        assert engine.compute(BitVector(0b0001000, 7)) == 0b011
        assert engine.compute(b"\x01") == engine.compute_bits(1, 8)
        assert engine.compute(0b0001000, width=7) == 0b011
        with pytest.raises(CodingError):
            engine.compute(5)  # int without a width

    def test_rejects_oversized_message(self):
        engine = syndrome_crc(0x3, 3)
        with pytest.raises(CodingError):
            engine.compute_bits(1 << 7, 7)


class TestProtocolCrcs:
    """Known check values for the standard protocol CRCs."""

    CHECK_INPUT = b"123456789"

    def test_crc32_ethernet_check_value(self):
        assert CrcEngine(CRC32_ETHERNET).compute_bytes(self.CHECK_INPUT) == 0xCBF43926

    def test_crc16_ccitt_check_value(self):
        assert CrcEngine(CRC16_CCITT).compute_bytes(self.CHECK_INPUT) == 0x29B1

    def test_crc8_atm_check_value(self):
        assert CrcEngine(CRC8_ATM).compute_bytes(self.CHECK_INPUT) == 0xF4

    def test_table_and_reference_paths_agree(self):
        engine = CrcEngine(CRC8_ATM)
        data = bytes(range(40))
        table_result = engine.compute_bytes(data)
        reference = engine.compute_bits_reference(int.from_bytes(data, "big"), len(data) * 8)
        assert table_result == reference

    def test_compute_bits_matches_bytes_path_for_augmented_crc(self):
        engine = CrcEngine(CRC16_CCITT)
        data = b"\x01\x02\x03\x04"
        assert engine.compute_bytes(data) == engine.compute_bits_reference(
            int.from_bytes(data, "big"), 32
        )

    def test_reflect_in_requires_byte_alignment(self):
        engine = CrcEngine(CRC32_ETHERNET)
        with pytest.raises(CodingError):
            engine.compute_bits_reference(1, 7)
