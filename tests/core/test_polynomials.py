"""Tests for the Table 1 polynomial registry."""

import pytest

from repro.core.polynomials import (
    PAPER_ERRATA,
    TABLE_1,
    crc_parameter,
    default_polynomial,
    find_primitive_polynomials,
    polynomial_for_code,
    polynomial_for_order,
    polynomials_for_order,
    render_table_1,
    supported_orders,
)
from repro.exceptions import CodingError


class TestTable1Registry:
    def test_fifteen_rows_like_the_paper(self):
        assert len(TABLE_1) == 15

    def test_orders_cover_3_to_15(self):
        assert supported_orders() == list(range(3, 16))

    def test_every_row_is_a_consistent_hamming_code(self):
        for entry in TABLE_1:
            assert entry.n == (1 << entry.m) - 1
            assert entry.k == entry.n - entry.m
            assert entry.full_polynomial.bit_length() - 1 == entry.m

    def test_every_polynomial_is_primitive(self):
        # A primitive generator is exactly what a cyclic Hamming code needs;
        # this validates the polynomial column of Table 1 wholesale.
        for entry in TABLE_1:
            assert entry.is_valid_hamming_generator(), entry.polynomial_text

    def test_crc_parameter_strips_leading_term(self):
        entry = polynomial_for_order(3)
        assert entry.full_polynomial == 0b1011
        assert entry.crc_parameter == 0x3

    def test_paper_parameter_column_matches_except_known_errata(self):
        for index, entry in enumerate(TABLE_1):
            if index in PAPER_ERRATA:
                assert not entry.matches_paper()
            else:
                assert entry.matches_paper(), (
                    f"row {index} ({entry.code}) unexpectedly disagrees with the paper"
                )

    def test_known_parameters_from_table_1(self):
        # Spot checks of the printed CRC-m parameters (non-erratum rows).
        assert crc_parameter(3) == 0x3
        assert crc_parameter(5) == 0x05
        assert crc_parameter(5, index=1) == 0x17
        assert crc_parameter(8) == 0x1D
        assert crc_parameter(12) == 0x053
        assert crc_parameter(15) == 0x003

    def test_paper_parameters_m8_is_crc8_polynomial(self):
        # The (255, 247) row is the classic CRC-8 polynomial 0x1D.
        entry = polynomial_for_order(8)
        assert entry.code == (255, 247)
        assert entry.crc_parameter == 0x1D

    def test_two_rows_for_orders_5_and_9(self):
        assert len(polynomials_for_order(5)) == 2
        assert len(polynomials_for_order(9)) == 2
        assert len(polynomials_for_order(8)) == 1

    def test_lookup_by_code(self):
        entry = polynomial_for_code(255, 247)
        assert entry.m == 8
        with pytest.raises(CodingError):
            polynomial_for_code(255, 240)

    def test_lookup_unknown_order(self):
        with pytest.raises(CodingError):
            polynomial_for_order(16)
        with pytest.raises(CodingError):
            polynomial_for_order(8, index=1)

    def test_default_polynomial_is_paper_configuration(self):
        entry = default_polynomial()
        assert entry.m == 8
        assert entry.code == (255, 247)


class TestRendering:
    def test_render_contains_every_code(self):
        text = render_table_1()
        for entry in TABLE_1:
            assert f"({entry.n}, {entry.k})" in text

    def test_render_with_validity_flags(self):
        text = render_table_1(include_validity=True)
        assert "primitive" in text
        assert "True" in text


class TestPrimitiveSearch:
    def test_finds_known_degree_3_primitives(self):
        found = find_primitive_polynomials(3)
        assert 0b1011 in found
        assert 0b1101 in found
        assert len(found) == 2

    def test_limit_stops_early(self):
        found = find_primitive_polynomials(8, limit=1)
        assert len(found) == 1

    def test_invalid_degree(self):
        with pytest.raises(CodingError):
            find_primitive_polynomials(0)
