"""Tests for the bit-vector utilities."""

import pytest

from repro.core import bits
from repro.core.bits import BitVector
from repro.exceptions import CodingError


class TestScalarHelpers:
    def test_mask_widths(self):
        assert bits.mask(0) == 0
        assert bits.mask(1) == 1
        assert bits.mask(8) == 0xFF
        assert bits.mask(255) == (1 << 255) - 1

    def test_mask_rejects_negative_width(self):
        with pytest.raises(CodingError):
            bits.mask(-1)

    def test_bits_to_bytes_len(self):
        assert bits.bits_to_bytes_len(0) == 0
        assert bits.bits_to_bytes_len(1) == 1
        assert bits.bits_to_bytes_len(8) == 1
        assert bits.bits_to_bytes_len(9) == 2
        assert bits.bits_to_bytes_len(256) == 32

    def test_align_up(self):
        assert bits.align_up(0, 8) == 0
        assert bits.align_up(1, 8) == 8
        assert bits.align_up(8, 8) == 8
        assert bits.align_up(255, 8) == 256

    def test_align_up_invalid(self):
        with pytest.raises(CodingError):
            bits.align_up(5, 0)
        with pytest.raises(CodingError):
            bits.align_up(-1, 8)

    def test_padding_bits_for_alignment_matches_paper_sizes(self):
        # A 255-bit chunk needs 1 padding bit; a 247-bit basis also 1.
        assert bits.padding_bits_for_alignment(255) == 1
        assert bits.padding_bits_for_alignment(247) == 1
        assert bits.padding_bits_for_alignment(256) == 0

    def test_int_bytes_roundtrip(self):
        value = 0x1234_5678_9ABC
        data = bits.int_to_bytes(value, 48)
        assert len(data) == 6
        assert bits.bytes_to_int(data) == value

    def test_int_to_bytes_rejects_overflow(self):
        with pytest.raises(CodingError):
            bits.int_to_bytes(256, 8)

    def test_bit_manipulation(self):
        assert bits.get_bit(0b1010, 1) == 1
        assert bits.get_bit(0b1010, 0) == 0
        assert bits.set_bit(0b1010, 0) == 0b1011
        assert bits.clear_bit(0b1010, 1) == 0b1000
        assert bits.flip_bit(0b1010, 3) == 0b0010

    def test_extract_bits_p4_slice(self):
        value = 0b1101_0110
        assert bits.extract_bits(value, 7, 4) == 0b1101
        assert bits.extract_bits(value, 3, 0) == 0b0110
        assert bits.extract_bits(value, 0, 0) == 0

    def test_extract_bits_invalid_range(self):
        with pytest.raises(CodingError):
            bits.extract_bits(0xFF, 2, 5)

    def test_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0b1011) == 3
        assert bits.popcount((1 << 255) - 1) == 255

    def test_bitstring_roundtrip(self):
        assert bits.bitstring_to_int("0000001") == 1
        assert bits.int_to_bitstring(5, 4) == "0101"
        assert bits.bitstring_to_int(bits.int_to_bitstring(12345, 20)) == 12345

    def test_bitstring_rejects_garbage(self):
        with pytest.raises(CodingError):
            bits.bitstring_to_int("01x1")

    def test_iter_bits_msb(self):
        assert list(bits.iter_bits_msb(0b101, 3)) == [1, 0, 1]
        assert list(bits.iter_bits_msb(1, 4)) == [0, 0, 0, 1]


class TestBitVector:
    def test_construction_and_accessors(self):
        vector = BitVector(0b1010, 4)
        assert vector.value == 10
        assert vector.width == 4
        assert len(vector) == 4
        assert int(vector) == 10

    def test_rejects_value_out_of_range(self):
        with pytest.raises(CodingError):
            BitVector(16, 4)

    def test_from_bytes_and_back(self):
        vector = BitVector.from_bytes(b"\x12\x34")
        assert vector.width == 16
        assert vector.value == 0x1234
        assert vector.to_bytes() == b"\x12\x34"

    def test_from_bytes_truncates_to_width(self):
        vector = BitVector.from_bytes(b"\xff\xff", width=12)
        assert vector.width == 12
        assert vector.value == 0xFFF

    def test_from_bitstring(self):
        vector = BitVector.from_bitstring("0000 0001")
        assert vector.width == 8
        assert vector.value == 1

    def test_unit_and_zero_and_ones(self):
        assert BitVector.unit(3, 8).value == 8
        assert BitVector.zeros(5).value == 0
        assert BitVector.ones(5).value == 0b11111

    def test_unit_position_out_of_range(self):
        with pytest.raises(CodingError):
            BitVector.unit(8, 8)

    def test_xor_and_width_mismatch(self):
        left = BitVector(0b1100, 4)
        right = BitVector(0b1010, 4)
        assert (left ^ right).value == 0b0110
        with pytest.raises(CodingError):
            left ^ BitVector(0, 5)

    def test_and_or(self):
        left = BitVector(0b1100, 4)
        right = BitVector(0b1010, 4)
        assert (left & right).value == 0b1000
        assert (left | right).value == 0b1110

    def test_concat_matches_p4_plus_plus(self):
        high = BitVector(0b101, 3)
        low = BitVector(0b01, 2)
        combined = high.concat(low)
        assert combined.width == 5
        assert combined.value == 0b10101

    def test_slice(self):
        vector = BitVector(0b1101_0110, 8)
        assert vector.slice(7, 4).value == 0b1101
        assert vector.slice(3, 0).value == 0b0110
        with pytest.raises(CodingError):
            vector.slice(8, 0)

    def test_truncate_and_extend(self):
        vector = BitVector(0b1101_0110, 8)
        assert vector.truncate_low(4).value == 0b0110
        assert vector.truncate_high(4).value == 0b1101
        extended = vector.zero_extend(12)
        assert extended.width == 12
        assert extended.value == vector.value
        with pytest.raises(CodingError):
            vector.zero_extend(4)

    def test_flip(self):
        vector = BitVector(0b1000, 4)
        assert vector.flip(0).value == 0b1001
        assert vector.flip(3).value == 0
        with pytest.raises(CodingError):
            vector.flip(4)

    def test_equality_and_hash(self):
        assert BitVector(5, 4) == BitVector(5, 4)
        assert BitVector(5, 4) != BitVector(5, 5)
        assert hash(BitVector(5, 4)) == hash(BitVector(5, 4))
        mapping = {BitVector(5, 4): "x"}
        assert mapping[BitVector(5, 4)] == "x"

    def test_iteration_msb_first(self):
        assert list(BitVector(0b0110, 4)) == [0, 1, 1, 0]

    def test_weight(self):
        assert BitVector(0b0110, 4).weight() == 2

    def test_repr_small_and_large(self):
        assert "0101" in repr(BitVector(5, 4))
        large = BitVector(1 << 100, 200)
        assert "width=200" in repr(large)

    def test_bits_from_iterable(self):
        vector = bits.bits_from_iterable([1, 0, 1, 1])
        assert vector.width == 4
        assert vector.value == 0b1011
        with pytest.raises(CodingError):
            bits.bits_from_iterable([1, 2])
