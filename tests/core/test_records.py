"""Tests for the GD record types and their size accounting."""

import pytest

from repro.core.records import (
    CompressedRecord,
    RawRecord,
    RecordType,
    UncompressedRecord,
)
from repro.exceptions import CodingError


class TestRawRecord:
    def test_sizes(self):
        record = RawRecord(chunk=0, chunk_bits=256)
        assert record.record_type is RecordType.RAW
        assert record.payload_bits == 256
        assert record.padded_bits == 256
        assert record.payload_bytes == 32
        assert record.to_bytes() == bytes(32)

    def test_non_aligned_chunk_padding(self):
        record = RawRecord(chunk=1, chunk_bits=15)
        assert record.padded_bits == 16
        assert record.payload_bytes == 2

    def test_rejects_oversized_chunk(self):
        with pytest.raises(CodingError):
            RawRecord(chunk=1 << 16, chunk_bits=16)


class TestUncompressedRecord:
    def _paper_record(self, padding=8):
        return UncompressedRecord(
            prefix=1,
            basis=(1 << 247) - 1,
            deviation=0xAB,
            prefix_bits=1,
            basis_bits=247,
            deviation_bits=8,
            alignment_padding_bits=padding,
        )

    def test_paper_sizes(self):
        # 1 + 247 + 8 field bits + 8 padding bits = 264 bits = 33 bytes,
        # which is the 1.03 "no table" overhead of Figure 3.
        record = self._paper_record()
        assert record.payload_bits == 256
        assert record.padded_bits == 264
        assert record.payload_bytes == 33

    def test_without_padding(self):
        record = self._paper_record(padding=0)
        assert record.padded_bits == 256
        assert record.payload_bytes == 32

    def test_dedup_key_is_basis(self):
        record = self._paper_record()
        assert record.dedup_key == record.basis

    def test_serialisation_layout(self):
        record = UncompressedRecord(
            prefix=1,
            basis=0b1011,
            deviation=0b101,
            prefix_bits=1,
            basis_bits=4,
            deviation_bits=3,
            alignment_padding_bits=0,
        )
        # prefix|basis|deviation = 1 1011 101 = 0xDD
        assert record.to_bytes() == bytes([0b11011101])

    def test_field_range_validation(self):
        with pytest.raises(CodingError):
            UncompressedRecord(
                prefix=2, basis=0, deviation=0,
                prefix_bits=1, basis_bits=4, deviation_bits=3,
            )
        with pytest.raises(CodingError):
            UncompressedRecord(
                prefix=0, basis=0, deviation=0,
                prefix_bits=1, basis_bits=4, deviation_bits=3,
                alignment_padding_bits=-1,
            )

    def test_record_type(self):
        assert self._paper_record().record_type is RecordType.UNCOMPRESSED


class TestCompressedRecord:
    def _paper_record(self):
        return CompressedRecord(
            prefix=1,
            identifier=0x7FFF,
            deviation=0xCD,
            prefix_bits=1,
            identifier_bits=15,
            deviation_bits=8,
        )

    def test_paper_sizes(self):
        # 1 + 15 + 8 bits = 24 bits = 3 bytes: the compressed payload of the
        # paper (0.09 of a 32-byte chunk).
        record = self._paper_record()
        assert record.payload_bits == 24
        assert record.padded_bits == 24
        assert record.payload_bytes == 3

    def test_compression_factor_vs_chunk(self):
        record = self._paper_record()
        assert record.payload_bytes / 32 == pytest.approx(0.09375)

    def test_serialisation_layout(self):
        record = CompressedRecord(
            prefix=1,
            identifier=0b0000000000000001,
            deviation=0x05,
            prefix_bits=1,
            identifier_bits=15,
            deviation_bits=8,
        )
        assert record.to_bytes() == bytes([0b10000000, 0b00000001, 0x05])

    def test_field_range_validation(self):
        with pytest.raises(CodingError):
            CompressedRecord(
                prefix=0, identifier=1 << 15, deviation=0,
                prefix_bits=1, identifier_bits=15, deviation_bits=8,
            )
        with pytest.raises(CodingError):
            CompressedRecord(
                prefix=0, identifier=0, deviation=256,
                prefix_bits=1, identifier_bits=15, deviation_bits=8,
            )

    def test_record_type(self):
        assert self._paper_record().record_type is RecordType.COMPRESSED

    def test_padding_for_unaligned_identifier(self):
        record = CompressedRecord(
            prefix=0,
            identifier=3,
            deviation=1,
            prefix_bits=0,
            identifier_bits=10,
            deviation_bits=4,
            alignment_padding_bits=2,
        )
        assert record.payload_bits == 14
        assert record.padded_bits == 16
