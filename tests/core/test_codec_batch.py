"""Batched codec pipeline equivalence: EncodedBatch vs the per-record path.

`GDCodec.compress` returns a lazily materialised `EncodedBatch`; the
container it serialises, the dictionary state it leaves behind and the
stats it accumulates must all be byte-for-byte / field-for-field identical
to the eager per-record path.  Likewise `decompress_container`'s columnar
decode must return the same bytes — and the same decoder stats — as
materialising every record.
"""

import dataclasses
import random

import pytest

from repro.core.codec import GDCodec
from repro.core.encoder import EncodedBatch


def clustered_data(codec, bases, count, rng):
    """Data whose chunks share the given bases (codeword ± one bit)."""
    code = codec.transform.code
    chunks = []
    for index in range(count):
        codeword = code.encode(bases[index % len(bases)])
        position = rng.randrange(code.n + 1)
        body = codeword if position == code.n else codeword ^ (1 << position)
        chunks.append(body.to_bytes(codec.chunk_bytes, "big"))
    return b"".join(chunks)

CONFIGS = {
    "default": dict(),
    "order4": dict(order=4, identifier_bits=6),
    "no_table": dict(mode="no_table"),
    "padded": dict(alignment_padding_bits=8),
    "learning_delay": dict(learning_delay_chunks=3),
    "pure_backend": dict(backend="pure"),
}


def _sample(codec, count=120, seed=11):
    rng = random.Random(seed)
    bases = [rng.getrandbits(codec.transform.code.k) for _ in range(8)]
    return clustered_data(codec, bases, count, rng)


def _force_eager(codec, monkeypatch):
    """Disable the batch encode so compress() takes the per-record path."""
    monkeypatch.setattr(
        codec.encoder, "encode_buffer_batch", lambda buffer: None
    )


@pytest.mark.parametrize("config", sorted(CONFIGS))
class TestCompressBatchEquivalence:
    def test_records_stats_and_container_match_eager_path(self, config, monkeypatch):
        batch_codec = GDCodec(**CONFIGS[config])
        eager_codec = GDCodec(**CONFIGS[config])
        _force_eager(eager_codec, monkeypatch)
        data = _sample(batch_codec)

        batch_result = batch_codec.compress(data)
        eager_result = eager_codec.compress(data)

        assert isinstance(batch_result.records, EncodedBatch)
        assert not isinstance(eager_result.records, EncodedBatch)
        assert list(batch_result.records) == list(eager_result.records)
        assert batch_result.records == tuple(eager_result.records)
        assert batch_codec.encoder.stats.as_dict() == eager_codec.encoder.stats.as_dict()
        assert dataclasses.replace(batch_result, records=()) == dataclasses.replace(
            eager_result, records=()
        )
        assert batch_codec.to_container(batch_result) == eager_codec.to_container(
            eager_result
        )

    def test_batches_compose_with_dictionary_state(self, config, monkeypatch):
        """Back-to-back compress calls see the dictionary the previous batch
        left behind, exactly like the per-record path."""
        batch_codec = GDCodec(**CONFIGS[config])
        eager_codec = GDCodec(**CONFIGS[config])
        _force_eager(eager_codec, monkeypatch)
        rng = random.Random(3)
        for count in (40, 40, 40):
            data = _sample(batch_codec, count=count, seed=rng.randrange(1 << 30))
            assert list(batch_codec.compress(data).records) == list(
                eager_codec.compress(data).records
            )

    def test_container_roundtrip(self, config, monkeypatch):
        codec = GDCodec(**CONFIGS[config])
        data = _sample(codec)
        blob = codec.to_container(codec.compress(data))
        assert codec.clone().decompress_container(blob) == data


class TestColumnarDecompress:
    def test_matches_record_path_bytes_and_stats(self, monkeypatch):
        codec = GDCodec()
        data = _sample(codec, count=200)
        blob = codec.to_container(codec.compress(data))

        columnar_codec = codec.clone()
        record_codec = codec.clone()
        # Starve the record path of the columnar shortcut so it exercises
        # parse_record + decode_to_bytes.
        monkeypatch.setattr(
            type(record_codec),
            "_decompress_container_columns",
            lambda self, blob, offset, count, original_bytes: (_ for _ in ()).throw(
                AssertionError("columnar path should be disabled")
            ),
            raising=True,
        )

        def forced_records(self, blob, offset, count, original_bytes):
            records = []
            for _ in range(count):
                record, offset = self.parse_record(blob, offset)
                records.append(record)
            return self.decompress_records(records, original_bytes=original_bytes)

        monkeypatch.setattr(
            type(record_codec), "_decompress_container_columns", forced_records
        )
        assert columnar_codec.decompress_container(blob) == data
        assert record_codec.decompress_container(blob) == data

    def test_decode_columns_matches_record_path_bytes_and_stats(self):
        codec = GDCodec()
        data = _sample(codec, count=150)
        records = list(codec.compress(data).records)
        assert any(record.record_type == 3 for record in records)

        record_codec = codec.clone()
        record_bytes = record_codec.decoder.decode_to_bytes(records)

        tags = bytearray()
        prefixes, keys, deviations = [], [], []
        for record in records:
            tags.append(int(record.record_type))
            prefixes.append(record.prefix)
            keys.append(
                record.identifier if int(record.record_type) == 3 else record.basis
            )
            deviations.append(record.deviation)
        columnar_codec = codec.clone()
        columnar_bytes = columnar_codec.decoder.decode_columns_to_bytes(
            bytes(tags), prefixes, keys, deviations
        )
        assert columnar_bytes == record_bytes
        assert (
            columnar_codec.decoder.stats.as_dict()
            == record_codec.decoder.stats.as_dict()
        )

    def test_empty_payload_roundtrips(self):
        codec = GDCodec()
        blob = codec.to_container(codec.compress(b""))
        assert codec.clone().decompress_container(blob) == b""


class TestEncodedBatchContainer:
    def test_pack_stream_matches_per_record_serialisation(self):
        codec = GDCodec()
        data = _sample(codec, count=90)
        result = codec.compress(data)
        assert isinstance(result.records, EncodedBatch)
        eager = dataclasses.replace(result, records=tuple(result.records))
        assert codec.to_container(result) == codec.to_container(eager)

    def test_sequence_protocol(self):
        codec = GDCodec()
        data = _sample(codec, count=30)
        records = codec.compress(data).records
        assert isinstance(records, EncodedBatch)
        assert len(records) == 30
        assert records[0] == list(records)[0]
        assert records[-1] == list(records)[-1]
        assert records == tuple(records)
