"""Streaming compression engine: protocol conformance and round trips."""

import random

import pytest

from repro.core.codec import GDCodec
from repro.core.engine import (
    Compressor,
    DedupStreamCompressor,
    GDStreamCompressor,
    GzipStreamCompressor,
    NullStreamCompressor,
    compress_bytes,
    compress_file,
    decompress_bytes,
    decompress_file,
    iter_file_blocks,
)
from repro.exceptions import CodingError

ALL_COMPRESSORS = [
    GDStreamCompressor,
    GzipStreamCompressor,
    DedupStreamCompressor,
    NullStreamCompressor,
]


def clustered_payload(total_bytes: int, seed: int = 11, bases: int = 8) -> bytes:
    """Sensor-like payload: 32-byte chunks around a few bases, one flip each."""
    rng = random.Random(seed)
    population = [rng.getrandbits(247) for _ in range(bases)]
    out = bytearray()
    while len(out) < total_bytes:
        basis = rng.choice(population)
        chunk = basis ^ (1 << rng.randrange(255))
        out += ((rng.getrandbits(1) << 255) | chunk).to_bytes(32, "big")
    return bytes(out[:total_bytes])


def as_blocks(data: bytes, block_size: int):
    return [data[offset : offset + block_size] for offset in range(0, len(data), block_size)]


class TestProtocol:
    @pytest.mark.parametrize("factory", ALL_COMPRESSORS)
    def test_satisfies_compressor_protocol(self, factory):
        compressor = factory()
        assert isinstance(compressor, Compressor)
        assert compressor.name
        assert isinstance(compressor.magic, bytes)

    @pytest.mark.parametrize("factory", ALL_COMPRESSORS)
    def test_output_starts_with_magic(self, factory):
        compressor = factory()
        blob = compress_bytes(compressor, b"x" * 64)
        assert blob.startswith(compressor.magic)


class TestRoundTrips:
    @pytest.mark.parametrize("factory", ALL_COMPRESSORS)
    @pytest.mark.parametrize("size", [0, 1, 31, 32, 33, 4096, 65537])
    def test_roundtrip_various_sizes(self, factory, size):
        data = clustered_payload(size) if size else b""
        compressor = factory()
        blob = compress_bytes(compressor, data)
        assert decompress_bytes(factory(), blob) == data

    @pytest.mark.parametrize("factory", ALL_COMPRESSORS)
    def test_one_mebibyte_stream_stays_bounded(self, factory):
        """A 1 MiB stream round-trips without materialising the input.

        The input is a generator (consumed lazily, cannot be replayed) and
        the compressed blocks are re-fragmented before decompression, so
        both directions must work purely incrementally.
        """
        total = 1024 * 1024
        data = clustered_payload(total)
        compressor = factory()

        consumed = []

        def producer():
            for block in as_blocks(data, 8192):
                consumed.append(len(block))
                yield block

        compressed = list(compressor.compress_stream(producer()))
        assert sum(consumed) == total
        # No compressor may buffer everything and emit a single block at the
        # end: compression must have produced output incrementally.
        assert len(compressed) > 2

        refragmented = as_blocks(b"".join(compressed), 1000)
        restored = bytearray()
        for block in factory().decompress_stream(iter(refragmented)):
            restored += block
        assert bytes(restored) == data

    @pytest.mark.parametrize("factory", ALL_COMPRESSORS)
    def test_byte_at_a_time_decompression(self, factory):
        """Worst-case fragmentation: the decoder sees one byte per block."""
        data = clustered_payload(2048)
        blob = compress_bytes(factory(), data)
        stream = factory().decompress_stream(bytes([b]) for b in blob)
        assert b"".join(stream) == data


class TestGDStream:
    def test_reads_legacy_containers(self):
        data = clustered_payload(4096)
        legacy = GDCodec(order=8, identifier_bits=15).compress_to_container(data)
        assert decompress_bytes(GDStreamCompressor(), legacy) == data

    def test_streamed_container_rejected_by_legacy_reader(self):
        data = clustered_payload(256)
        blob = compress_bytes(GDStreamCompressor(), data)
        codec = GDCodec.from_container_header(blob)
        with pytest.raises(CodingError):
            codec.decompress_container(blob)

    def test_header_carries_parameters(self):
        """A stream written with non-default parameters decodes on its own."""
        data = clustered_payload(2048)
        blob = compress_bytes(GDStreamCompressor(order=8, identifier_bits=10), data)
        assert decompress_bytes(GDStreamCompressor(), blob) == data

    def test_truncated_stream_raises(self):
        blob = compress_bytes(GDStreamCompressor(), clustered_payload(1024))
        with pytest.raises(CodingError):
            decompress_bytes(GDStreamCompressor(), blob[:-4])

    def test_trailing_garbage_raises(self):
        blob = compress_bytes(GDStreamCompressor(), clustered_payload(1024))
        with pytest.raises(CodingError):
            decompress_bytes(GDStreamCompressor(), blob + b"junk")

    def test_crafted_huge_identifier_width_stays_bounded(self):
        """A hostile GDZ1 header (identifier_bits=255) must fail cleanly,
        not allocate a 2**255-entry identifier pool — dictionary identifier
        allocation is lazy, so capacity costs no memory up front."""
        from repro.core.codec import CONTAINER_HEADER, FLAG_STREAMED
        from repro.exceptions import ReproError

        header = CONTAINER_HEADER.pack(b"GDZ1", 8, 256, 255, FLAG_STREAMED, 0, 0)
        # A type-3 record referencing an identifier that was never mapped.
        record = bytes([3]) + b"\x00" * 33
        with pytest.raises(ReproError):
            decompress_bytes(GDStreamCompressor(), header + record)

    def test_compression_beats_half_on_clustered_data(self):
        data = clustered_payload(256 * 1024)
        blob = compress_bytes(GDStreamCompressor(), data)
        assert len(blob) < len(data) / 2

    def test_static_mode_roundtrips_through_same_configuration(self):
        """A static-table stream decodes with an identically configured
        compressor (the decoder preloads the same bases)."""
        from repro.core.transform import GDTransform

        data = clustered_payload(8192)
        transform = GDTransform(order=8)
        bases = {transform.split(data[i : i + 32]).basis for i in range(0, len(data), 32)}
        factory = lambda: GDStreamCompressor(mode="static", static_bases=sorted(bases))
        blob = compress_bytes(factory(), data)
        assert decompress_bytes(factory(), blob) == data
        # Static hits make every record type 3: far smaller than dynamic.
        assert len(blob) < len(compress_bytes(GDStreamCompressor(), data))

    def test_seeded_random_eviction_roundtrips_under_pressure(self):
        """Random-eviction streams decode when the decoder shares the seed."""
        data = clustered_payload(128 * 1024, bases=600)
        factory = lambda: GDStreamCompressor(
            identifier_bits=4, eviction_policy="random", eviction_seed=7
        )
        blob = compress_bytes(factory(), data)
        assert decompress_bytes(factory(), blob) == data

    @pytest.mark.parametrize("factory", [GDStreamCompressor, DedupStreamCompressor])
    def test_unseeded_random_eviction_rejected(self, factory):
        """Streaming with random eviction and no seed would silently corrupt
        once the dictionary fills (compressor and decompressor draw different
        eviction sequences) — construction must fail loudly instead."""
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="eviction_seed"):
            factory(eviction_policy="random")

    def test_reads_legacy_containers_with_alignment_padding(self):
        """The header carries the padding width, so the ZipLine-accounting
        configuration (8 padding bits on type-2 records) round-trips too."""
        data = clustered_payload(4096)
        codec = GDCodec(order=8, identifier_bits=15, alignment_padding_bits=8)
        legacy = codec.compress_to_container(data)
        assert decompress_bytes(GDStreamCompressor(), legacy) == data


class TestGzipStream:
    def test_concatenated_members_decode_like_gunzip(self):
        first = compress_bytes(GzipStreamCompressor(), b"alpha" * 100)
        second = compress_bytes(GzipStreamCompressor(), b"beta" * 100)
        restored = decompress_bytes(GzipStreamCompressor(), first + second)
        assert restored == b"alpha" * 100 + b"beta" * 100

    def test_trailing_garbage_raises(self):
        blob = compress_bytes(GzipStreamCompressor(), b"payload" * 50)
        with pytest.raises(CodingError):
            decompress_bytes(GzipStreamCompressor(), blob + b"garbage!")

    def test_truncated_stream_raises(self):
        blob = compress_bytes(GzipStreamCompressor(), b"payload" * 50)
        with pytest.raises(CodingError):
            decompress_bytes(GzipStreamCompressor(), blob[:-2])


class TestDedupStream:
    def test_duplicate_heavy_stream_compresses(self):
        chunk = bytes(range(32))
        data = chunk * 4096
        blob = compress_bytes(DedupStreamCompressor(), data)
        assert len(blob) < len(data) / 8
        assert decompress_bytes(DedupStreamCompressor(), blob) == data

    def test_unknown_tag_raises(self):
        compressor = DedupStreamCompressor()
        header = compress_bytes(compressor, b"")[: compressor._HEADER.size]
        with pytest.raises(CodingError):
            decompress_bytes(DedupStreamCompressor(), header + b"\xff")

    @pytest.mark.parametrize("chunk_size,identifier_bits", [(32, 255), (32, 0), (0, 15)])
    def test_crafted_header_fields_rejected(self, chunk_size, identifier_bits):
        """Out-of-range header fields raise instead of sizing a dictionary
        from untrusted input (identifier_bits=255 would otherwise try to
        allocate a 2**255-entry identifier space)."""
        import struct as _struct

        blob = DedupStreamCompressor._HEADER.pack(b"GDD1", chunk_size, identifier_bits)
        with pytest.raises(CodingError, match="header"):
            decompress_bytes(DedupStreamCompressor(), blob + b"\x00")

    def test_seeded_random_eviction_is_deterministic(self):
        data = clustered_payload(64 * 1024, bases=600)
        first = compress_bytes(
            DedupStreamCompressor(identifier_bits=4, eviction_policy="random", eviction_seed=1),
            data,
        )
        second = compress_bytes(
            DedupStreamCompressor(identifier_bits=4, eviction_policy="random", eviction_seed=1),
            data,
        )
        assert first == second


class TestFileHelpers:
    def test_compress_and_decompress_file(self, tmp_path):
        data = clustered_payload(100_000)
        source = tmp_path / "payload.bin"
        source.write_bytes(data)
        packed = tmp_path / "payload.gdz"
        restored = tmp_path / "restored.bin"

        read, written = compress_file(GDStreamCompressor(), source, packed, block_size=4096)
        assert read == len(data)
        assert written == packed.stat().st_size
        read_back, out = decompress_file(GDStreamCompressor(), packed, restored)
        assert read_back == written
        assert out == len(data)
        assert restored.read_bytes() == data

    def test_failed_run_leaves_existing_destination_intact(self, tmp_path):
        """A missing source or corrupt stream must not clobber the output."""
        destination = tmp_path / "out.bin"
        destination.write_bytes(b"precious")
        with pytest.raises(OSError):
            compress_file(GDStreamCompressor(), tmp_path / "missing.bin", destination)
        assert destination.read_bytes() == b"precious"

        corrupt = tmp_path / "corrupt.gdz"
        blob = compress_bytes(GDStreamCompressor(), clustered_payload(1024))
        corrupt.write_bytes(blob[:-4])
        with pytest.raises(CodingError):
            decompress_file(GDStreamCompressor(), corrupt, destination)
        assert destination.read_bytes() == b"precious"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_iter_file_blocks_sizes(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"a" * 2500)
        blocks = list(iter_file_blocks(path, block_size=1024))
        assert [len(block) for block in blocks] == [1024, 1024, 452]
