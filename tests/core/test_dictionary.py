"""Tests for the bounded basis dictionary."""

import pytest

from repro.core.dictionary import BasisDictionary, EvictionPolicy
from repro.exceptions import DictionaryError


class TestBasicMapping:
    def test_insert_assigns_sequential_identifiers(self):
        dictionary = BasisDictionary(8)
        assert dictionary.insert("a") == (0, None)
        assert dictionary.insert("b") == (1, None)
        assert dictionary.insert("c") == (2, None)
        assert len(dictionary) == 3

    def test_lookup_and_reverse_lookup(self):
        dictionary = BasisDictionary(8)
        dictionary.insert("a")
        assert dictionary.lookup("a") == 0
        assert dictionary.reverse_lookup(0) == "a"
        assert dictionary.lookup("missing") is None
        assert dictionary.reverse_lookup(5) is None

    def test_reverse_lookup_bounds(self):
        dictionary = BasisDictionary(8)
        with pytest.raises(DictionaryError):
            dictionary.reverse_lookup(8)

    def test_contains_and_peek(self):
        dictionary = BasisDictionary(4)
        dictionary.insert("x")
        assert "x" in dictionary
        assert "y" not in dictionary
        assert dictionary.peek("x") == 0
        # peek must not count as a lookup
        assert dictionary.stats.lookups == 0

    def test_duplicate_insert_returns_existing_identifier(self):
        dictionary = BasisDictionary(4)
        first, _ = dictionary.insert("x")
        second, evicted = dictionary.insert("x")
        assert first == second
        assert evicted is None
        assert dictionary.stats.rejected_insertions == 1

    def test_identifier_width(self):
        assert BasisDictionary(2).identifier_width() == 1
        assert BasisDictionary(32768).identifier_width() == 15
        assert BasisDictionary(1).identifier_width() == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(DictionaryError):
            BasisDictionary(0)

    def test_remove_returns_identifier_to_pool(self):
        dictionary = BasisDictionary(2)
        dictionary.insert("a")
        dictionary.insert("b")
        assert dictionary.is_full()
        assert dictionary.remove("a") == 0
        assert not dictionary.is_full()
        identifier, evicted = dictionary.insert("c")
        assert identifier == 0
        assert evicted is None

    def test_remove_missing_key(self):
        dictionary = BasisDictionary(2)
        assert dictionary.remove("nope") is None

    def test_clear(self):
        dictionary = BasisDictionary(4)
        dictionary.insert("a")
        dictionary.clear()
        assert len(dictionary) == 0
        assert dictionary.insert("b") == (0, None)


class TestEvictionPolicies:
    def test_lru_evicts_least_recently_used(self):
        dictionary = BasisDictionary(2, policy="lru")
        dictionary.insert("a")
        dictionary.insert("b")
        dictionary.lookup("a")  # refresh "a", so "b" becomes the LRU entry
        identifier, evicted = dictionary.insert("c")
        assert evicted == "b"
        assert dictionary.reverse_lookup(identifier) == "c"
        assert "a" in dictionary

    def test_fifo_ignores_lookups(self):
        dictionary = BasisDictionary(2, policy="fifo")
        dictionary.insert("a")
        dictionary.insert("b")
        dictionary.lookup("a")
        _, evicted = dictionary.insert("c")
        assert evicted == "a"

    def test_random_eviction_is_deterministic_with_seed(self):
        first = BasisDictionary(2, policy="random", seed=1)
        second = BasisDictionary(2, policy="random", seed=1)
        for dictionary in (first, second):
            dictionary.insert("a")
            dictionary.insert("b")
        assert first.insert("c")[1] == second.insert("c")[1]

    def test_unknown_policy_rejected(self):
        with pytest.raises(DictionaryError):
            BasisDictionary(4, policy="mru")

    def test_policy_from_instance(self):
        assert EvictionPolicy.from_name(EvictionPolicy.FIFO) is EvictionPolicy.FIFO

    def test_eviction_counts(self):
        dictionary = BasisDictionary(2)
        dictionary.insert("a")
        dictionary.insert("b")
        dictionary.insert("c")
        assert dictionary.stats.evictions == 1

    def test_touch_refreshes_recency_without_counting(self):
        dictionary = BasisDictionary(2)
        dictionary.insert("a")
        dictionary.insert("b")
        assert dictionary.touch("a")
        assert not dictionary.touch("missing")
        assert dictionary.stats.lookups == 0
        _, evicted = dictionary.insert("c")
        assert evicted == "b"


class TestExternalIdentifiers:
    def test_insert_with_identifier(self):
        dictionary = BasisDictionary(8)
        dictionary.insert_with_identifier("a", 5)
        assert dictionary.lookup("a") == 5
        assert dictionary.reverse_lookup(5) == "a"

    def test_insert_with_identifier_displaces_previous_key(self):
        dictionary = BasisDictionary(8)
        dictionary.insert_with_identifier("a", 5)
        dictionary.insert_with_identifier("b", 5)
        assert dictionary.reverse_lookup(5) == "b"
        assert dictionary.lookup("a") is None

    def test_insert_with_identifier_conflicting_key(self):
        dictionary = BasisDictionary(8)
        dictionary.insert_with_identifier("a", 5)
        with pytest.raises(DictionaryError):
            dictionary.insert_with_identifier("a", 6)

    def test_insert_with_identifier_out_of_range(self):
        dictionary = BasisDictionary(8)
        with pytest.raises(DictionaryError):
            dictionary.insert_with_identifier("a", 8)


class TestPreloadAndStats:
    def test_preload_deduplicates_keys(self):
        dictionary = BasisDictionary(8)
        count = dictionary.preload(iter(["a", "b", "a", "c"]))
        assert count == 3
        assert len(dictionary) == 3

    def test_preload_over_capacity_rejected(self):
        dictionary = BasisDictionary(2)
        with pytest.raises(DictionaryError):
            dictionary.preload(iter(["a", "b", "c"]))

    def test_hit_ratio(self):
        dictionary = BasisDictionary(8)
        dictionary.insert("a")
        dictionary.lookup("a")
        dictionary.lookup("b")
        assert dictionary.stats.hits == 1
        assert dictionary.stats.misses == 1
        assert dictionary.stats.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert BasisDictionary(2).stats.hit_ratio == 0.0

    def test_stats_as_dict(self):
        dictionary = BasisDictionary(8)
        dictionary.insert("a")
        stats = dictionary.stats.as_dict()
        assert stats["insertions"] == 1
        assert "hit_ratio" in stats

    def test_snapshot_and_items(self):
        dictionary = BasisDictionary(8)
        dictionary.insert("a")
        dictionary.insert("b")
        assert dictionary.snapshot() == {"a": 0, "b": 1}
        assert dict(dictionary.items()) == {"a": 0, "b": 1}
        assert set(dictionary.keys()) == {"a", "b"}

    def test_paper_capacity(self):
        # 15-bit identifiers allow 32,768 cached bases (Section 7).
        dictionary = BasisDictionary(1 << 15)
        assert dictionary.capacity == 32768
        assert dictionary.identifier_width() == 15
