"""Property tests: the fused fast path is bit-identical to the reference path.

The fast path (``GDTransform(fast=True)``, the default) rebuilds the GD hot
loop out of lane tables, prefix-syndrome corrections and bulk big-int XORs;
the reference path (``fast=False``) walks the original checked layers one
step at a time.  These tests drive both over randomized inputs — every
Hamming order in 3..8, a sweep of prefix widths, dictionary pressure,
batch and chunk-at-a-time APIs — and require exact equality of outputs
*and* statistics.  ``REPRO_GD_FAST=0`` turns the same fast path off
process-wide; the last test pins that wiring.
"""

import random

import pytest

from repro.core.bits import HAS_INT_BIT_COUNT, popcount, popcount_portable
from repro.core.codec import GDCodec
from repro.core.decoder import GDDecoder
from repro.core.dictionary import BasisDictionary, EvictionPolicy
from repro.core.encoder import GDEncoder
from repro.core.transform import GDTransform, fast_path_default
from repro.workloads import SyntheticSensorWorkload

ORDERS = range(3, 9)


def _random_buffer(transform, count, rng, clustered=False):
    """``count`` random chunks as one contiguous buffer."""
    code = transform.code
    chunks = []
    for _ in range(count):
        if clustered and rng.random() < 0.7:
            # codeword of a small basis pool plus a single-bit deviation —
            # the clustered shape GD is built for (exercises dict hits).
            basis = rng.randrange(8)
            body = code.encode(basis)
            if rng.random() < 0.8:
                body ^= 1 << rng.randrange(code.n)
            value = (rng.getrandbits(transform.prefix_bits) << code.n) | body
        else:
            value = rng.getrandbits(transform.chunk_bits)
        chunks.append(value.to_bytes(transform.chunk_bytes, "big"))
    return b"".join(chunks)


class TestTransformEquivalence:
    @pytest.mark.parametrize("order", ORDERS)
    def test_split_and_join_match_reference_across_prefix_widths(self, order):
        rng = random.Random(order)
        n = (1 << order) - 1
        for extra_bits in (0, 1, 2, 3, 7, 8, 13):
            chunk_bits = n + extra_bits
            fast = GDTransform(order=order, chunk_bits=chunk_bits, fast=True)
            reference = GDTransform(order=order, chunk_bits=chunk_bits, fast=False)
            assert fast.fast and not reference.fast
            data = _random_buffer(fast, 40, rng)
            fast_fields = fast.split_batch_fields(data)
            reference_fields = reference.split_batch_fields(data)
            assert fast_fields == reference_fields
            size = fast.chunk_bytes
            for index, (prefix, basis, deviation) in enumerate(fast_fields):
                piece = data[index * size : (index + 1) * size]
                assert fast.split_fields(piece) == (prefix, basis, deviation)
                assert reference.split_fields(piece) == (prefix, basis, deviation)
                rebuilt_fast = fast.join_fields_fast(prefix, basis, deviation)
                rebuilt_reference = reference.join_fields_fast(
                    prefix, basis, deviation
                )
                assert rebuilt_fast == rebuilt_reference
                assert rebuilt_fast.to_bytes(size, "big") == piece

    @pytest.mark.parametrize("order", ORDERS)
    def test_split_batch_parts_match_per_chunk_split(self, order):
        rng = random.Random(100 + order)
        transform = GDTransform(order=order)
        data = _random_buffer(transform, 25, rng)
        size = transform.chunk_bytes
        batch = transform.split_batch(data)
        singles = [
            transform.split(data[offset : offset + size])
            for offset in range(0, len(data), size)
        ]
        assert batch == singles

    def test_memoryview_and_bytearray_inputs_are_zero_copy_equivalent(self):
        transform = GDTransform(order=8)
        rng = random.Random(5)
        data = _random_buffer(transform, 30, rng)
        expected = transform.split_batch_fields(data)
        assert transform.split_batch_fields(bytearray(data)) == expected
        assert transform.split_batch_fields(memoryview(data)) == expected
        # a view into a larger buffer: the zero-copy slicing contract
        padded = b"\xff" * 32 + data + b"\xff" * 7
        view = memoryview(padded)[32 : 32 + len(data)]
        assert transform.split_batch_fields(view) == expected

    def test_bulk_parities_match_per_basis_parity(self):
        for order in ORDERS:
            code = GDTransform(order=order).code
            rng = random.Random(order * 7)
            bases = [rng.getrandbits(code.k) for _ in range(50)] + [0, (1 << code.k) - 1]
            bulk = code.parities_of_bases(bases)
            for basis, parity in zip(bases, bulk):
                assert parity == code.parity_of_basis(basis)


class TestPopcount:
    def test_matches_portable_implementation(self):
        rng = random.Random(3)
        for _ in range(200):
            value = rng.getrandbits(rng.randrange(1, 300))
            assert popcount(value) == popcount_portable(value)
        assert popcount(0) == 0

    @pytest.mark.skipif(not HAS_INT_BIT_COUNT, reason="int.bit_count requires 3.10+")
    def test_uses_bit_count_when_available(self):
        assert popcount((1 << 255) | 1) == 2


class TestCodecEquivalence:
    """Fast and reference codecs must emit identical records and bytes."""

    @pytest.mark.parametrize("mode", ["dynamic", "no_table"])
    @pytest.mark.parametrize("order", [3, 5, 8])
    def test_roundtrip_and_container_bit_identical(self, order, mode):
        rng = random.Random(order * 31)
        fast_codec = GDCodec(order=order, identifier_bits=6, mode=mode)
        data = _random_buffer(fast_codec.transform, 120, rng, clustered=True)

        # reference: same parameters, reference transform wired through
        reference_transform = GDTransform(order=order, fast=False)
        reference_encoder = GDEncoder(
            reference_transform,
            BasisDictionary(1 << 6) if mode != "no_table" else None,
            mode=mode,
            identifier_bits=6,
            alignment_padding_bits=0,
        )
        fast_result = fast_codec.compress(data)
        reference_records = reference_encoder.encode_buffer(data)
        assert list(fast_result.records) == reference_records
        assert (
            fast_codec.encoder.stats.as_dict() == reference_encoder.stats.as_dict()
        )

        container = fast_codec.clone().compress_to_container(data)
        restored = fast_codec.clone().decompress_container(container)
        assert restored == data

        reference_decoder = GDDecoder(
            reference_transform,
            BasisDictionary(1 << 6) if mode != "no_table" else None,
        )
        fast_decoder_codec = fast_codec.clone()
        fast_chunks = fast_decoder_codec.decoder.decode_batch(fast_result.records)
        reference_chunks = reference_decoder.decode_batch(fast_result.records)
        assert fast_chunks == reference_chunks
        assert (
            fast_decoder_codec.decoder.stats.as_dict()
            == reference_decoder.stats.as_dict()
        )

    def test_under_eviction_pressure_with_random_policy(self, monkeypatch):
        """Tiny dictionary + seeded random eviction: both paths stay lossless
        and produce byte-identical containers."""
        data = b"".join(
            SyntheticSensorWorkload(
                num_chunks=600, distinct_bases=40, seed=9
            ).chunks()
        )
        containers = {}
        for fast in (True, False):
            monkeypatch.setenv("REPRO_GD_FAST", "1" if fast else "0")
            codec = GDCodec(
                order=8,
                identifier_bits=4,
                eviction_policy=EvictionPolicy.RANDOM,
                eviction_seed=1234,
            )
            assert codec.transform.fast is fast
            assert codec.roundtrip(data) == data
            containers[fast] = codec.compress_to_container(data)
        assert containers[True] == containers[False]

    def test_static_mode_matches_reference(self, monkeypatch):
        workload = SyntheticSensorWorkload(num_chunks=300, distinct_bases=12, seed=4)
        data = b"".join(workload.chunks())
        preload = GDCodec(order=8, identifier_bits=8)
        bases = sorted(
            {basis for _p, basis, _d in preload.transform.split_batch_fields(data)}
        )
        containers = {}
        for fast in (True, False):
            monkeypatch.setenv("REPRO_GD_FAST", "1" if fast else "0")
            codec = GDCodec(
                order=8, identifier_bits=8, mode="static", static_bases=bases
            )
            assert codec.roundtrip(data) == data
            containers[fast] = codec.compress_to_container(data)
        assert containers[True] == containers[False]


class TestBatchApiEquivalence:
    def test_encode_chunks_buffer_equals_chunk_at_a_time(self):
        transform = GDTransform(order=8)
        data = _random_buffer(transform, 80, random.Random(17), clustered=True)
        size = transform.chunk_bytes

        batch_encoder = GDEncoder(
            GDTransform(order=8), BasisDictionary(64), identifier_bits=6
        )
        single_encoder = GDEncoder(
            GDTransform(order=8), BasisDictionary(64), identifier_bits=6
        )
        batch_records = batch_encoder.encode_chunks(data)
        single_records = [
            single_encoder.encode_chunk(data[offset : offset + size])
            for offset in range(0, len(data), size)
        ]
        assert batch_records == single_records
        assert batch_encoder.stats.as_dict() == single_encoder.stats.as_dict()

        # iterable-of-chunks form of encode_chunks
        iterable_encoder = GDEncoder(
            GDTransform(order=8), BasisDictionary(64), identifier_bits=6
        )
        pieces = [data[offset : offset + size] for offset in range(0, len(data), size)]
        assert iterable_encoder.encode_chunks(pieces) == batch_records

        batch_decoder = GDDecoder(GDTransform(order=8), BasisDictionary(64))
        single_decoder = GDDecoder(GDTransform(order=8), BasisDictionary(64))
        batch_chunks = batch_decoder.decode_batch(batch_records)
        single_chunks = [single_decoder.decode_record(r) for r in batch_records]
        assert batch_chunks == single_chunks
        assert batch_decoder.stats.as_dict() == single_decoder.stats.as_dict()
        assert b"".join(
            chunk.to_bytes(size, "big") for chunk in batch_chunks
        ) == data


class TestDictionaryHotCache:
    """The hot-entry cache must not change observable LRU behaviour."""

    class _ModelLru:
        """Straight-line reference model of the pre-cache dictionary."""

        def __init__(self, capacity):
            from collections import OrderedDict

            self.capacity = capacity
            self.map = OrderedDict()
            self.next_id = 0

        def lookup(self, key, touch=True):
            if key not in self.map:
                return None
            if touch:
                self.map.move_to_end(key)
            return self.map[key]

    def test_mixed_operations_match_reference_model(self):
        rng = random.Random(42)
        real = BasisDictionary(8, EvictionPolicy.LRU)
        model = self._ModelLru(8)

        # drive both with an op mix heavy on repeat lookups (the hot case)
        hot_key = None
        for _ in range(3000):
            action = rng.random()
            if action < 0.5 and hot_key is not None:
                key = hot_key
            else:
                key = rng.randrange(20)
                hot_key = key
            if action < 0.75:
                got = real.lookup(key, touch=True)
                expected = model.lookup(key, touch=True)
                assert got == expected
            elif action < 0.85:
                got = real.lookup(key, touch=False)
                expected = model.lookup(key, touch=False)
                assert got == expected
            else:
                identifier, _evicted = real.insert(key)
                if key in model.map:
                    model.map.move_to_end(key)
                    assert identifier == model.map[key]
                else:
                    if len(model.map) >= model.capacity:
                        _old, recycled = model.map.popitem(last=False)
                        model.map[key] = recycled
                    else:
                        model.map[key] = model.next_id
                        model.next_id += 1
                    assert identifier == model.map[key]
            assert list(real.snapshot().items()) == list(model.map.items())

    def test_touch_remove_and_clear_keep_cache_consistent(self):
        dictionary = BasisDictionary(4)
        for key in (1, 2, 3, 4):
            dictionary.insert(key)
        assert dictionary.lookup(4) == 3  # hot
        assert dictionary.remove(4) == 3  # removes the hot entry
        assert dictionary.lookup(4) is None
        dictionary.touch(1)
        assert dictionary.lookup(1) == 0
        dictionary.clear()
        assert dictionary.lookup(1) is None
        identifier, _ = dictionary.insert(9)
        assert identifier == 0
        assert dictionary.lookup(9) == 0

    def test_external_install_invalidates_hot_cache(self):
        """Regression: a control-plane install appends a new MRU entry, so a
        stale hot key must not skip its recency refresh afterwards."""
        dictionary = BasisDictionary(2, EvictionPolicy.LRU)
        dictionary.insert("A")  # hot = A
        dictionary.insert_with_identifier("X", 1)  # X is now the MRU entry
        assert dictionary.lookup("A", touch=True) == 0  # must refresh A
        _identifier, evicted = dictionary.insert("C")
        assert evicted == "X"  # A was touched after X, so X is the LRU

    def test_encoder_decoder_stay_lock_step_under_pressure(self):
        """Shared eviction decisions survive the hot cache (lossless check)."""
        data = b"".join(
            SyntheticSensorWorkload(num_chunks=800, distinct_bases=30, seed=3).chunks()
        )
        codec = GDCodec(order=8, identifier_bits=4)  # 16 slots for 30 bases
        assert codec.roundtrip(data) == data


class TestEnvironmentGate:
    def test_env_var_disables_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_GD_FAST", "0")
        assert fast_path_default() is False
        assert GDTransform(order=8).fast is False
        monkeypatch.setenv("REPRO_GD_FAST", "1")
        assert fast_path_default() is True
        assert GDTransform(order=8).fast is True
        monkeypatch.delenv("REPRO_GD_FAST")
        assert fast_path_default() is True
