"""Run the doctests of the public modules as part of the suite.

The docstring examples of the public API (replay, experiments, registry,
streaming engine, analysis) are executable documentation; this test keeps
them honest both locally and in the CI docs job.
"""

import doctest

import pytest

import repro.analysis.experiment
import repro.core.engine
import repro.experiments
import repro.experiments.runner
import repro.experiments.spec
import repro.registry
import repro.replay
import repro.replay.harness
import repro.replay.link
import repro.replay.metrics
import repro.replay.sources

#: (module, whether it is expected to carry at least one example).
MODULES = [
    (repro.analysis.experiment, True),
    (repro.core.engine, True),
    (repro.experiments, False),
    (repro.experiments.runner, False),
    (repro.experiments.spec, True),
    (repro.registry, True),
    (repro.replay, False),
    (repro.replay.harness, False),
    (repro.replay.link, False),
    (repro.replay.metrics, True),
    (repro.replay.sources, True),
]


@pytest.mark.parametrize(
    "module,has_examples",
    MODULES,
    ids=[module.__name__ for module, _ in MODULES],
)
def test_module_doctests(module, has_examples):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    if has_examples:
        assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
