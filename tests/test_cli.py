"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workloads import SyntheticSensorWorkload


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        args = parser.parse_args(["compress", "a", "b", "--order", "4"])
        assert args.order == 4


class TestCompressDecompress:
    def test_file_roundtrip(self, tmp_path, capsys):
        workload = SyntheticSensorWorkload(num_chunks=200, distinct_bases=5, seed=1)
        original = tmp_path / "payload.bin"
        original.write_bytes(b"".join(workload.chunks()))
        container = tmp_path / "payload.gdz"
        restored = tmp_path / "restored.bin"

        assert main(["compress", str(original), str(container)]) == 0
        assert container.exists()
        assert main(["decompress", str(container), str(restored)]) == 0
        assert restored.read_bytes() == original.read_bytes()
        output = capsys.readouterr().out
        assert "container ratio" in output
        assert "restored" in output

    def test_compressed_container_is_smaller_for_clustered_data(self, tmp_path):
        workload = SyntheticSensorWorkload(num_chunks=500, distinct_bases=4, seed=2)
        original = tmp_path / "payload.bin"
        original.write_bytes(b"".join(workload.chunks()))
        container = tmp_path / "payload.gdz"
        main(["compress", str(original), str(container)])
        assert container.stat().st_size < original.stat().st_size / 2


class TestCodecSelection:
    @pytest.mark.parametrize("codec", ["gd", "gzip", "dedup", "null"])
    def test_roundtrip_every_registered_codec(self, codec, tmp_path, capsys):
        workload = SyntheticSensorWorkload(num_chunks=300, distinct_bases=5, seed=3)
        original = tmp_path / "payload.bin"
        original.write_bytes(b"".join(workload.chunks()) + b"tail")  # odd length
        packed = tmp_path / "payload.packed"
        restored = tmp_path / "restored.bin"

        assert main(["compress", str(original), str(packed), "--codec", codec]) == 0
        # No --codec on decompress: the format is sniffed from the magic.
        assert main(["decompress", str(packed), str(restored)]) == 0
        assert restored.read_bytes() == original.read_bytes()
        output = capsys.readouterr().out
        assert f"codec {codec}" in output

    def test_small_block_size_streams_correctly(self, tmp_path):
        workload = SyntheticSensorWorkload(num_chunks=400, distinct_bases=4, seed=9)
        original = tmp_path / "payload.bin"
        original.write_bytes(b"".join(workload.chunks()))
        packed = tmp_path / "payload.gdz"
        restored = tmp_path / "restored.bin"
        assert main(
            ["compress", str(original), str(packed), "--block-size", "96"]
        ) == 0
        assert main(
            ["decompress", str(packed), str(restored), "--block-size", "7"]
        ) == 0
        assert restored.read_bytes() == original.read_bytes()

    def test_codecs_command_lists_registry(self, capsys):
        assert main(["codecs"]) == 0
        output = capsys.readouterr().out
        for name in ("gd", "gzip", "dedup", "null"):
            assert name in output

    def test_codecs_backends_reports_batch_crc_capability(self, capsys):
        assert main(["codecs", "--backends"]) == 0
        output = capsys.readouterr().out
        assert "crc batch" in output
        lines = {line.split()[0]: line for line in output.splitlines()
                 if line.strip() and line.split()[0] in ("pure", "numpy")}
        # The pure fold never advertises an accelerated batch-CRC kernel.
        assert "no" in lines["pure"]
        from repro.core.backends import get_backend

        numpy_backend = get_backend("numpy")
        expected = "yes" if numpy_backend.available() else "no"
        assert expected in lines["numpy"]


class TestTraceCommands:
    def test_generate_and_replay_synthetic(self, tmp_path, capsys):
        pcap = tmp_path / "trace.pcap"
        assert main(
            ["generate-trace", "synthetic", str(pcap), "--chunks", "300", "--bases", "6"]
        ) == 0
        assert pcap.exists()
        assert main(["replay", str(pcap), "--scenario", "static"]) == 0
        output = capsys.readouterr().out
        assert "compression ratio" in output
        assert "lossless" in output

    def test_generate_dns_trace(self, tmp_path, capsys):
        pcap = tmp_path / "dns.pcap"
        assert main(
            ["generate-trace", "dns", str(pcap), "--chunks", "200", "--names", "20"]
        ) == 0
        assert "chunk packets" in capsys.readouterr().out

    def test_replay_dynamic_scenario(self, tmp_path):
        pcap = tmp_path / "trace.pcap"
        main(["generate-trace", "synthetic", str(pcap), "--chunks", "200", "--bases", "4"])
        assert main(["replay", str(pcap), "--scenario", "dynamic",
                     "--packet-rate", "50000"]) == 0


class TestReportingCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "(255, 247)" in output
        assert "0x1D" in output

    def test_learning_delay(self, capsys):
        assert main(["learning-delay", "--repetitions", "2", "--packets", "3000"]) == 0
        output = capsys.readouterr().out
        assert "learning delay over 2 runs" in output
        assert "1.77" in output


class TestReplayEmulation:
    @pytest.fixture()
    def pcap(self, tmp_path):
        path = tmp_path / "trace.pcap"
        main(["generate-trace", "synthetic", str(path), "--chunks", "400", "--bases", "5"])
        return path

    def test_trace_flag_and_topology(self, pcap, capsys):
        assert main(
            ["replay", "--trace", str(pcap), "--topology", "encoder-link-decoder",
             "--scenario", "static"]
        ) == 0
        import re

        output = capsys.readouterr().out
        assert "compression ratio" in output
        assert "latency p99" in output
        assert re.search(r"lossless\s+yes", output)

    def test_trace_must_be_given_exactly_once(self, pcap, capsys):
        assert main(["replay"]) == 1
        assert main(["replay", str(pcap), "--trace", str(pcap)]) == 1
        err = capsys.readouterr().err
        assert "exactly once" in err

    def test_lossy_replay_counts_drops_without_corruption(self, pcap, capsys):
        assert main(
            ["replay", str(pcap), "--scenario", "static", "--loss", "0.05",
             "--seed", "3", "--counters"]
        ) == 0
        import re

        output = capsys.readouterr().out
        assert re.search(r"integrity intact\s+yes", output)
        assert "link0.dropped_loss" in output

    def test_multi_hop_and_back_to_back(self, pcap):
        assert main(
            ["replay", str(pcap), "--scenario", "static", "--hops", "2",
             "--pacing", "back-to-back", "--bandwidth-gbps", "10"]
        ) == 0

    def test_encoder_only_topology(self, pcap, capsys):
        assert main(
            ["replay", str(pcap), "--topology", "encoder-only",
             "--scenario", "no_table"]
        ) == 0
        assert "encoder-only" in capsys.readouterr().out

    def test_json_report(self, pcap, tmp_path):
        import json

        out = tmp_path / "report.json"
        assert main(
            ["replay", str(pcap), "--scenario", "static", "--json", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert data["integrity"]["lossless_in_order"] is True
        assert "metrics" in data

    def test_decoder_only_replays_processed_type2_trace(self, tmp_path, capsys):
        # Build a processed (all type-2) trace with an encoder-only harness,
        # then decode it from the CLI with a decoder-only topology.
        from repro.net.pcap import PcapPacket, write_pcap
        from repro.replay import ChunkTraceSource, FixedRatePacing, ReplayHarness

        trace = SyntheticSensorWorkload(
            num_chunks=300, distinct_bases=5, seed=8
        ).trace()
        encode = ReplayHarness(topology="encoder-only", scenario="no_table")
        encode.run(ChunkTraceSource(trace), FixedRatePacing(packet_rate=1e6))
        processed = tmp_path / "processed.pcap"
        write_pcap(
            processed,
            (PcapPacket(time, frame) for time, frame in encode.sink.arrivals),
        )

        assert main(
            ["replay", str(processed), "--topology", "decoder-only",
             "--scenario", "static", "--counters"]
        ) == 0
        import re

        output = capsys.readouterr().out
        assert re.search(r"decoder\.uncompressed_to_raw\s+300\b", output)


class TestReplayTopologyErrors:
    def test_unknown_topology_error_lists_valid_choices(self, tmp_path, capsys):
        trace = tmp_path / "t.pcap"
        main(["generate-trace", "synthetic", str(trace), "--chunks", "10"])
        capsys.readouterr()
        assert main(["replay", str(trace), "--topology", "ring"]) == 1
        err = capsys.readouterr().err
        # Not just the bad value: every valid choice plus the graph pointer.
        assert "'ring'" in err
        for valid in ("encoder-link-decoder", "encoder-only", "decoder-only"):
            assert valid in err
        assert "repro topology" in err


class TestTopologyCommand:
    def test_fan_in_preset_runs_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(
            ["topology", "--preset", "fan-in", "--senders", "3",
             "--scenario", "static", "--chunks", "200", "--bases", "3",
             "--json", str(out)]
        ) == 0
        output = capsys.readouterr().out
        assert "per-flow breakdown" in output
        assert "flow2" in output
        import json

        report = json.loads(out.read_text())
        assert report["chunks_sent"] == 600
        assert len(report["flows"]) == 3
        assert report["integrity"]["intact"] is True

    def test_spec_file_runs(self, tmp_path, capsys):
        import json

        from repro.topology import fan_in_topology

        path = tmp_path / "topo.json"
        spec = fan_in_topology(senders=2, chunks=100, bases=2, scenario="no_table")
        path.write_text(json.dumps(spec.as_dict()))
        assert main(["topology", "--spec", str(path), "--counters"]) == 0
        output = capsys.readouterr().out
        assert "counter breakdown" in output
        assert "shared.delivered" in output

    def test_unknown_preset_lists_presets(self, capsys):
        assert main(["topology", "--preset", "ring"]) == 1
        err = capsys.readouterr().err
        for name in ("linear", "fan-in", "paper-testbed"):
            assert name in err

    def test_spec_and_preset_are_mutually_exclusive(self, capsys):
        assert main(["topology"]) == 1
        assert main(["topology", "--preset", "linear", "--spec", "x.json"]) == 1
        err = capsys.readouterr().err
        assert "exactly once" in err

    def test_spec_validation_error_names_the_offender(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "bad",
            "nodes": [{"name": "a", "kind": "host"}],
            "links": [{"name": "l", "source": "a:0", "target": "ghost:0"}],
            "flows": [],
        }))
        assert main(["topology", "--spec", str(path)]) == 1
        err = capsys.readouterr().err
        assert "link 'l'" in err
        assert "ghost" in err

    def test_in_network_control_flag(self, capsys):
        assert main(
            ["topology", "--preset", "fan-in", "--senders", "2",
             "--chunks", "600", "--bases", "2", "--control", "in-network"]
        ) == 0
        capsys.readouterr()

    def test_workers_must_be_positive(self, capsys):
        assert main(
            ["topology", "--preset", "fan-in", "--workers", "0"]
        ) == 1
        err = capsys.readouterr().err
        assert "--workers must be a positive integer" in err
        assert main(
            ["topology", "--preset", "fan-in", "--workers", "-2"]
        ) == 1

    def test_workers_two_runs_and_stays_identical(self, tmp_path, capsys):
        reports = []
        for workers, name in (("1", "one.json"), ("2", "two.json")):
            out = tmp_path / name
            assert main(
                ["topology", "--preset", "rack-fan-in", "--racks", "2",
                 "--senders", "2", "--chunks", "100", "--bases", "3",
                 "--workers", workers, "--quiet", "--json", str(out)]
            ) == 0
            reports.append(out.read_text())
        capsys.readouterr()
        assert reports[0] == reports[1]

    def test_quiet_suppresses_shard_progress(self, capsys):
        assert main(
            ["topology", "--preset", "fan-in", "--senders", "2",
             "--chunks", "100", "--bases", "2"]
        ) == 0
        assert "shard encoder" in capsys.readouterr().out
        assert main(
            ["topology", "--preset", "fan-in", "--senders", "2",
             "--chunks", "100", "--bases", "2", "--quiet"]
        ) == 0
        assert "shard encoder" not in capsys.readouterr().out

    def test_senders_flag_rejected_for_non_fan_in_presets(self, capsys):
        assert main(
            ["topology", "--preset", "linear", "--senders", "4"]
        ) == 1
        err = capsys.readouterr().err
        assert "--senders only applies" in err

    def test_racks_flag_rejected_outside_rack_preset(self, capsys):
        assert main(
            ["topology", "--preset", "fan-in", "--racks", "2"]
        ) == 1
        err = capsys.readouterr().err
        assert "--racks only applies" in err

    def test_streaming_metrics_flag_runs(self, tmp_path, capsys):
        out = tmp_path / "streaming.json"
        assert main(
            ["topology", "--preset", "fan-in", "--senders", "2",
             "--chunks", "150", "--bases", "3", "--metrics", "streaming",
             "--quiet", "--json", str(out)]
        ) == 0
        capsys.readouterr()
        import json

        report = json.loads(out.read_text())
        assert report["integrity"]["intact"] is True
        assert report["latency"]["count"] == 300

    def test_lossy_spec_counts_drops_without_failing(self, tmp_path, capsys):
        import json
        import re

        from repro.topology import fan_in_topology

        spec = fan_in_topology(
            senders=2, chunks=400, bases=3, scenario="no_table", loss=0.05
        )
        path = tmp_path / "lossy.json"
        path.write_text(json.dumps(spec.as_dict()))
        # Loss on an impaired link is a counted failure mode: exit 0, but
        # the lost chunks show in the report.
        assert main(["topology", "--spec", str(path)]) == 0
        output = capsys.readouterr().out
        match = re.search(r"chunks lost\s+(\d+)", output)
        assert match and int(match.group(1)) > 0


class TestExperimentCommand:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-test",
                    "base": {
                        "workload": "synthetic",
                        "chunks": 120,
                        "bases": 4,
                        "seed": 2020,
                    },
                    "axes": {
                        "scenario": ["no_table", "static"],
                        "loss": [0.0, 0.02],
                    },
                }
            )
        )
        return path

    def test_sweep_runs_and_prints_aggregate(self, spec_path, capsys):
        assert main(["experiment", "--spec", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "experiment cli-test: 4 scenarios" in output
        assert "done loss=0.02/scenario=static" in output
        # One aggregate row per scenario, axis columns first.
        assert "loss  scenario" in output

    def test_sharded_sweep_matches_sequential_json(self, spec_path, tmp_path, capsys):
        sequential = tmp_path / "seq.json"
        sharded = tmp_path / "par.json"
        assert main(
            ["experiment", "--spec", str(spec_path), "--quiet",
             "--out", str(sequential)]
        ) == 0
        assert main(
            ["experiment", "--spec", str(spec_path), "--quiet",
             "--workers", "2", "--out", str(sharded)]
        ) == 0
        assert sequential.read_bytes() == sharded.read_bytes()
        capsys.readouterr()

    def test_group_by_and_csv(self, spec_path, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(
            ["experiment", "--spec", str(spec_path), "--quiet",
             "--group-by", "scenario", "--metric", "compression_ratio",
             "--csv", str(csv_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "compression_ratio by scenario" in output
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("loss,scenario,")
        assert len(lines) == 5

    def test_list_mode_does_not_run(self, spec_path, capsys):
        assert main(["experiment", "--spec", str(spec_path), "--list"]) == 0
        output = capsys.readouterr().out
        assert "4 scenarios" in output
        assert "done " not in output

    def test_missing_spec_errors(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["experiment", "--spec", str(missing)]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_invalid_axis_errors(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad", "axes": {"los": [0.1]}}))
        assert main(["experiment", "--spec", str(path)]) == 1
        assert "unknown axis" in capsys.readouterr().err

    def test_group_by_typo_fails_before_running(self, spec_path, capsys):
        assert main(
            ["experiment", "--spec", str(spec_path), "--group-by", "los"]
        ) == 1
        captured = capsys.readouterr()
        assert "unknown group-by axis" in captured.err
        # The sweep must not have started.
        assert "done " not in captured.out


class TestBenchCommand:
    def test_list_names_every_benchmark_file(self, capsys):
        assert main(["bench", "--list"]) == 0
        output = capsys.readouterr().out
        assert "hotpath" in output
        assert "fig4_throughput" in output

    def test_unknown_benchmark_errors(self, capsys):
        assert main(["bench", "no-such-bench", "--list"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_profile_prints_encode_and_decode_tables(self, capsys):
        assert main(["bench", "--profile", "--profile-chunks", "400"]) == 0
        output = capsys.readouterr().out
        assert "=== encode: GDCodec.compress" in output
        assert "=== decode: decompress_records" in output
        assert "cumulative" in output

    def test_profile_accepts_named_stages(self, capsys):
        assert main(
            ["bench", "--profile", "transform", "switch-encode",
             "--profile-chunks", "200"]
        ) == 0
        output = capsys.readouterr().out
        assert "=== transform: split_batch_fields" in output
        assert "=== switch-encode:" in output
        assert "=== encode: GDCodec.compress" not in output

    def test_profile_switch_decode_stage(self, capsys):
        assert main(
            ["bench", "--profile", "switch-decode", "--profile-chunks", "200"]
        ) == 0
        assert "=== switch-decode:" in capsys.readouterr().out

    def test_profile_batch_stages(self, capsys):
        assert main(
            ["bench", "--profile", "crc-batch", "encode-batch", "decode-batch",
             "--profile-chunks", "200"]
        ) == 0
        output = capsys.readouterr().out
        assert "=== crc-batch: compute_batch" in output
        assert "=== encode-batch: compress + pack_stream" in output
        assert "=== decode-batch: columnar decompress_container" in output

    def test_profile_batch_stages_honor_backend_pin(self, capsys):
        assert main(
            ["bench", "--profile", "crc-batch", "--profile-chunks", "200",
             "--backend", "pure"]
        ) == 0
        assert "backend pure" in capsys.readouterr().out

    def test_profile_stage_typo_names_offender_and_valid_stages(self, capsys):
        assert main(["bench", "--profile", "encod"]) == 1
        err = capsys.readouterr().err
        assert "unknown profile stage 'encod'" in err
        # The error lists every registered stage.
        for stage in ("encode", "decode", "transform", "crc-batch",
                      "encode-batch", "decode-batch", "switch-encode",
                      "switch-decode"):
            assert stage in err


class TestObservabilityFlags:
    """The shared --trace-out/--events-out/--snapshot-interval flags."""

    def _run_topology(self, tmp_path, name, extra):
        out = tmp_path / name
        assert main(
            ["topology", "--preset", "fan-in", "--chunks", "60",
             "--bases", "3", "--quiet", "--json", str(out), *extra]
        ) == 0
        return out.read_text()

    @pytest.mark.parametrize("workers", ["1", "2"])
    def test_report_bytes_identical_with_tracing_on_and_off(
        self, tmp_path, capsys, workers
    ):
        plain = self._run_topology(
            tmp_path, "plain.json", ["--workers", workers]
        )
        traced = self._run_topology(
            tmp_path, "traced.json",
            ["--workers", workers,
             "--trace-out", str(tmp_path / "trace.json"),
             "--events-out", str(tmp_path / "events.jsonl"),
             "--snapshot-interval", "0.00001"],
        )
        capsys.readouterr()
        assert traced == plain
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "events.jsonl").exists()

    def test_trace_summarize_reads_both_formats(self, tmp_path, capsys):
        self._run_topology(
            tmp_path, "r.json",
            ["--trace-out", str(tmp_path / "trace.json"),
             "--events-out", str(tmp_path / "events.jsonl")],
        )
        capsys.readouterr()
        assert main(["trace", "summarize", str(tmp_path / "events.jsonl")]) == 0
        from_jsonl = capsys.readouterr().out
        assert main(["trace", "summarize", str(tmp_path / "trace.json")]) == 0
        from_chrome = capsys.readouterr().out
        for output in (from_jsonl, from_chrome):
            assert "encode" in output
            assert "p99" in output
            assert "slowest" in output

    def test_trace_summarize_missing_file_errors(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_snapshot_interval_requires_an_output(self, capsys):
        assert main(
            ["topology", "--preset", "fan-in", "--chunks", "20",
             "--snapshot-interval", "0.001"]
        ) == 1
        err = capsys.readouterr().err
        assert "--snapshot-interval needs --trace-out or --events-out" in err

    def test_snapshot_interval_must_be_positive(self, tmp_path, capsys):
        assert main(
            ["topology", "--preset", "fan-in", "--chunks", "20",
             "--trace-out", str(tmp_path / "t.json"),
             "--snapshot-interval", "-1"]
        ) == 1
        assert "--snapshot-interval must be positive" in capsys.readouterr().err

    def test_replay_records_a_trace(self, tmp_path, capsys):
        trace = tmp_path / "chunks.pcap"
        assert main(
            ["generate-trace", "synthetic", str(trace), "--chunks", "120"]
        ) == 0
        events_out = tmp_path / "events.jsonl"
        assert main(
            ["replay", str(trace), "--events-out", str(events_out)]
        ) == 0
        capsys.readouterr()
        from repro.obs import read_events

        names = {event["name"] for event in read_events(str(events_out))}
        assert {"flow.inject", "link.serialize", "flow.arrive"} <= names

    def test_experiment_tracing_requires_sequential_workers(
        self, tmp_path, capsys
    ):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "t", "base": {"chunks": 50}, '
            '"axes": {"seed": [1, 2]}}'
        )
        assert main(
            ["experiment", "--spec", str(spec), "--workers", "2",
             "--events-out", str(tmp_path / "e.jsonl")]
        ) == 1
        assert "--workers 1" in capsys.readouterr().err

    def test_experiment_sequential_tracing_works(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "t", "base": {"chunks": 50}, '
            '"axes": {"seed": [1, 2]}}'
        )
        events_out = tmp_path / "e.jsonl"
        assert main(
            ["experiment", "--spec", str(spec), "--quiet",
             "--events-out", str(events_out)]
        ) == 0
        capsys.readouterr()
        assert events_out.exists()

    def test_tracer_is_disabled_after_a_run(self, tmp_path, capsys):
        self._run_topology(
            tmp_path, "r.json", ["--trace-out", str(tmp_path / "t.json")]
        )
        capsys.readouterr()
        from repro import obs

        assert not obs.TRACER.enabled
