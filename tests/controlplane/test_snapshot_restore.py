"""Property tests: snapshot → restore → resume is bit-identical.

Crash recovery is only trustworthy if a restored component is
*indistinguishable* from one that never stopped.  These tests drive the
codec pair and the control plane through seeded random interleavings of
installs, evictions and restarts, cut the run at a random point, round-trip
every snapshot through JSON (the canonical serialisable form), resume in
freshly constructed objects — and require exact equality with the
uninterrupted run: record bytes, decoded chunks, statistics and the final
snapshot itself.

The codec tests run at every Hamming order m in 3..8 and under both
``REPRO_GD_FAST`` settings, so the fused fast path and the reference path
are each proven to resume exactly.
"""

import json
import random
from functools import partial

import pytest

from repro.controlplane.manager import LEARN_DIGEST, ZipLineControlPlane
from repro.core.decoder import GDDecoder
from repro.core.dictionary import BasisDictionary
from repro.core.encoder import GDEncoder
from repro.core.transform import GDTransform
from repro.sim import Simulator
from repro.tofino.digest import DigestEngine

ORDERS = range(3, 9)

#: Dictionary capacity small enough that every run crosses eviction
#: pressure, so recency order is load-bearing across the snapshot cut.
DICT_CAPACITY = 8


def _clustered_chunks(transform, count, rng):
    """Chunks drawn from a small basis pool so the dictionary is exercised."""
    code = transform.code
    chunks = []
    for _ in range(count):
        if rng.random() < 0.8:
            basis = rng.randrange(16)  # 2× the dictionary capacity: churn
            body = code.encode(basis)
            if rng.random() < 0.7:
                body ^= 1 << rng.randrange(code.n)
            value = (rng.getrandbits(transform.prefix_bits) << code.n) | body
        else:
            value = rng.getrandbits(transform.chunk_bits)
        chunks.append(value.to_bytes(transform.chunk_bytes, "big"))
    return chunks


def _pair(transform):
    """A dynamically learning encoder/decoder pair over tiny dictionaries."""
    encoder = GDEncoder(
        transform, BasisDictionary(DICT_CAPACITY), mode="dynamic"
    )
    decoder = GDDecoder(transform, BasisDictionary(DICT_CAPACITY))
    return encoder, decoder


def _json_roundtrip(state):
    """Prove the snapshot is canonically serialisable, then hand it back."""
    first = json.dumps(state, sort_keys=True)
    assert json.dumps(json.loads(first), sort_keys=True) == first
    return json.loads(first)


class TestCodecSnapshotResume:
    @pytest.mark.parametrize("fast_env", ["0", "1"])
    @pytest.mark.parametrize("order", ORDERS)
    def test_resume_is_bit_identical_to_uninterrupted_run(
        self, order, fast_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GD_FAST", fast_env)
        transform = GDTransform(order=order)
        assert transform.fast is (fast_env == "1")
        rng = random.Random(1000 * order + int(fast_env))
        chunks = _clustered_chunks(transform, 120, rng)
        cut = rng.randrange(20, 100)

        # Reference: one pair runs the whole trace uninterrupted.
        ref_encoder, ref_decoder = _pair(transform)
        ref_records = [ref_encoder.encode_chunk(chunk) for chunk in chunks]
        ref_output = [ref_decoder.decode_record(record) for record in ref_records]

        # Interrupted: encode/decode up to the cut, snapshot both sides
        # through JSON, resume in freshly built objects.
        encoder_a, decoder_a = _pair(transform)
        records = [encoder_a.encode_chunk(chunk) for chunk in chunks[:cut]]
        output = [decoder_a.decode_record(record) for record in records]
        encoder_state = _json_roundtrip(encoder_a.snapshot_state())
        decoder_state = _json_roundtrip(decoder_a.snapshot_state())
        encoder_b, decoder_b = _pair(transform)
        encoder_b.restore_state(encoder_state)
        decoder_b.restore_state(decoder_state)
        records += [encoder_b.encode_chunk(chunk) for chunk in chunks[cut:]]
        output += [decoder_b.decode_record(record) for record in records[cut:]]

        assert [r.to_bytes() for r in records] == [r.to_bytes() for r in ref_records]
        assert output == ref_output
        assert encoder_b.stats == ref_encoder.stats
        assert decoder_b.stats == ref_decoder.stats
        # The resumed pair is indistinguishable going forward too: its
        # final snapshot equals the uninterrupted pair's.
        assert json.dumps(encoder_b.snapshot_state(), sort_keys=True) == json.dumps(
            ref_encoder.snapshot_state(), sort_keys=True
        )
        assert json.dumps(decoder_b.snapshot_state(), sort_keys=True) == json.dumps(
            ref_decoder.snapshot_state(), sort_keys=True
        )

    @pytest.mark.parametrize("order", ORDERS)
    def test_decoder_restart_restores_from_snapshot_mid_trace(self, order):
        # A decoder that loses its dictionary mid-trace and restores from
        # the last snapshot decodes the rest of the stream exactly.
        transform = GDTransform(order=order)
        rng = random.Random(77 + order)
        chunks = _clustered_chunks(transform, 80, rng)
        encoder, decoder = _pair(transform)
        records = [encoder.encode_chunk(chunk) for chunk in chunks]
        expected = [int.from_bytes(chunk, "big") for chunk in chunks]

        cut = rng.randrange(20, 60)
        output = [decoder.decode_record(record) for record in records[:cut]]
        state = _json_roundtrip(decoder.snapshot_state())
        _, restarted = _pair(transform)  # fresh decoder: the restart
        restarted.restore_state(state)
        output += [restarted.decode_record(record) for record in records[cut:]]

        assert output == expected
        assert restarted.stats.unknown_identifiers == 0


def _build_plane(simulator, identifier_bits=3):
    """A control plane over dict-backed fake switches (mirror checking)."""

    class _EncoderSwitch:
        def __init__(self):
            self.mappings = {}

        def install_basis_mapping(self, basis, identifier, ttl=None):
            self.mappings[basis] = identifier

        def remove_basis_mapping(self, basis):
            self.mappings.pop(basis, None)

        def expired_bases(self, now):
            return []

    class _DecoderSwitch:
        def __init__(self):
            self.mappings = {}

        def install_identifier_mapping(self, identifier, basis):
            self.mappings[identifier] = basis

        def remove_identifier_mapping(self, identifier):
            self.mappings.pop(identifier, None)

    engine = DigestEngine(simulator, delivery_latency=0.9e-3)
    encoder, decoder = _EncoderSwitch(), _DecoderSwitch()
    manager = ZipLineControlPlane(
        digest_engine=engine,
        encoder_switch=encoder,
        decoder_switch=decoder,
        simulator=simulator,
        identifier_bits=identifier_bits,
        seed=0,
    )
    return engine, encoder, decoder, manager


class TestControlPlaneInterleavings:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_install_evict_restart_interleavings_keep_exact_mirrors(
        self, seed
    ):
        # Seeded random schedule of learn digests, eviction storms, decoder
        # restarts (clear + resync) and live snapshot/restore cycles.  The
        # identifier space (2**3) is far smaller than the basis population,
        # so installs race recycling constantly.  Invariant at the end:
        # both switches are exact mirrors of the pool, every in-flight
        # install either landed or was rolled back.
        rng = random.Random(seed)
        simulator = Simulator()
        engine, encoder, decoder, manager = _build_plane(simulator)

        def restart_decoder():
            decoder.mappings.clear()
            manager.resync_decoder()

        def snapshot_cycle():
            manager.restore_state(_json_roundtrip(manager.snapshot_state()))

        time = 0.0
        scheduled_restarts = 0
        for _ in range(60):
            time += rng.uniform(0.1e-3, 0.8e-3)
            op = rng.choice(["digest", "digest", "digest", "evict", "restart", "snapshot"])
            if op == "digest":
                simulator.schedule_at(
                    time,
                    partial(engine.emit, LEARN_DIGEST, {"basis": rng.randrange(40)}),
                )
            elif op == "evict":
                simulator.schedule_at(
                    time, partial(manager.force_evict, rng.randint(1, 3))
                )
            elif op == "restart":
                scheduled_restarts += 1
                simulator.schedule_at(time, restart_decoder)
            else:
                simulator.schedule_at(time, snapshot_cycle)
        simulator.run()

        bindings = manager.pool.bindings()
        assert decoder.mappings == bindings
        assert encoder.mappings == {
            basis: identifier for identifier, basis in bindings.items()
        }
        assert manager.pending_installs == 0
        assert manager.stats.resyncs == scheduled_restarts
        # The churn was real: the pool recycled and the run learned things.
        assert manager.stats.mappings_learned > 0

    def test_restored_manager_resumes_identically(self):
        # Drive two managers with the same digest schedule; snapshot one
        # halfway, restore into a *fresh* manager, finish both — the final
        # snapshots and switch mirrors must be identical.
        bases_first = [1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 3]
        bases_second = [10, 11, 2, 12, 5, 13, 1]

        def drive(engine, simulator, bases, start):
            for offset, basis in enumerate(bases):
                simulator.schedule_at(
                    start + offset * 2e-3,
                    partial(engine.emit, LEARN_DIGEST, {"basis": basis}),
                )
            simulator.run()
            return start + len(bases) * 2e-3

        sim_ref = Simulator()
        engine_ref, enc_ref, dec_ref, manager_ref = _build_plane(sim_ref)
        after = drive(engine_ref, sim_ref, bases_first, 0.0)
        drive(engine_ref, sim_ref, bases_second, after)

        sim_a = Simulator()
        engine_a, enc_a, dec_a, manager_a = _build_plane(sim_a)
        after = drive(engine_a, sim_a, bases_first, 0.0)
        state = _json_roundtrip(manager_a.snapshot_state())

        sim_b = Simulator()
        sim_b.advance_to(after)
        engine_b, enc_b, dec_b, manager_b = _build_plane(sim_b)
        manager_b.restore_state(state)
        # The restarted controller re-primes its switches from the pool.
        for identifier, basis in manager_b.pool.bindings().items():
            dec_b.mappings[identifier] = basis
            enc_b.mappings[basis] = identifier
        drive(engine_b, sim_b, bases_second, after)

        assert json.dumps(manager_b.snapshot_state(), sort_keys=True) == json.dumps(
            manager_ref.snapshot_state(), sort_keys=True
        )
        assert dec_b.mappings == dec_ref.mappings
        assert enc_b.mappings == enc_ref.mappings
