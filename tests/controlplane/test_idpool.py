"""Tests for the identifier pool."""

import pytest

from repro.controlplane.idpool import IdentifierPool
from repro.exceptions import ControlPlaneError


class TestAllocation:
    def test_allocates_lowest_free_identifier_first(self):
        pool = IdentifierPool(4)
        assert pool.allocate("a").identifier == 0
        assert pool.allocate("b").identifier == 1
        assert pool.free_count == 2
        assert pool.bound_count == 2

    def test_reallocating_same_basis_returns_existing(self):
        pool = IdentifierPool(4)
        first = pool.allocate("a")
        second = pool.allocate("a")
        assert first.identifier == second.identifier
        assert not second.recycled
        assert pool.bound_count == 1

    def test_lru_recycling_when_exhausted(self):
        pool = IdentifierPool(2)
        pool.allocate("a")
        pool.allocate("b")
        pool.touch_basis("a")  # "b" becomes the least recently used
        allocation = pool.allocate("c")
        assert allocation.recycled
        assert allocation.evicted_basis == "b"
        assert pool.identifier_for("b") is None
        assert pool.identifier_for("a") is not None
        assert pool.recycles == 1

    def test_touch_by_identifier(self):
        pool = IdentifierPool(2)
        a = pool.allocate("a").identifier
        pool.allocate("b")
        pool.touch(a)
        assert pool.allocate("c").evicted_basis == "b"

    def test_release_returns_identifier_to_pool(self):
        pool = IdentifierPool(2)
        identifier = pool.allocate("a").identifier
        assert pool.release(identifier) == "a"
        assert pool.free_count == 2
        assert pool.release(identifier) is None

    def test_least_recently_used_peek(self):
        pool = IdentifierPool(4)
        assert pool.least_recently_used() is None
        pool.allocate("a")
        pool.allocate("b")
        assert pool.least_recently_used()[1] == "a"

    def test_lookups(self):
        pool = IdentifierPool(4)
        identifier = pool.allocate("a").identifier
        assert pool.basis_for(identifier) == "a"
        assert pool.identifier_for("a") == identifier
        assert pool.basis_for(3) is None
        assert pool.bindings() == {identifier: "a"}

    def test_bounds(self):
        pool = IdentifierPool(4)
        with pytest.raises(ControlPlaneError):
            pool.basis_for(4)
        with pytest.raises(ControlPlaneError):
            pool.touch(-1)
        with pytest.raises(ControlPlaneError):
            IdentifierPool(0)

    def test_clear(self):
        pool = IdentifierPool(4)
        pool.allocate("a")
        pool.clear()
        assert pool.bound_count == 0
        assert pool.free_count == 4

    def test_paper_capacity(self):
        pool = IdentifierPool(1 << 15)
        assert pool.capacity == 32768

    def test_allocation_counter(self):
        pool = IdentifierPool(4)
        pool.allocate("a")
        pool.allocate("a")
        pool.allocate("b")
        assert pool.allocations == 2
