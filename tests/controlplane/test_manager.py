"""Tests for the ZipLine control plane manager."""

import pytest

from repro.controlplane.events import (
    DecoderMappingInstalled,
    DigestIgnored,
    EncoderMappingInstalled,
    MappingEvicted,
)
from repro.controlplane.manager import (
    LEARN_DIGEST,
    ControlPlaneTimings,
    ZipLineControlPlane,
)
from repro.exceptions import ControlPlaneError
from repro.sim import Simulator
from repro.tofino.digest import DigestEngine


class FakeEncoderSwitch:
    """Minimal stand-in implementing the encoder-side control interface."""

    def __init__(self):
        self.mappings = {}
        self.install_times = []
        self.expired = []

    def install_basis_mapping(self, basis, identifier, ttl=None):
        self.mappings[basis] = identifier

    def remove_basis_mapping(self, basis):
        self.mappings.pop(basis, None)

    def expired_bases(self, now):
        return list(self.expired)


class FakeDecoderSwitch:
    """Minimal stand-in implementing the decoder-side control interface."""

    def __init__(self):
        self.mappings = {}

    def install_identifier_mapping(self, identifier, basis):
        self.mappings[identifier] = basis

    def remove_identifier_mapping(self, identifier):
        self.mappings.pop(identifier, None)


def build(simulator=None, identifier_bits=4, entry_ttl=None, timings=None,
          digest_latency=0.9e-3):
    engine = DigestEngine(simulator, delivery_latency=digest_latency)
    encoder = FakeEncoderSwitch()
    decoder = FakeDecoderSwitch()
    manager = ZipLineControlPlane(
        digest_engine=engine,
        encoder_switch=encoder,
        decoder_switch=decoder,
        simulator=simulator,
        identifier_bits=identifier_bits,
        entry_ttl=entry_ttl,
        timings=timings,
        seed=0,
    )
    return engine, encoder, decoder, manager


class TestLearning:
    def test_digest_learns_a_mapping_synchronously(self):
        engine, encoder, decoder, manager = build(simulator=None)
        engine.emit(LEARN_DIGEST, {"basis": 0xAB})
        assert encoder.mappings == {0xAB: 0}
        assert decoder.mappings == {0: 0xAB}
        assert manager.stats.mappings_learned == 1

    def test_decoder_mapping_installed_before_encoder_mapping(self):
        simulator = Simulator()
        engine, encoder, decoder, manager = build(simulator=simulator)
        engine.emit(LEARN_DIGEST, {"basis": 7})
        simulator.run()
        decoder_event = manager.events.last_of_type(DecoderMappingInstalled)
        encoder_event = manager.events.last_of_type(EncoderMappingInstalled)
        assert decoder_event is not None and encoder_event is not None
        assert decoder_event.time < encoder_event.time

    def test_learning_latency_matches_paper(self):
        # digest (0.9 ms) + processing (0.27 ms) + 2 table writes (0.3 ms
        # each) = 1.77 ms end to end, the paper's measured value.
        simulator = Simulator()
        timings = ControlPlaneTimings(jitter_fraction=0.0)
        engine, encoder, decoder, manager = build(simulator=simulator, timings=timings)
        engine.emit(LEARN_DIGEST, {"basis": 7})
        simulator.run()
        event = manager.events.last_of_type(EncoderMappingInstalled)
        assert event.time == pytest.approx(1.77e-3, rel=1e-6)

    def test_duplicate_digests_are_ignored(self):
        simulator = Simulator()
        engine, encoder, decoder, manager = build(simulator=simulator)
        engine.emit(LEARN_DIGEST, {"basis": 7})
        engine.emit(LEARN_DIGEST, {"basis": 7})  # while the first is pending
        simulator.run()
        engine.emit(LEARN_DIGEST, {"basis": 7})  # after it is installed
        simulator.run()
        assert manager.stats.mappings_learned == 1
        assert manager.stats.digests_ignored == 2
        reasons = {event.reason for event in manager.events.of_type(DigestIgnored)}
        assert reasons == {"install pending", "already mapped"}

    def test_missing_basis_field_rejected(self):
        engine, encoder, decoder, manager = build(simulator=None)
        with pytest.raises(ControlPlaneError):
            engine.emit(LEARN_DIGEST, {"wrong": 1})

    def test_invalid_identifier_bits(self):
        with pytest.raises(ControlPlaneError):
            ZipLineControlPlane(DigestEngine(), identifier_bits=0)


class TestRecycling:
    def test_lru_recycling_removes_mappings_from_both_switches(self):
        engine, encoder, decoder, manager = build(simulator=None, identifier_bits=1)
        engine.emit(LEARN_DIGEST, {"basis": 1})
        engine.emit(LEARN_DIGEST, {"basis": 2})
        engine.emit(LEARN_DIGEST, {"basis": 3})
        assert manager.stats.mappings_recycled == 1
        assert 1 not in encoder.mappings  # basis 1 was the LRU binding
        assert len(encoder.mappings) == 2
        assert len(decoder.mappings) == 2
        evicted = manager.events.of_type(MappingEvicted)
        assert evicted and evicted[0].basis == 1

    def test_idle_timeout_sweep_releases_mappings(self):
        simulator = Simulator()
        timings = ControlPlaneTimings(idle_poll_interval=10e-3, jitter_fraction=0.0)
        engine, encoder, decoder, manager = build(
            simulator=simulator, entry_ttl=1.0, timings=timings
        )
        engine.emit(LEARN_DIGEST, {"basis": 5})
        simulator.run(until=5e-3)
        assert 5 in encoder.mappings
        encoder.expired = [5]
        simulator.run(until=30e-3)
        assert manager.stats.mappings_expired >= 1
        assert 5 not in encoder.mappings
        assert manager.pool.identifier_for(5) is None


class TestStaticPreload:
    def test_preload_installs_both_directions_immediately(self):
        engine, encoder, decoder, manager = build(simulator=None)
        count = manager.preload_static_mappings([10, 11, 12, 10])
        assert count == 3
        assert set(encoder.mappings) == {10, 11, 12}
        assert set(decoder.mappings.values()) == {10, 11, 12}

    def test_preload_skips_already_mapped(self):
        engine, encoder, decoder, manager = build(simulator=None)
        manager.preload_static_mappings([10])
        assert manager.preload_static_mappings([10, 11]) == 1


class TestTimings:
    def test_jitter_bounds(self):
        import random

        timings = ControlPlaneTimings(jitter_fraction=0.1)
        rng = random.Random(0)
        for _ in range(100):
            value = timings.jittered(1e-3, rng)
            assert 0.9e-3 <= value <= 1.1e-3

    def test_zero_jitter(self):
        import random

        timings = ControlPlaneTimings(jitter_fraction=0.0)
        assert timings.jittered(1e-3, random.Random(0)) == 1e-3

    def test_stats_dict(self):
        engine, encoder, decoder, manager = build(simulator=None)
        engine.emit(LEARN_DIGEST, {"basis": 3})
        stats = manager.stats.as_dict()
        assert stats["mappings_learned"] == 1
        assert stats["digests_received"] == 1
