"""Tests for the ZipLine decoder switch program."""

import pytest

from repro.core.records import CompressedRecord, UncompressedRecord
from repro.core.transform import GDTransform
from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.mac import MacAddress
from repro.net.packets import ZipLinePacketCodec
from repro.zipline.decoder_switch import ZipLineDecoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")


@pytest.fixture()
def decoder():
    return ZipLineDecoderSwitch(
        transform=GDTransform(order=8),
        identifier_bits=15,
        forwarding={0: 1},
    )


@pytest.fixture()
def codec():
    return ZipLinePacketCodec(GDTransform(order=8), identifier_bits=15)


def capture(decoder):
    outputs = []
    decoder.switch.attach_port(1, lambda data, time: outputs.append(data))
    return outputs


class TestDecoding:
    def test_type2_restores_the_original_chunk(self, decoder, codec, rng):
        outputs = capture(decoder)
        transform = decoder.transform
        chunk = rng.getrandbits(256).to_bytes(32, "big")
        parts = transform.split(chunk)
        record = UncompressedRecord(
            prefix=parts.prefix, basis=parts.basis, deviation=parts.deviation,
            prefix_bits=parts.prefix_bits, basis_bits=parts.basis_bits,
            deviation_bits=parts.deviation_bits, alignment_padding_bits=8,
        )
        decoder.receive(codec.build_frame(record, DST, SRC).to_bytes(), ingress_port=0)
        frame = EthernetFrame.from_bytes(outputs[0])
        assert frame.ethertype == ETHERTYPE_RAW_CHUNK
        assert frame.payload == chunk
        assert decoder.counters.read("uncompressed_to_raw").packets == 1

    def test_type3_restores_the_original_chunk(self, decoder, codec, rng):
        outputs = capture(decoder)
        transform = decoder.transform
        chunk = rng.getrandbits(256).to_bytes(32, "big")
        parts = transform.split(chunk)
        decoder.install_identifier_mapping(500, parts.basis)
        record = CompressedRecord(
            prefix=parts.prefix, identifier=500, deviation=parts.deviation,
            prefix_bits=parts.prefix_bits, identifier_bits=15,
            deviation_bits=parts.deviation_bits,
        )
        decoder.receive(codec.build_frame(record, DST, SRC).to_bytes(), ingress_port=0)
        frame = EthernetFrame.from_bytes(outputs[0])
        assert frame.ethertype == ETHERTYPE_RAW_CHUNK
        assert frame.payload == chunk
        assert decoder.counters.read("compressed_to_raw").packets == 1

    def test_unknown_identifier_drops_the_packet(self, decoder, codec):
        outputs = capture(decoder)
        record = CompressedRecord(
            prefix=0, identifier=123, deviation=0,
            prefix_bits=1, identifier_bits=15, deviation_bits=8,
        )
        result = decoder.receive(
            codec.build_frame(record, DST, SRC).to_bytes(), ingress_port=0
        )
        assert result.dropped
        assert outputs == []
        assert decoder.counters.read("unknown_identifier").packets == 1

    def test_other_traffic_passes_through(self, decoder):
        outputs = capture(decoder)
        raw = EthernetFrame(DST, SRC, EtherType.IPV4, b"hello").to_bytes()
        decoder.receive(raw, ingress_port=0)
        assert outputs == [raw]
        assert decoder.counters.read("passthrough_other").packets == 1

    def test_no_recirculation(self, decoder, codec, rng):
        parts = decoder.transform.split(rng.getrandbits(256).to_bytes(32, "big"))
        record = UncompressedRecord(
            prefix=parts.prefix, basis=parts.basis, deviation=parts.deviation,
            prefix_bits=parts.prefix_bits, basis_bits=parts.basis_bits,
            deviation_bits=parts.deviation_bits, alignment_padding_bits=8,
        )
        for _ in range(10):
            decoder.receive(codec.build_frame(record, DST, SRC).to_bytes(), 0)
        assert not decoder.pipeline.uses_forbidden_features


class TestControlPlaneInterface:
    def test_install_replace_remove(self, decoder):
        decoder.install_identifier_mapping(1, 0xAAA)
        assert decoder.identifier_table.get_entry(1).params["basis"] == 0xAAA
        decoder.install_identifier_mapping(1, 0xBBB)
        assert decoder.identifier_table.get_entry(1).params["basis"] == 0xBBB
        decoder.remove_identifier_mapping(1)
        assert decoder.identifier_table.get_entry(1) is None
        decoder.remove_identifier_mapping(1)  # idempotent

    def test_forwarding_validation(self, decoder):
        decoder.set_forwarding(5, 6)
        with pytest.raises(Exception):
            decoder.set_forwarding(1, -2)


class TestEncoderDecoderSymmetry:
    def test_every_syndrome_roundtrips_through_both_programs(self, rng):
        """Exhaustively check the syndrome path with a small order."""
        from repro.zipline.encoder_switch import ZipLineEncoderSwitch

        transform = GDTransform(order=4)
        encoder = ZipLineEncoderSwitch(transform=transform, identifier_bits=6)
        decoder = ZipLineDecoderSwitch(transform=transform, identifier_bits=6)
        encoder_out = []
        decoder_out = []
        encoder.switch.attach_port(1, lambda data, time: encoder_out.append(data))
        decoder.switch.attach_port(1, lambda data, time: decoder_out.append(data))

        for value in range(0, 1 << 16, 97):
            chunk = value.to_bytes(2, "big")
            frame = EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, chunk).to_bytes()
            encoder.receive(frame, ingress_port=0)
            decoder.receive(encoder_out[-1], ingress_port=0)
            restored = EthernetFrame.from_bytes(decoder_out[-1]).payload
            assert restored == chunk
