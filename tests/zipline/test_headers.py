"""Tests for the ZipLine header set."""

import pytest

from repro.core.transform import GDTransform
from repro.exceptions import PacketError
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK, ZipLineHeaderSet


class TestPaperHeaderSet:
    @pytest.fixture(scope="class")
    def headers(self):
        return ZipLineHeaderSet.build(GDTransform(order=8), identifier_bits=15)

    def test_payload_sizes_match_the_paper(self, headers):
        assert headers.chunk_payload_bytes == 32
        assert headers.type2_payload_bytes == 33   # the 1.03 overhead
        assert headers.type3_payload_bytes == 3    # the 0.09 compressed size

    def test_field_widths(self, headers):
        assert headers.prefix_bits == 1
        assert headers.basis_bits == 247
        assert headers.syndrome_bits == 8
        assert headers.identifier_bits == 15
        assert headers.type2_padding_bits == 8
        assert headers.type3_padding_bits == 0

    def test_header_types_are_byte_aligned(self, headers):
        assert headers.chunk.total_bits % 8 == 0
        assert headers.type2.total_bits % 8 == 0
        assert headers.type3.total_bits % 8 == 0
        assert headers.ethernet.total_bytes == 14

    def test_describe(self, headers):
        text = headers.describe()
        assert "type2=33B" in text
        assert "type3=3B" in text

    def test_raw_chunk_ethertype_is_experimental(self):
        assert ETHERTYPE_RAW_CHUNK == 0x88B4


class TestOtherOrders:
    def test_order_4_layout(self):
        headers = ZipLineHeaderSet.build(GDTransform(order=4), identifier_bits=6)
        assert headers.chunk_payload_bytes == 2
        # 1 + 11 + 4 = 16 bits, already aligned -> one modelled padding byte.
        assert headers.type2_payload_bytes == 3
        # 1 + 6 + 4 = 11 bits -> padded to 16 bits.
        assert headers.type3_payload_bytes == 2
        assert headers.type3_padding_bits == 5

    def test_explicit_type2_padding(self):
        headers = ZipLineHeaderSet.build(
            GDTransform(order=8), identifier_bits=15, type2_padding_bits=0
        )
        assert headers.type2_payload_bytes == 32

    def test_unalignable_padding_rejected(self):
        with pytest.raises(PacketError):
            ZipLineHeaderSet.build(
                GDTransform(order=8), identifier_bits=15, type2_padding_bits=3
            )

    def test_invalid_identifier_bits(self):
        with pytest.raises(PacketError):
            ZipLineHeaderSet.build(GDTransform(order=8), identifier_bits=0)
