"""Tests for the end-to-end ZipLine deployment."""

import pytest

from repro.core.transform import GDTransform
from repro.exceptions import ReproError
from repro.net.packets import PacketKind
from repro.zipline.deployment import DeploymentScenario, ZipLineDeployment


@pytest.fixture(scope="module")
def shared_chunks(clustered_chunk_factory):
    transform = GDTransform(order=8)
    bases = [  # deterministic bases
        int.from_bytes(bytes([i + 1] * 31), "big") for i in range(4)
    ]
    chunks = clustered_chunk_factory(transform, bases, 600, seed=11)
    return bases, chunks


class TestScenarios:
    def test_scenario_parsing(self):
        assert DeploymentScenario.from_name("static") is DeploymentScenario.STATIC
        assert (
            DeploymentScenario.from_name(DeploymentScenario.DYNAMIC)
            is DeploymentScenario.DYNAMIC
        )
        with pytest.raises(ReproError):
            DeploymentScenario.from_name("bogus")

    def test_static_requires_bases(self):
        with pytest.raises(ReproError):
            ZipLineDeployment(scenario="static")

    def test_no_table_scenario(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="no_table")
        summary = deployment.replay_and_run(chunks[:200], packet_rate=1e6)
        assert summary.compressed_packets == 0
        assert summary.uncompressed_packets == 200
        # 33-byte type-2 payloads over 32-byte chunks: the paper's 1.03.
        assert summary.compression_ratio == pytest.approx(33 / 32)
        assert deployment.verify_lossless(chunks[:200])

    def test_static_scenario_matches_paper_ratio(self, shared_chunks):
        bases, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="static", static_bases=bases)
        summary = deployment.replay_and_run(chunks[:200], packet_rate=1e6)
        assert summary.uncompressed_packets == 0
        assert summary.compressed_packets == 200
        assert summary.compression_ratio == pytest.approx(3 / 32)
        assert deployment.verify_lossless(chunks[:200])

    def test_dynamic_scenario_learns_and_stays_lossless(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="dynamic")
        # Replay slowly enough (6 ms for 600 chunks) that the ~1.77 ms
        # learning delay only covers the head of the trace.
        summary = deployment.replay_and_run(chunks, packet_rate=1e5)
        assert summary.compressed_packets > 0
        assert summary.uncompressed_packets > 0
        assert deployment.verify_lossless(chunks)
        # the ratio falls between the static optimum and the no-table bound
        assert 3 / 32 < summary.compression_ratio < 33 / 32

    def test_dynamic_learning_time_close_to_paper(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="dynamic", seed=1)
        # repeatedly send the same chunk, as the paper's experiment does
        deployment.replay_chunks([chunks[0]] * 3000, packet_rate=1e6)
        deployment.run()
        learning = deployment.learning_time()
        assert learning is not None
        assert learning == pytest.approx(1.77e-3, rel=0.15)


class TestPlumbing:
    def test_chunk_size_validation(self):
        deployment = ZipLineDeployment(scenario="no_table")
        with pytest.raises(ReproError):
            deployment.send_chunk(b"\x00" * 31)

    def test_packet_rate_validation(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="no_table")
        with pytest.raises(ReproError):
            deployment.replay_chunks(chunks[:2], packet_rate=0)

    def test_link_tap_sees_every_inter_switch_frame(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="no_table")
        deployment.replay_and_run(chunks[:50], packet_rate=1e6)
        assert deployment.link_tap.total_frames() == 50
        kinds = deployment.link_tap.count_by_kind()
        assert kinds[PacketKind.PROCESSED_UNCOMPRESSED] == 50

    def test_learning_time_none_when_nothing_compressed(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="no_table")
        deployment.replay_and_run(chunks[:10], packet_rate=1e6)
        assert deployment.learning_time() is None

    def test_reset_traffic_keeps_mappings(self, shared_chunks):
        bases, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="static", static_bases=bases)
        deployment.replay_and_run(chunks[:20], packet_rate=1e6)
        deployment.reset_traffic()
        assert deployment.link_tap.total_frames() == 0
        summary = deployment.replay_and_run(chunks[:20], packet_rate=1e6)
        assert summary.compressed_packets == 20

    def test_verify_lossless_detects_mismatch(self, shared_chunks):
        _, chunks = shared_chunks
        deployment = ZipLineDeployment(scenario="no_table")
        deployment.replay_and_run(chunks[:5], packet_rate=1e6)
        assert not deployment.verify_lossless(chunks[:4])
        assert not deployment.verify_lossless([b"\x00" * 32] * 5)
