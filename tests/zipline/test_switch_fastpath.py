"""The compiled switch fast path is indistinguishable from the interpreted one.

Every observable of the switch models — output frames, per-type counters,
pipeline summaries, CRC extern invocations, match-action table hit counters
and entry metadata, digest emission, port statistics, return values — must
be identical whether a frame went through the compiled integer path or the
interpreted parser/pipeline/deparser.  These tests drive both variants with
the same randomized frame mix (raw chunks, type 2/3, foreign EtherTypes,
truncated frames) and diff everything.
"""

import random

import pytest

from repro.core.transform import GDTransform
from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.mac import MacAddress
from repro.zipline.decoder_switch import ZipLineDecoderSwitch
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")

ENCODER_COUNTERS = [
    "raw_to_uncompressed",
    "raw_to_compressed",
    "passthrough_processed",
    "passthrough_other",
]
DECODER_COUNTERS = [
    "compressed_to_raw",
    "uncompressed_to_raw",
    "unknown_identifier",
    "passthrough_other",
]


def _frame_mix(transform, headers, rng, count):
    """A randomized mix of every frame shape the programs can see."""
    code = transform.code
    frames = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45:  # raw chunk (sometimes clustered for dict hits)
            if rng.random() < 0.5:
                basis = rng.getrandbits(3)
                body = code.encode(basis)
                if rng.random() < 0.8:
                    body ^= 1 << rng.randrange(code.n)
            else:
                body = rng.getrandbits(code.n)
            value = (rng.getrandbits(transform.prefix_bits) << code.n) | body
            payload = value.to_bytes(headers.chunk.total_bytes, "big")
            if rng.random() < 0.2:  # trailing payload after the chunk
                payload += bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 9)))
            frames.append(
                EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, payload).to_bytes()
            )
        elif roll < 0.6:  # type 2
            value = rng.getrandbits(headers.type2.total_bits)
            frames.append(
                EthernetFrame(
                    DST, SRC, EtherType.ZIPLINE_UNCOMPRESSED,
                    value.to_bytes(headers.type2.total_bytes, "big"),
                ).to_bytes()
            )
        elif roll < 0.75:  # type 3 (identifiers both mapped and unmapped)
            syndrome = rng.getrandbits(code.m)
            identifier = rng.randrange(0, 64)
            prefix = rng.getrandbits(max(transform.prefix_bits, 1)) if transform.prefix_bits else 0
            value = (
                ((prefix << headers.identifier_bits) | identifier) << code.m
            ) | syndrome
            value <<= headers.type3_padding_bits
            frames.append(
                EthernetFrame(
                    DST, SRC, EtherType.ZIPLINE_COMPRESSED,
                    value.to_bytes(headers.type3.total_bytes, "big"),
                ).to_bytes()
            )
        elif roll < 0.9:  # unrelated traffic
            frames.append(
                EthernetFrame(
                    DST, SRC, EtherType.IPV4,
                    bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 60))),
                ).to_bytes()
            )
        else:  # truncated ZipLine frames (parser error path)
            ethertype = rng.choice(
                [ETHERTYPE_RAW_CHUNK, int(EtherType.ZIPLINE_UNCOMPRESSED),
                 int(EtherType.ZIPLINE_COMPRESSED)]
            )
            frames.append(
                EthernetFrame(
                    DST, SRC, ethertype,
                    bytes(rng.randrange(0, 8)),
                ).to_bytes()
            )
    return frames


def _diff_counters(fast, slow, labels):
    for label in labels:
        fast_sample = fast.counters.read(label)
        slow_sample = slow.counters.read(label)
        assert (fast_sample.packets, fast_sample.bytes) == (
            slow_sample.packets,
            slow_sample.bytes,
        ), label


class TestEncoderSwitchFastPath:
    def _build(self, fast):
        switch = ZipLineEncoderSwitch(
            transform=GDTransform(order=8), forwarding={0: 1}, fast=fast
        )
        delivered = []
        switch.switch.attach_port(1, lambda frame, _time: delivered.append(frame))
        return switch, delivered

    def test_equivalent_over_randomized_frame_mix(self):
        fast_switch, fast_out = self._build(True)
        slow_switch, slow_out = self._build(False)
        assert fast_switch._fast_enabled
        assert not slow_switch._fast_enabled
        rng = random.Random(2020)
        frames = _frame_mix(
            fast_switch.transform, fast_switch.headers, rng, 500
        )
        # install a few mappings so the compressed branch runs too
        mapping_rng = random.Random(1)
        for identifier in range(12):
            basis = mapping_rng.getrandbits(3)
            fast_switch.install_basis_mapping(basis, identifier)
            slow_switch.install_basis_mapping(basis, identifier)

        for frame in frames:
            fast_result = fast_switch.receive(frame, 0)
            slow_result = slow_switch.receive(frame, 0)
            assert fast_result.frame == slow_result.frame
            assert fast_result.egress_port == slow_result.egress_port
            assert fast_result.digests == slow_result.digests
            assert fast_result.latency == slow_result.latency
        assert fast_out == slow_out
        _diff_counters(fast_switch, slow_switch, ENCODER_COUNTERS)
        assert fast_switch.pipeline.summary() == slow_switch.pipeline.summary()
        assert fast_switch._crc.invocations == slow_switch._crc.invocations
        assert fast_switch.basis_table.lookups == slow_switch.basis_table.lookups
        assert fast_switch.basis_table.hits == slow_switch.basis_table.hits
        assert (
            fast_switch.switch.summary() == slow_switch.switch.summary()
        )

    def test_basis_table_entry_metadata_matches(self):
        fast_switch, _ = self._build(True)
        slow_switch, _ = self._build(False)
        code = fast_switch.transform.code
        basis = 5
        fast_switch.install_basis_mapping(basis, 0)
        slow_switch.install_basis_mapping(basis, 0)
        body = code.encode(basis)
        frame = EthernetFrame(
            DST, SRC, ETHERTYPE_RAW_CHUNK, body.to_bytes(32, "big")
        ).to_bytes()
        for _ in range(3):
            fast_switch.receive(frame, 0)
            slow_switch.receive(frame, 0)
        fast_entry = fast_switch.basis_table.get_entry(basis)
        slow_entry = slow_switch.basis_table.get_entry(basis)
        assert fast_entry.hit_count == slow_entry.hit_count
        assert fast_entry.last_hit == slow_entry.last_hit

    def test_reference_transform_disables_fast_path(self):
        switch = ZipLineEncoderSwitch(transform=GDTransform(order=8, fast=False))
        assert not switch._fast_enabled

    def test_env_var_gates_the_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_GD_FAST", "0")
        switch = ZipLineEncoderSwitch(transform=GDTransform(order=8))
        assert not switch._fast_enabled


class TestDecoderSwitchFastPath:
    def _build(self, fast):
        switch = ZipLineDecoderSwitch(
            transform=GDTransform(order=8), forwarding={0: 1}, fast=fast
        )
        delivered = []
        switch.switch.attach_port(1, lambda frame, _time: delivered.append(frame))
        mapping_rng = random.Random(8)
        for identifier in range(40):
            switch.install_identifier_mapping(
                identifier, mapping_rng.getrandbits(switch.transform.code.k)
            )
        return switch, delivered

    def test_equivalent_over_randomized_frame_mix(self):
        fast_switch, fast_out = self._build(True)
        slow_switch, slow_out = self._build(False)
        assert fast_switch._fast_enabled
        assert not slow_switch._fast_enabled
        rng = random.Random(7)
        frames = _frame_mix(fast_switch.transform, fast_switch.headers, rng, 500)
        for frame in frames:
            fast_result = fast_switch.receive(frame, 0)
            slow_result = slow_switch.receive(frame, 0)
            assert fast_result.frame == slow_result.frame
            assert fast_result.egress_port == slow_result.egress_port
        assert fast_out == slow_out
        _diff_counters(fast_switch, slow_switch, DECODER_COUNTERS)
        assert fast_switch.pipeline.summary() == slow_switch.pipeline.summary()
        assert fast_switch._crc.invocations == slow_switch._crc.invocations
        assert (
            fast_switch.identifier_table.lookups
            == slow_switch.identifier_table.lookups
        )
        assert fast_switch.identifier_table.hits == slow_switch.identifier_table.hits
        assert fast_switch.switch.summary() == slow_switch.switch.summary()

    def test_odd_basis_install_falls_back_without_double_counting(self):
        """Regression: a non-int installed basis defers to the interpreted
        path; the identifier table must be counted exactly once per frame."""
        switch, _delivered = self._build(True)
        switch.install_identifier_mapping(50, "not-an-int")
        headers = switch.headers
        code = switch.transform.code
        value = ((0 << headers.identifier_bits) | 50) << code.m
        value <<= headers.type3_padding_bits
        frame = EthernetFrame(
            DST, SRC, EtherType.ZIPLINE_COMPRESSED,
            value.to_bytes(headers.type3.total_bytes, "big"),
        ).to_bytes()
        before_lookups = switch.identifier_table.lookups
        with pytest.raises(Exception):
            switch.receive(frame, 0)  # interpreted path rejects the basis
        assert switch.identifier_table.lookups == before_lookups + 1
        entry = switch.identifier_table.get_entry(50)
        assert entry.hit_count == 1

    def test_encode_then_decode_restores_chunks_on_both_paths(self):
        """Full loop: encoder output through the decoder, fast vs reference."""
        rng = random.Random(99)
        transform = GDTransform(order=8)
        code = transform.code
        chunks = []
        for _ in range(60):
            basis = rng.getrandbits(4)
            body = code.encode(basis) ^ (1 << rng.randrange(code.n))
            chunks.append(
                ((rng.getrandbits(1) << code.n) | body).to_bytes(32, "big")
            )
        for fast in (True, False):
            encoder = ZipLineEncoderSwitch(
                transform=GDTransform(order=8), forwarding={0: 1}, fast=fast
            )
            decoder = ZipLineDecoderSwitch(
                transform=GDTransform(order=8), forwarding={0: 1}, fast=fast
            )
            wire = []
            encoder.switch.attach_port(1, lambda frame, _t: wire.append(frame))
            restored = []
            decoder.switch.attach_port(1, lambda frame, _t: restored.append(frame))
            # mirror encoder learning into the decoder's identifier table,
            # as the control plane would
            seen = {}
            for chunk in chunks:
                frame = EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, chunk).to_bytes()
                prefix, basis, _dev = encoder.transform.split_fields(chunk)
                if basis not in seen:
                    identifier = len(seen)
                    seen[basis] = identifier
                    encoder.install_basis_mapping(basis, identifier)
                    decoder.install_identifier_mapping(identifier, basis)
                encoder.receive(frame, 0)
            for frame in wire:
                decoder.receive(frame, 0)
            payloads = [frame[14 : 14 + 32] for frame in restored]
            assert payloads == chunks, f"fast={fast}"


class TestReceiveBatch:
    """Batched ingest is indistinguishable from per-frame receive calls.

    ``receive_batch`` shares one CRC-extern batch call across co-resident
    frames; every observable — emitted frames, counters, pipeline
    summaries, table metadata, CRC invocation counts — must match the
    per-frame path exactly, for both switch models.
    """

    def _chunked(self, frames, rng):
        groups = []
        index = 0
        while index < len(frames):
            size = rng.choice([1, 2, 3, 5, 8, 17])
            groups.append(frames[index : index + size])
            index += size
        return groups

    def _build_encoder(self):
        switch = ZipLineEncoderSwitch(
            transform=GDTransform(order=8), forwarding={0: 1}, fast=True
        )
        delivered = []
        switch.switch.attach_port(1, lambda frame, _t: delivered.append(frame))
        mapping_rng = random.Random(1)
        for identifier in range(12):
            switch.install_basis_mapping(mapping_rng.getrandbits(3), identifier)
        return switch, delivered

    def _build_decoder(self):
        switch = ZipLineDecoderSwitch(
            transform=GDTransform(order=8), forwarding={0: 1}, fast=True
        )
        delivered = []
        switch.switch.attach_port(1, lambda frame, _t: delivered.append(frame))
        mapping_rng = random.Random(8)
        for identifier in range(40):
            switch.install_identifier_mapping(
                identifier, mapping_rng.getrandbits(switch.transform.code.k)
            )
        return switch, delivered

    @pytest.mark.parametrize("kind", ["encoder", "decoder"])
    def test_equivalent_over_randomized_frame_mix(self, kind):
        build = self._build_encoder if kind == "encoder" else self._build_decoder
        base_switch, base_out = build()
        batch_switch, batch_out = build()
        rng = random.Random(7)
        frames = _frame_mix(base_switch.transform, base_switch.headers, rng, 600)
        base_results = [base_switch.receive(frame, 0) for frame in frames]
        batch_results = []
        for group in self._chunked(frames, random.Random(3)):
            batch_results.extend(batch_switch.receive_batch(group, 0))
        assert len(base_results) == len(batch_results)
        for base, batch in zip(base_results, batch_results):
            assert base.frame == batch.frame
            assert base.egress_port == batch.egress_port
            assert base.digests == batch.digests
            assert base.latency == batch.latency
        assert base_out == batch_out
        labels = ENCODER_COUNTERS if kind == "encoder" else DECODER_COUNTERS
        _diff_counters(base_switch, batch_switch, labels)
        assert base_switch.pipeline.summary() == batch_switch.pipeline.summary()
        assert base_switch._crc.invocations == batch_switch._crc.invocations
        assert base_switch.switch.summary() == batch_switch.switch.summary()
        table = "basis_table" if kind == "encoder" else "identifier_table"
        assert getattr(base_switch, table).lookups == getattr(batch_switch, table).lookups
        assert getattr(base_switch, table).hits == getattr(batch_switch, table).hits

    def test_single_frame_batches_delegate(self):
        switch, _ = self._build_encoder()
        frames = _frame_mix(switch.transform, switch.headers, random.Random(5), 10)
        results = switch.receive_batch(frames[:1], 0)
        assert len(results) == 1

    def test_interpreted_switch_falls_back_per_frame(self):
        switch = ZipLineEncoderSwitch(
            transform=GDTransform(order=8, fast=False), forwarding={0: 1}
        )
        frames = _frame_mix(switch.transform, switch.headers, random.Random(5), 20)
        results = switch.receive_batch(frames, 0)
        assert len(results) == len(frames)
