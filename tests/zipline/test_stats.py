"""Tests for the link tap and compression summary."""

import pytest

from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.mac import MacAddress
from repro.net.packets import PacketKind
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK
from repro.zipline.stats import CompressionSummary, LinkTap

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")


def frame_bytes(ethertype, payload_len):
    return EthernetFrame(DST, SRC, ethertype, b"\x00" * payload_len).to_bytes()


class TestLinkTap:
    def test_classification_and_byte_accounting(self):
        tap = LinkTap()
        tap.observe(frame_bytes(EtherType.ZIPLINE_UNCOMPRESSED, 33), time=0.0)
        tap.observe(frame_bytes(EtherType.ZIPLINE_COMPRESSED, 3), time=0.001)
        tap.observe(frame_bytes(EtherType.ZIPLINE_COMPRESSED, 3), time=0.002)
        tap.observe(frame_bytes(ETHERTYPE_RAW_CHUNK, 32), time=0.003)
        counts = tap.count_by_kind()
        assert counts[PacketKind.PROCESSED_UNCOMPRESSED] == 1
        assert counts[PacketKind.PROCESSED_COMPRESSED] == 2
        assert counts[PacketKind.RAW] == 1
        assert tap.total_payload_bytes() == 33 + 3 + 3 + 32
        assert tap.total_frames() == 4
        by_kind = tap.payload_bytes_by_kind()
        assert by_kind[PacketKind.PROCESSED_COMPRESSED] == 6

    def test_first_time_of_kind(self):
        tap = LinkTap()
        tap.observe(frame_bytes(EtherType.ZIPLINE_UNCOMPRESSED, 33), time=0.5)
        tap.observe(frame_bytes(EtherType.ZIPLINE_COMPRESSED, 3), time=2.27)
        assert tap.first_time_of_kind(PacketKind.PROCESSED_UNCOMPRESSED) == 0.5
        assert tap.first_time_of_kind(PacketKind.PROCESSED_COMPRESSED) == 2.27
        assert tap.first_time_of_kind(PacketKind.RAW) is None

    def test_clear(self):
        tap = LinkTap()
        tap.observe(frame_bytes(EtherType.IPV4, 10), time=0.0)
        tap.clear()
        assert tap.total_frames() == 0


class TestCompressionSummary:
    def test_ratio_and_savings(self):
        summary = CompressionSummary(
            original_payload_bytes=3200,
            transmitted_payload_bytes=320,
            compressed_packets=90,
            uncompressed_packets=10,
        )
        assert summary.compression_ratio == pytest.approx(0.1)
        assert summary.savings_percent == pytest.approx(90.0)
        assert summary.total_packets == 100

    def test_empty_summary(self):
        summary = CompressionSummary(original_payload_bytes=0, transmitted_payload_bytes=0)
        assert summary.compression_ratio == 0.0

    def test_from_link_tap(self):
        tap = LinkTap()
        tap.observe(frame_bytes(EtherType.ZIPLINE_UNCOMPRESSED, 33), time=0.0)
        tap.observe(frame_bytes(EtherType.ZIPLINE_COMPRESSED, 3), time=0.1)
        summary = CompressionSummary.from_link_tap(
            tap, original_payload_bytes=64, dataset="unit", scenario="dynamic"
        )
        assert summary.transmitted_payload_bytes == 36
        assert summary.uncompressed_packets == 1
        assert summary.compressed_packets == 1
        assert summary.dataset == "unit"
        data = summary.as_dict()
        assert data["scenario"] == "dynamic"
        assert data["compression_ratio"] == pytest.approx(36 / 64)
