"""Tests for the ZipLine encoder switch program."""

import pytest

from repro.core.transform import GDTransform
from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.mac import MacAddress
from repro.net.packets import ZipLinePacketCodec
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")


@pytest.fixture()
def encoder():
    return ZipLineEncoderSwitch(
        transform=GDTransform(order=8),
        identifier_bits=15,
        forwarding={0: 1},
    )


def chunk_frame(chunk: bytes) -> bytes:
    return EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, chunk).to_bytes()


def make_chunk(transform, basis, position=None, prefix=0):
    codeword = transform.code.encode(basis)
    body = codeword if position is None else codeword ^ (1 << position)
    return ((prefix << transform.code.n) | body).to_bytes(transform.chunk_bytes, "big")


class TestEncoding:
    def test_unknown_basis_produces_type2_and_digest(self, encoder, rng):
        chunk = make_chunk(encoder.transform, rng.getrandbits(247), position=10)
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        result = encoder.receive(chunk_frame(chunk), ingress_port=0)
        assert result.egress_port == 1
        frame = EthernetFrame.from_bytes(outputs[0])
        assert frame.ethertype == EtherType.ZIPLINE_UNCOMPRESSED
        assert len(frame.payload) == 33
        assert encoder.digest_engine.emitted == 1
        assert encoder.counters.read("raw_to_uncompressed").packets == 1

    def test_known_basis_produces_type3(self, encoder, rng):
        basis = rng.getrandbits(247)
        encoder.install_basis_mapping(basis, identifier=77)
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        chunk = make_chunk(encoder.transform, basis, position=42, prefix=1)
        encoder.receive(chunk_frame(chunk), ingress_port=0)
        frame = EthernetFrame.from_bytes(outputs[0])
        assert frame.ethertype == EtherType.ZIPLINE_COMPRESSED
        assert len(frame.payload) == 3
        codec = ZipLinePacketCodec(encoder.transform, identifier_bits=15)
        record = codec.unpack_compressed(frame.payload)
        assert record.identifier == 77
        assert record.prefix == 1
        assert encoder.counters.read("raw_to_compressed").packets == 1
        assert encoder.digest_engine.emitted == 0

    def test_type2_packet_content_reconstructs_the_chunk(self, encoder, rng):
        chunk = make_chunk(encoder.transform, rng.getrandbits(247), position=3, prefix=1)
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        encoder.receive(chunk_frame(chunk), ingress_port=0)
        frame = EthernetFrame.from_bytes(outputs[0])
        codec = ZipLinePacketCodec(encoder.transform, identifier_bits=15)
        record = codec.unpack_uncompressed(frame.payload)
        rebuilt = encoder.transform.join_fields(record.prefix, record.basis, record.deviation)
        assert rebuilt.to_bytes(32, "big") == chunk

    def test_same_basis_maps_to_same_identifier_after_install(self, encoder, rng):
        basis = rng.getrandbits(247)
        encoder.install_basis_mapping(basis, identifier=3)
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        codec = ZipLinePacketCodec(encoder.transform, identifier_bits=15)
        identifiers = set()
        for position in (0, 50, 100, 200, None):
            chunk = make_chunk(encoder.transform, basis, position=position)
            encoder.receive(chunk_frame(chunk), ingress_port=0)
            identifiers.add(codec.unpack_compressed(
                EthernetFrame.from_bytes(outputs[-1]).payload
            ).identifier)
        assert identifiers == {3}

    def test_non_chunk_traffic_is_forwarded_unchanged(self, encoder):
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        raw = EthernetFrame(DST, SRC, EtherType.IPV4, b"not a chunk").to_bytes()
        encoder.receive(raw, ingress_port=0)
        assert outputs == [raw]
        assert encoder.counters.read("passthrough_other").packets == 1

    def test_already_processed_traffic_is_forwarded_unchanged(self, encoder, rng):
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        codec = ZipLinePacketCodec(encoder.transform, identifier_bits=15)
        from repro.core.records import CompressedRecord

        record = CompressedRecord(
            prefix=0, identifier=1, deviation=2,
            prefix_bits=1, identifier_bits=15, deviation_bits=8,
        )
        frame = codec.build_frame(record, DST, SRC).to_bytes()
        encoder.receive(frame, ingress_port=0)
        assert outputs == [frame]
        assert encoder.counters.read("passthrough_processed").packets == 1


class TestControlPlaneInterface:
    def test_install_modify_remove(self, encoder, rng):
        basis = rng.getrandbits(247)
        encoder.install_basis_mapping(basis, identifier=1)
        assert basis in encoder.known_bases()
        encoder.install_basis_mapping(basis, identifier=2)  # modify
        assert encoder.basis_table.get_entry(basis).params["identifier"] == 2
        encoder.remove_basis_mapping(basis)
        assert basis not in encoder.known_bases()
        encoder.remove_basis_mapping(basis)  # idempotent

    def test_expired_bases(self, rng):
        encoder = ZipLineEncoderSwitch(transform=GDTransform(order=8), entry_ttl=1.0)
        basis = rng.getrandbits(247)
        encoder.install_basis_mapping(basis, identifier=1, ttl=1.0)
        assert encoder.expired_bases(now=0.5) == []
        assert encoder.expired_bases(now=2.0) == [basis]

    def test_forwarding_configuration(self, encoder):
        encoder.set_forwarding(2, 3)
        with pytest.raises(Exception):
            encoder.set_forwarding(-1, 2)


class TestProgramProperties:
    def test_no_recirculation_or_duplication(self, encoder, rng):
        for _ in range(20):
            chunk = make_chunk(encoder.transform, rng.getrandbits(247), position=1)
            encoder.receive(chunk_frame(chunk), ingress_port=0)
        assert not encoder.pipeline.uses_forbidden_features

    def test_syndrome_table_is_fully_populated(self, encoder):
        # 2^m const entries: one per syndrome, including the zero syndrome.
        assert len(encoder._syndrome_table) == 256

    def test_resources_registered(self, encoder):
        summary = encoder.pipeline.resources.stage_summary()
        assert summary  # at least one stage used
        total_entries = sum(stage["entries"] for stage in summary.values())
        assert total_entries >= 256 + (1 << 15)

    def test_small_order_switch_roundtrip(self, rng):
        transform = GDTransform(order=4)
        encoder = ZipLineEncoderSwitch(
            transform=transform, identifier_bits=6, forwarding={0: 1}
        )
        outputs = []
        encoder.switch.attach_port(1, lambda data, time: outputs.append(data))
        basis = rng.getrandbits(transform.basis_bits)
        chunk = make_chunk(transform, basis, position=2)
        frame = EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, chunk).to_bytes()
        encoder.receive(frame, ingress_port=0)
        parsed = EthernetFrame.from_bytes(outputs[0])
        assert parsed.ethertype == EtherType.ZIPLINE_UNCOMPRESSED
