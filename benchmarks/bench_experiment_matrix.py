"""Sharded experiment-matrix runner: speedup and byte-identity.

Runs an 8-scenario sweep (dictionary scenario × loss regime × identifier
width over the synthetic workload) twice — sequentially and sharded across
worker processes — and verifies the two sweeps produce **byte-identical**
serialised reports, the determinism contract of
:class:`repro.experiments.MatrixRunner`.  The wall-clock ratio of the two
runs is the headline number: scenario fan-out is embarrassingly parallel,
so the sweep should approach linear speedup in the worker count (minus
process start-up and result pickling).

Results land in ``benchmarks/results/experiment_matrix.{txt,json}``.  Set
``REPRO_BENCH_SMOKE=1`` for the scaled-down CI smoke mode; byte-identity is
asserted in both modes, the speedup floor only in full mode (CI runners
have noisy, sometimes single-core CPU budgets).  The benchmarked hot path
is one sharded sweep end to end.
"""

import multiprocessing
import os
import time

from repro.analysis.reporting import format_table, save_results_json
from repro.experiments import ExperimentSpec, MatrixRunner

from benchmarks.conftest import RESULTS_DIR, emit_result

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
CHUNKS = 300 if SMOKE else 4000
#: At least 2 workers so the sharded (process-pool) path is always the one
#: measured and byte-compared, even on single-core CI runners.
WORKERS = min(4, max(2, multiprocessing.cpu_count()))

#: 2 scenarios x 2 loss regimes x 2 identifier widths = 8 scenarios.
SPEC = {
    "name": "bench-matrix",
    "base": {
        "workload": "synthetic",
        "chunks": CHUNKS,
        "bases": 8,
        "seed": 2020,
    },
    "axes": {
        "scenario": ["static", "dynamic"],
        "loss": [0.0, 0.02],
        "identifier_bits": [8, 15],
    },
}


def _timed_sweep(spec: ExperimentSpec, workers: int):
    started = time.perf_counter()
    result = MatrixRunner(spec, workers=workers).run()
    return result, time.perf_counter() - started


def test_experiment_matrix_sharding(benchmark):
    """Sequential vs sharded sweep: identical bytes, reported speedup."""
    spec = ExperimentSpec.from_dict(SPEC)
    assert spec.matrix_size == 8

    sequential, sequential_seconds = _timed_sweep(spec, workers=1)
    sharded, sharded_seconds = _timed_sweep(spec, workers=WORKERS)

    # The determinism contract: sharding must not change a single byte.
    sequential_bytes = sequential.json_text()
    sharded_bytes = sharded.json_text()
    assert sequential_bytes == sharded_bytes, (
        "sharded sweep diverged from the sequential one"
    )
    assert sequential.intact and sharded.intact

    speedup = sequential_seconds / sharded_seconds if sharded_seconds else 0.0
    if not SMOKE and multiprocessing.cpu_count() >= 2:
        # Generous floor: scenario fan-out is embarrassingly parallel, so
        # even half-linear scaling clears this easily on 2+ cores.
        assert speedup > 1.2, (
            f"sharded sweep not measurably faster: {speedup:.2f}x with "
            f"{WORKERS} workers"
        )

    rows = [
        ["scenarios", f"{spec.matrix_size}"],
        ["chunks per scenario", f"{CHUNKS:,}"],
        ["workers", f"{WORKERS}"],
        ["sequential [s]", f"{sequential_seconds:.3f}"],
        [f"sharded x{WORKERS} [s]", f"{sharded_seconds:.3f}"],
        ["speedup", f"{speedup:.2f}x"],
        ["byte-identical", "yes"],
    ]
    table_text = format_table(
        ["metric", "value"],
        rows,
        title=(
            f"experiment-matrix sharding ({'smoke' if SMOKE else 'full'} mode)"
        ),
    )
    emit_result("experiment_matrix", table_text)
    save_results_json(
        RESULTS_DIR / "experiment_matrix.json",
        {
            "scenarios": spec.matrix_size,
            "chunks": CHUNKS,
            "workers": WORKERS,
            "sequential_seconds": sequential_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": speedup,
            "byte_identical": True,
            "ratios": {
                result.scenario_id: result.metric("compression_ratio")
                for result in sequential.results
            },
        },
    )

    # Hot path under benchmark: one complete sharded sweep.
    def sweep_once():
        result = MatrixRunner(spec, workers=WORKERS).run()
        assert result.intact
        return len(result)

    benchmark(sweep_once)
