"""Figure 5: end-to-end RTT with the switch performing various operations.

The paper's experiment bounces packets off the switch back to the sending
server and reports the round-trip time for the no-op, encode and decode
programs; the three distributions are indistinguishable at ≈ 10–15 µs.  The
reproduction derives the RTT from the explicit latency model (host stack,
NIC/PCIe, wire serialisation, constant switch pipeline latency) with 10
jittered repetitions per operation, and additionally benchmarks the
functional per-packet processing cost of the Python pipeline models for
regression tracking.
"""

from repro.analysis.reporting import format_table, horizontal_bars, save_results_json
from repro.analysis.statistics import summarize
from repro.perfmodel import LatencyModel

from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

#: The paper's Figure 5 axis spans roughly 0–15 µs with all operations
#: landing in the same band; use the band centre as the reference point.
PAPER_RTT_BAND_US = (10.0, 15.0)


def test_figure5_latency_series(benchmark):
    """The Figure 5 RTT series (10 repetitions per operation)."""
    model = LatencyModel(seed=2020)
    figure = model.figure5(count=10)

    rows = []
    # Machine/Python noted in the JSON so trajectories stay comparable.
    results = {"environment": environment_info()}
    for operation, samples in figure.items():
        summary = summarize([sample.rtt_us for sample in samples])
        rows.append(
            [
                operation,
                summary.format("µs"),
                f"{summary.minimum:.2f}",
                f"{summary.maximum:.2f}",
                f"{PAPER_RTT_BAND_US[0]:.0f}–{PAPER_RTT_BAND_US[1]:.0f} µs",
            ]
        )
        results[operation] = summary.as_dict()

    table = format_table(
        ["operation", "RTT (mean ± 95 % CI)", "min [µs]", "max [µs]", "paper band"],
        rows,
        title="Figure 5 — end-to-end RTT with the programmable switch in the path",
    )
    bars = horizontal_bars(
        {operation: results[operation]["mean"] for operation in figure},
        unit="µs",
        maximum=15.0,
    )
    emit_result("figure5_latency", table + "\n\n" + bars)
    save_results_json(RESULTS_DIR / "figure5_latency.json", results)

    # Benchmark one full figure evaluation.
    benchmark(model.figure5, count=10)

    means = [results[operation]["mean"] for operation in ("no_op", "encode", "decode")]
    assert all(8.0 < value < 16.0 for value in means)
    assert max(means) - min(means) < 1.0


def test_pipeline_constant_latency_claim(benchmark):
    """The switch adds a constant latency independent of the program loaded."""
    model = LatencyModel(seed=1)

    def deltas():
        return (
            model.round_trip_time("encode") - model.round_trip_time("no_op"),
            model.round_trip_time("decode") - model.round_trip_time("no_op"),
        )

    encode_delta, decode_delta = benchmark(deltas)
    assert encode_delta == 0.0
    assert decode_delta == 0.0
