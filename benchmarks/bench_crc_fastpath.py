"""CRC fast path: table-driven vs bit-at-a-time syndrome computation.

The whole software reproduction leans on one inner loop: the polynomial
remainder that turns a chunk into its Hamming syndrome (and, in the decode
direction, a basis into its parity bits).  This microbenchmark pins down the
speedup of the shared 256-entry lookup tables (:func:`repro.core.crc.crc_table`)
over the two slow references — direct GF(2) division (``poly_mod``, the old
``compute_bits`` path) and the bit-serial Rocksoft loop — on the chunk sizes
the paper uses (255-bit for order 8, 511-bit for order 9), plus the plain
CRC-32 of a 1500-byte frame.

Results land in ``benchmarks/results/crc_fastpath.json`` so the performance
trajectory of the hot path is tracked PR over PR.  Set
``REPRO_BENCH_SMOKE=1`` to run a scaled-down version (CI smoke mode); the
equivalence checks and the ≥5× speedup assertion hold in both modes.
"""

import os
import random
import time

from repro.analysis.reporting import format_table, save_results_json
from repro.core.crc import (
    CRC32_ETHERNET,
    CrcEngine,
    poly_mod,
    poly_mod_table,
    syndrome_crc,
)
from repro.core.polynomials import polynomial_for_order

from benchmarks.conftest import RESULTS_DIR, emit_result

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
CHUNKS = 500 if SMOKE else 5_000
REPEATS = 3

#: The ISSUE/acceptance floor: table path at least this much faster than the
#: bitwise path on 255-bit chunks.
MIN_SPEEDUP_255 = 5.0


def _time_best(function, values, repeats=REPEATS):
    """Best-of-N wall time of ``function`` over every value, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for value in values:
            function(value)
        best = min(best, time.perf_counter() - start)
    return best


def _syndrome_case(order, chunk_bits, rng):
    """Benchmark one syndrome configuration; returns the result row dict."""
    parameter = polynomial_for_order(order).crc_parameter
    full = (1 << order) | parameter
    engine = syndrome_crc(parameter, order)
    values = [rng.getrandbits(chunk_bits) for _ in range(CHUNKS)]

    # Equivalence on every benchmarked vector: table == direct division ==
    # bit-serial reference (spot checked, the reference is very slow).
    for value in values[: CHUNKS // 10]:
        expected = poly_mod(value, full)
        assert poly_mod_table(value, parameter, order) == expected
        assert engine.compute_bits(value, chunk_bits) == expected
        assert engine.compute_bits_reference(value, chunk_bits) == expected

    bitwise = _time_best(lambda v: poly_mod(v, full), values)
    table = _time_best(lambda v: poly_mod_table(v, parameter, order), values)
    return {
        "order": order,
        "chunk_bits": chunk_bits,
        "chunks": CHUNKS,
        "bitwise_us_per_chunk": bitwise * 1e6 / CHUNKS,
        "table_us_per_chunk": table * 1e6 / CHUNKS,
        "speedup": bitwise / table,
        "bitwise_throughput_mbit_s": CHUNKS * chunk_bits / bitwise / 1e6,
        "table_throughput_mbit_s": CHUNKS * chunk_bits / table / 1e6,
    }


def test_crc_fastpath_speedup(benchmark):
    """Table-driven syndromes are ≥5× faster than bitwise on 255-bit chunks."""
    rng = random.Random(2020)
    results = {}
    rows = []
    for order, chunk_bits in ((8, 255), (9, 511)):
        case = _syndrome_case(order, chunk_bits, rng)
        results[f"syndrome_m{order}_{chunk_bits}b"] = case
        rows.append(
            [
                f"CRC-{order} syndrome",
                f"{chunk_bits} bits",
                f"{case['bitwise_us_per_chunk']:.2f}",
                f"{case['table_us_per_chunk']:.2f}",
                f"{case['speedup']:.1f}x",
                f"{case['table_throughput_mbit_s']:.0f}",
            ]
        )

    # Protocol CRC case: CRC-32 over a 1500-byte frame, table vs bit serial.
    engine = CrcEngine(CRC32_ETHERNET)
    frames = [rng.getrandbits(1500 * 8).to_bytes(1500, "big") for _ in range(64)]
    for frame in frames[:4]:
        value = int.from_bytes(frame, "big")
        assert engine.compute_bytes(frame) == engine.compute_bits_reference(
            value, len(frame) * 8
        )
    serial = _time_best(
        lambda f: engine.compute_bits_reference(int.from_bytes(f, "big"), len(f) * 8),
        frames,
        repeats=1,
    )
    table32 = _time_best(engine.compute_bytes, frames)
    results["crc32_1500B"] = {
        "serial_us_per_frame": serial * 1e6 / len(frames),
        "table_us_per_frame": table32 * 1e6 / len(frames),
        "speedup": serial / table32,
    }
    rows.append(
        [
            "CRC-32/ETHERNET",
            "1500 bytes",
            f"{serial * 1e6 / len(frames):.2f}",
            f"{table32 * 1e6 / len(frames):.2f}",
            f"{serial / table32:.1f}x",
            f"{len(frames) * 1500 * 8 / table32 / 1e6:.0f}",
        ]
    )

    table_text = format_table(
        ["computation", "message", "slow [us]", "table [us]", "speedup", "table Mbit/s"],
        rows,
        title=f"CRC fast path ({'smoke' if SMOKE else 'full'} mode, {CHUNKS} chunks)",
    )
    emit_result("crc_fastpath", table_text)
    save_results_json(RESULTS_DIR / "crc_fastpath.json", results)

    # The benchmarked hot path: one 255-bit syndrome via the table.
    parameter = polynomial_for_order(8).crc_parameter
    value = rng.getrandbits(255)
    benchmark(lambda: poly_mod_table(value, parameter, 8))

    speedup_255 = results["syndrome_m8_255b"]["speedup"]
    assert speedup_255 >= MIN_SPEEDUP_255, (
        f"table path only {speedup_255:.1f}x faster than bitwise on 255-bit "
        f"chunks (floor is {MIN_SPEEDUP_255}x)"
    )
