"""Control-plane churn: install throughput, recovery time, ratio vs loss.

The degraded-control-plane subsystem gets the same trajectory treatment
as the data-plane hot path.  Three numbers are measured and guarded
against the committed ``BENCH_control.json``:

* **installs/s under thrash** — the dictionary-thrash workload over an
  identifier pool far smaller than its basis population keeps the
  control plane learning and recycling for the whole trace; the wall
  clock rate of completed installs is the controller's modeled write
  throughput end to end (digests, allocation, two table writes over the
  in-network channel);
* **recovery time after a decoder restart** — from the scheduled restart
  to the last resync install applied on the decoder, in simulated time
  (a determinism-guarded constant of the spec, not a wall-clock number);
* **ratio vs control loss** — the figure-style degradation table: the
  compression ratio must stay within tolerance of the committed value at
  every loss rate, delivery loss is bounded and corruption is zero.

Set ``REPRO_BENCH_SMOKE=1`` for the scaled-down CI smoke mode.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.reporting import format_table, save_results_json
from repro.topology import (
    TopologyEngine,
    FaultPlan,
    fan_in_topology,
    fault_storm_topology,
    run_topology,
    validate_spec_faults,
)

from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
SENDERS = 4
CHUNKS_PER_FLOW = 400 if SMOKE else 1500
#: Basis population slightly above the identifier space below (4 flows x
#: 10 bases over 32 identifiers): the hot heads fit and compress, the
#: rotating tail keeps the pool recycling for the whole trace.
BASES_PER_FLOW = 10
IDENTIFIER_BITS = 5
PACKET_RATE = 1e5
SEED = 2020
LOSS_SWEEP = (0.0, 0.1, 0.2)

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_control.json"

#: A current rate below ``(1 - TOLERANCE) * baseline`` fails the bench.
REGRESSION_TOLERANCE = 0.30
#: Compression ratios are deterministic per spec, but differ between
#: smoke and full workload sizes; the table is only guarded in-mode.
RATIO_TOLERANCE = 0.05


def _thrash_spec(control_loss=0.0):
    spec = fan_in_topology(
        name="control-churn",
        senders=SENDERS,
        workload="thrash",
        chunks=CHUNKS_PER_FLOW,
        bases=BASES_PER_FLOW,
        packet_rate=PACKET_RATE,
        identifier_bits=IDENTIFIER_BITS,
        control="in-network",
        seed=SEED,
    )
    if control_loss:
        spec.faults = FaultPlan(control_loss=control_loss)
        validate_spec_faults(spec)
    return spec


def _load_baseline():
    if not TRAJECTORY_PATH.exists():
        return None
    with TRAJECTORY_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def _guard(label, current, baseline_value):
    """Fail when ``current`` regressed >30 % below the committed baseline."""
    if baseline_value is None:
        return
    floor = (1.0 - REGRESSION_TOLERANCE) * baseline_value
    assert current >= floor, (
        f"{label} regressed: {current:,.2f} vs committed baseline "
        f"{baseline_value:,.2f} (floor {floor:,.2f})"
    )


def test_control_churn(benchmark):
    """Install throughput, restart recovery, and the loss degradation table."""
    trajectory = _load_baseline()
    floors = (trajectory or {}).get("floors", {})
    mode = "smoke" if SMOKE else "full"

    # -- installs/s under thrash ------------------------------------------------
    started = time.perf_counter()
    report = run_topology(_thrash_spec(), workers=1)
    churn_s = time.perf_counter() - started
    counters = report.metrics.as_dict()["counters"]
    installs = (
        counters["controlplane.mappings_learned"]
        + counters["controlplane.mappings_recycled"]
    )
    installs_per_s = installs / churn_s
    # The workload actually thrashes: the pool recycled bindings.
    assert counters["controlplane.mappings_recycled"] > 0
    hard_floor = floors.get("installs_per_s_hard_floor", 20)
    assert installs_per_s >= hard_floor, (
        f"install throughput {installs_per_s:,.1f}/s fell below the "
        f"{hard_floor}/s hard floor"
    )

    # -- recovery time after a decoder restart ---------------------------------
    storm_spec = fault_storm_topology(
        chunks=CHUNKS_PER_FLOW, senders=SENDERS, packet_rate=PACKET_RATE
    )
    engine = TopologyEngine(storm_spec)
    storm_report = engine.run()
    restart_at = storm_spec.faults.restarts[0].time
    channel = engine.control_channels["encoder"]
    assert channel.resync_applied > 0, "restart resynchronised nothing"
    recovery_s = channel.last_resync_applied_at - restart_at
    recovery_ms = recovery_s * 1e3
    assert recovery_s > 0
    recovery_ceiling = floors.get("recovery_ms_max", 5.0)
    assert recovery_ms <= recovery_ceiling, (
        f"resync took {recovery_ms:.3f} ms of simulated time, above the "
        f"{recovery_ceiling} ms ceiling"
    )
    for flow in storm_report.flows:
        assert flow.integrity.corrupted == 0

    # -- ratio vs control loss --------------------------------------------------
    ratio_rows = []
    for loss in LOSS_SWEEP:
        loss_report = run_topology(_thrash_spec(control_loss=loss), workers=1)
        lost = sum(f.integrity.missing for f in loss_report.flows)
        for flow in loss_report.flows:
            assert flow.integrity.corrupted == 0
        ratio_rows.append(
            {
                "control_loss": loss,
                "ratio": round(loss_report.compression_ratio, 4),
                "lost": lost,
            }
        )
    # Loss-free thrash still compresses despite the churn.
    ratio_ceiling = floors.get("ratio_loss0_ceiling", 0.8)
    assert ratio_rows[0]["ratio"] <= ratio_ceiling, (
        f"loss-free thrash ratio {ratio_rows[0]['ratio']} above the "
        f"{ratio_ceiling} ceiling: compression is not happening"
    )

    baseline = (trajectory or {}).get("baseline")
    if baseline is not None and baseline.get("mode") == mode:
        _guard(
            "installs/s",
            installs_per_s,
            baseline.get("installs_per_s"),
        )
        for row, committed in zip(ratio_rows, baseline.get("ratio_table", [])):
            # Ratios are fully deterministic for a given spec + seed: any
            # drift beyond rounding is a behaviour change, not noise.
            drift = abs(row["ratio"] - committed["ratio"])
            assert drift <= RATIO_TOLERANCE, (
                f"ratio at control_loss={row['control_loss']} drifted "
                f"{drift:.4f} from the committed {committed['ratio']}"
            )

    table_text = format_table(
        ["metric", "value"],
        [
            ["mode", mode],
            ["flows x chunks", f"{SENDERS} x {CHUNKS_PER_FLOW:,}"],
            ["identifier space", f"{1 << IDENTIFIER_BITS}"],
            ["installs (learn+recycle)", f"{installs:,}"],
            ["installs/s", f"{installs_per_s:,.1f}"],
            ["restart recovery [ms sim]", f"{recovery_ms:.3f}"],
            ["resync installs applied", f"{channel.resync_applied}"],
            ["ratio @ loss 0%", f"{ratio_rows[0]['ratio']:.4f}"],
            ["ratio @ loss 10%", f"{ratio_rows[1]['ratio']:.4f}"],
            ["ratio @ loss 20%", f"{ratio_rows[2]['ratio']:.4f}"],
            ["corrupted (all runs)", "0"],
        ],
        title=f"control churn ({mode} mode)",
    )
    emit_result("control_churn", table_text)
    save_results_json(
        RESULTS_DIR / "control_churn.json",
        {
            "mode": mode,
            "environment": environment_info(),
            "senders": SENDERS,
            "chunks_per_flow": CHUNKS_PER_FLOW,
            "bases_per_flow": BASES_PER_FLOW,
            "identifier_bits": IDENTIFIER_BITS,
            "installs": installs,
            "installs_per_s": round(installs_per_s, 1),
            "recovery_ms": round(recovery_ms, 3),
            "resync_applied": channel.resync_applied,
            "ratio_table": ratio_rows,
        },
    )
