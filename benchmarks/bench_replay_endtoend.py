"""End-to-end trace replay through the emulated ZipLine topology.

Drives the synthetic sensor workload through the full
``source → encoder switch → emulated link → decoder switch → sink`` path of
:mod:`repro.replay` for the three Figure 3 dictionary scenarios, plus one
impaired run (seeded loss) that demonstrates the counted-failure-mode
contract of a lossy link.  For every run the harness verifies end-to-end
payload integrity and reports the compression ratio on the wire, latency
percentiles and the per-component counter breakdown — the numbers a
figure-style experiment needs, from one command.

Results land in ``benchmarks/results/replay_endtoend.{txt,json}``.  Set
``REPRO_BENCH_SMOKE=1`` for the scaled-down CI smoke mode; the integrity
assertions hold in both modes.  The benchmarked hot path is one complete
static-table replay (switch pipelines + link emulation + verification).
"""

import os

from repro.analysis.reporting import format_table, save_results_json
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay import ChunkTraceSource, FixedRatePacing, ReplayHarness
from repro.workloads import SyntheticSensorWorkload

from benchmarks.conftest import RESULTS_DIR, emit_result

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
CHUNKS = 400 if SMOKE else 20_000
BASES = 5 if SMOKE else 32
REPLAY_RATE = 1e6  # packets per second, the evaluation's replay rate
LOSS_PROBABILITY = 0.02
SEED = 2020


def _run_scenario(trace, scenario, static_bases=None, impairments=None):
    harness = ReplayHarness(
        scenario=scenario,
        static_bases=static_bases,
        impairments=impairments,
    )
    report = harness.run(
        ChunkTraceSource(trace), FixedRatePacing(packet_rate=REPLAY_RATE)
    )
    return report


def test_replay_endtoend(benchmark):
    """Full-topology replay across scenarios, with integrity verification."""
    workload = SyntheticSensorWorkload(
        num_chunks=CHUNKS, distinct_bases=BASES, seed=SEED
    )
    trace = workload.trace()
    static_bases = workload.bases()

    rows = []
    results = {}

    for scenario in ("no_table", "static", "dynamic"):
        report = _run_scenario(
            trace,
            scenario,
            static_bases=static_bases if scenario == "static" else None,
        )
        assert report.integrity.lossless_in_order, (
            f"{scenario}: loss-free replay must return every chunk in order"
        )
        latency = report.latency_summary()
        rows.append(
            [
                scenario,
                f"{report.compression_ratio:.4f}",
                f"{latency['p50'] * 1e6:.2f}",
                f"{latency['p99'] * 1e6:.2f}",
                "n/a"
                if report.learning_time is None
                else f"{report.learning_time * 1e3:.2f}",
                "yes",
                "0",
            ]
        )
        results[scenario] = report.as_dict()

    # Impaired run: loss is a counted failure mode, never corruption.
    lossy = _run_scenario(
        trace,
        "static",
        static_bases=static_bases,
        impairments=ImpairmentModel(loss_probability=LOSS_PROBABILITY, seed=SEED),
    )
    assert lossy.integrity.intact, "delivered chunks must never be corrupted"
    dropped = lossy.metrics.counter("link0.dropped_loss")
    assert dropped > 0
    assert lossy.integrity.missing == dropped
    latency = lossy.latency_summary()
    rows.append(
        [
            f"static+loss {LOSS_PROBABILITY:.0%}",
            f"{lossy.compression_ratio:.4f}",
            f"{latency['p50'] * 1e6:.2f}",
            f"{latency['p99'] * 1e6:.2f}",
            "n/a",
            "yes" if lossy.integrity.intact else "NO",
            f"{int(dropped)}",
        ]
    )
    results["static_lossy"] = lossy.as_dict()

    # Static must reproduce the Figure 3 shape; no_table must show overhead.
    static_ratio = float(rows[1][1])
    no_table_ratio = float(rows[0][1])
    assert static_ratio < 0.15
    assert no_table_ratio > 1.0

    table_text = format_table(
        [
            "scenario",
            "ratio",
            "lat p50 [us]",
            "lat p99 [us]",
            "learning [ms]",
            "intact",
            "lost",
        ],
        rows,
        title=(
            f"end-to-end replay ({'smoke' if SMOKE else 'full'} mode, "
            f"{CHUNKS} chunks, {REPLAY_RATE:.0e} pkt/s)"
        ),
    )
    emit_result("replay_endtoend", table_text)
    save_results_json(RESULTS_DIR / "replay_endtoend.json", results)

    # Hot path under benchmark: one complete static-table replay, including
    # both switch pipelines, the emulated link and integrity verification.
    def replay_once():
        report = _run_scenario(trace, "static", static_bases=static_bases)
        assert report.integrity.lossless_in_order
        return report.compression_ratio

    benchmark(replay_once)
