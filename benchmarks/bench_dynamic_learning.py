"""Section 7 "Dynamic learning": the (1.77 ± 0.08) ms basis-learning delay.

The paper repeatedly sends the same packet as fast as possible and measures
the time between the arrival of the first type-2 packet and the first
type-3 packet at the destination — the window during which an unknown basis
stays uncompressed while the control plane allocates an identifier and
installs the two table entries.

The reproduction runs the same experiment through the simulated deployment
ten times (with latency jitter re-seeded per repetition, as independent runs
would be) and reports the mean and 95 % confidence interval next to the
paper's value.  The benchmarked operation is one complete run.
"""

import pytest

from repro.analysis.reporting import ComparisonRow, comparison_table, save_results_json
from repro.analysis.statistics import summarize
from repro.workloads import SyntheticSensorWorkload
from repro.zipline import ZipLineDeployment

from benchmarks.conftest import RESULTS_DIR, emit_result

PAPER_LEARNING_MS = 1.77
PAPER_LEARNING_CI_MS = 0.08

#: Packets sent per run; at 1 Mpkt/s this spans 4 ms, comfortably covering
#: the expected learning window.
PACKETS_PER_RUN = 4000
REPLAY_RATE_PPS = 1.0e6


def _one_run(seed: int) -> float:
    """One repetition: replay the same chunk repeatedly, measure the gap."""
    chunk = SyntheticSensorWorkload(num_chunks=1, distinct_bases=1, seed=seed).chunks()[0]
    deployment = ZipLineDeployment(scenario="dynamic", seed=seed)
    deployment.replay_chunks([chunk] * PACKETS_PER_RUN, packet_rate=REPLAY_RATE_PPS)
    deployment.run()
    learning_time = deployment.learning_time()
    assert learning_time is not None, "no compressed packet was ever produced"
    return learning_time * 1e3  # milliseconds


def test_dynamic_learning_delay(benchmark):
    """Measure the learning delay ten times and compare with the paper."""
    samples = [_one_run(seed) for seed in range(10)]
    summary = summarize(samples)

    table = comparison_table(
        [
            ComparisonRow("learning delay mean", PAPER_LEARNING_MS, summary.mean, "ms"),
            ComparisonRow("95 % CI half-width", PAPER_LEARNING_CI_MS, summary.ci95, "ms"),
        ],
        title='Section 7 "Dynamic learning" — time to record and apply a basis-ID pair',
    )
    emit_result("dynamic_learning", table + f"\n\nsamples [ms]: {[round(s, 3) for s in samples]}")
    save_results_json(
        RESULTS_DIR / "dynamic_learning.json",
        {"samples_ms": samples, **summary.as_dict()},
    )

    # Benchmark one complete run of the experiment.
    benchmark(_one_run, 99)

    assert summary.mean == pytest.approx(PAPER_LEARNING_MS, abs=0.2)
    assert summary.ci95 < 0.2


def test_uncompressed_packets_during_learning_window(benchmark):
    """Packets sharing the unknown basis stay type 2 until the install lands."""

    def run_and_count():
        chunk = SyntheticSensorWorkload(num_chunks=1, distinct_bases=1, seed=5).chunks()[0]
        deployment = ZipLineDeployment(scenario="dynamic", seed=5)
        deployment.replay_chunks([chunk] * PACKETS_PER_RUN, packet_rate=REPLAY_RATE_PPS)
        deployment.run()
        summary = deployment.summary()
        return summary.uncompressed_packets, summary.compressed_packets

    uncompressed, compressed = benchmark(run_and_count)
    # ~1.77 ms at 1 Mpkt/s -> roughly 1,770 uncompressed packets, the rest
    # compressed; assert the order of magnitude, not the exact count.
    assert 1000 < uncompressed < 2600
    assert compressed == PACKETS_PER_RUN - uncompressed
