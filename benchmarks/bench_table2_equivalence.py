"""Table 2: equivalence of Hamming (7, 4) syndromes and CRC-3 values.

Regenerates both halves of Table 2 — the syndrome of every single-bit error
pattern of the (7, 4) code and the CRC-3 of every 7-bit sequence with one
non-zero bit — and verifies they are identical.  The benchmarked operation
is the syndrome computation itself (one CRC over a 255-bit chunk with the
paper's m = 8 configuration), which is the per-packet work the Tofino CRC
extern performs.
"""

import random

from repro.analysis.reporting import format_table, save_results_json
from repro.core.crc import syndrome_crc
from repro.core.hamming import HammingCode

from benchmarks.conftest import RESULTS_DIR, emit_result


def test_table2_equivalence(benchmark):
    """Regenerate Table 2 and benchmark the m = 8 syndrome computation."""
    code_7_4 = HammingCode(3)
    crc3 = syndrome_crc(0x3, 3)

    rows = []
    for error_position in range(7):
        sequence = 1 << error_position
        hamming_syndrome = code_7_4.syndrome_of_error_position(error_position)
        crc_value = crc3.compute_bits(sequence, 7)
        rows.append(
            [
                error_position,
                format(sequence, "07b"),
                format(hamming_syndrome, "03b"),
                format(crc_value, "03b"),
                "ok" if hamming_syndrome == crc_value else "MISMATCH",
            ]
        )
        assert hamming_syndrome == crc_value

    table = format_table(
        ["Error bit", "Bit sequence", "Hamming syndrome", "CRC-3", "equal"],
        rows,
        title="Table 2 — Hamming (7, 4) syndromes vs CRC-3 of single-bit sequences",
    )
    emit_result("table2_equivalence", table)
    save_results_json(
        RESULTS_DIR / "table2_equivalence.json",
        {str(row[0]): {"sequence": row[1], "syndrome": row[2], "crc3": row[3]} for row in rows},
    )

    # Benchmark: per-chunk syndrome computation with the paper's parameters.
    paper_code = HammingCode(8)
    rng = random.Random(1)
    chunks = [rng.getrandbits(255) for _ in range(512)]

    def syndrome_batch():
        total = 0
        for chunk in chunks:
            total ^= paper_code.syndrome(chunk)
        return total

    benchmark(syndrome_batch)


def test_syndrome_matches_crc_for_paper_order(benchmark):
    """Exhaustive equivalence check for m = 8 (every single-bit pattern)."""
    code = HammingCode(8)
    crc8 = syndrome_crc(code.crc_parameter, 8)

    def check_all_positions():
        for position in range(code.n):
            assert code.syndrome_of_error_position(position) == crc8.compute_bits(
                1 << position, code.n
            )
        return code.n

    assert benchmark(check_all_positions) == 255
