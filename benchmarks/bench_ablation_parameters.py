"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify the trade-offs the paper
discusses qualitatively:

* the Hamming order ``m`` (the paper fixes m = 8 for byte alignment):
  compression ratio and per-chunk cost as ``m`` varies;
* the identifier width ``t`` (the paper fixes t = 15): dictionary reach vs
  per-packet overhead, including what happens when the dictionary is too
  small for the working set;
* the dictionary eviction policy (LRU vs FIFO vs random);
* the byte-alignment padding (the paper's 3 % no-table overhead and the
  8 padding bits it reckons an expert could remove);
* classic exact deduplication vs GD on noisy sensor data.
"""

from typing import List

from repro.analysis.reporting import format_table, save_results_json
from repro.baselines import ExactDedupBaseline
from repro.core.codec import GDCodec
from repro.core.dictionary import EvictionPolicy
from repro.workloads import SyntheticSensorWorkload

from benchmarks.conftest import RESULTS_DIR, emit_result


def _workload(num_chunks=20_000, distinct_bases=32, seed=2020, **kwargs):
    return SyntheticSensorWorkload(
        num_chunks=num_chunks, distinct_bases=distinct_bases, seed=seed, **kwargs
    )


def test_ablation_hamming_order(benchmark):
    """Compression ratio and chunk size as the Hamming order m varies."""
    rows: List[List[object]] = []
    results = {}
    # Orders below 6 leave no room for the structured sensor frame inside a
    # chunk (2–4 bytes), so the sweep starts at m = 6.
    orders = (6, 8, 10, 12)
    for order in orders:
        codec = GDCodec(order=order, identifier_bits=15, alignment_padding_bits=8)
        workload = SyntheticSensorWorkload(
            num_chunks=4_000, distinct_bases=32, order=order, seed=3
        )
        data = b"".join(workload.chunks())
        static = GDCodec(
            order=order,
            identifier_bits=15,
            mode="static",
            static_bases=workload.bases(),
            alignment_padding_bits=8,
        )
        ratio = static.compress(data).compression_ratio
        rows.append(
            [
                order,
                codec.transform.chunk_bytes,
                codec.transform.basis_bits,
                f"{ratio:.4f}",
            ]
        )
        results[order] = ratio
    emit_result(
        "ablation_hamming_order",
        format_table(
            ["order m", "chunk bytes", "basis bits", "static ratio"],
            rows,
            title="Ablation — Hamming order vs compression ratio (static table)",
        ),
    )
    save_results_json(RESULTS_DIR / "ablation_hamming_order.json", results)

    # Larger chunks amortise the identifier+syndrome better: the ratio must
    # improve monotonically with m.
    ordered = [results[order] for order in orders]
    assert all(earlier > later for earlier, later in zip(ordered, ordered[1:]))

    # Benchmark the paper's configuration encode path at this scale.
    workload = _workload(num_chunks=5_000)
    data = b"".join(workload.chunks())

    def encode():
        return GDCodec(order=8, identifier_bits=15).compress(data).compression_ratio

    benchmark(encode)


def test_ablation_identifier_width(benchmark):
    """Identifier width sweep: per-packet overhead vs dictionary reach."""
    workload = _workload(num_chunks=10_000, distinct_bases=600)
    chunks = workload.chunks()
    data = b"".join(chunks)
    rows = []
    ratios = {}
    hit_fractions = {}
    for identifier_bits in (7, 9, 11, 15, 23):
        codec = GDCodec(
            order=8, identifier_bits=identifier_bits, alignment_padding_bits=8
        )
        result = codec.compress(data)
        capacity = 1 << identifier_bits
        rows.append(
            [
                identifier_bits,
                capacity,
                "yes" if capacity >= 600 else "no",
                f"{result.compressed_record_fraction:.3f}",
                f"{result.compression_ratio:.4f}",
            ]
        )
        ratios[identifier_bits] = result.compression_ratio
        hit_fractions[identifier_bits] = result.compressed_record_fraction
    emit_result(
        "ablation_identifier_width",
        format_table(
            ["identifier bits", "dictionary capacity", "holds working set",
             "fraction compressed", "dynamic ratio"],
            rows,
            title="Ablation — identifier width vs compression (600 distinct bases)",
        ),
    )
    save_results_json(
        RESULTS_DIR / "ablation_identifier_width.json",
        {"ratio": ratios, "compressed_fraction": hit_fractions},
    )

    # A dictionary smaller than the working set (7/9 bits) thrashes: fewer
    # chunks get compressed than with the paper's 15-bit configuration.  The
    # byte ratio is a trade-off (smaller identifiers also shrink the
    # compressed packets), which is exactly what this table documents.
    assert hit_fractions[7] < hit_fractions[15]
    # A 512-entry dictionary barely thrashes on a 600-basis working set with
    # bursty traffic; it must never do better than the full-size dictionary.
    assert hit_fractions[9] <= hit_fractions[15]
    # Wider identifiers than needed only add per-packet bits.
    assert ratios[23] > ratios[15] - 1e-9

    benchmark(lambda: GDCodec(order=8, identifier_bits=15).compress(data).compression_ratio)


def test_ablation_eviction_policy(benchmark):
    """LRU vs FIFO vs random recycling under dictionary pressure."""
    workload = _workload(num_chunks=10_000, distinct_bases=500, locality=0.95)
    data = b"".join(workload.chunks())
    rows = []
    results = {}
    for policy in (EvictionPolicy.LRU, EvictionPolicy.FIFO, EvictionPolicy.RANDOM):
        codec = GDCodec(
            order=8,
            identifier_bits=8,  # 256 entries: forced recycling
            eviction_policy=policy,
            alignment_padding_bits=8,
            eviction_seed=2020,  # random policy: reproducible run to run
        )
        ratio = codec.compress(data).compression_ratio
        rows.append([policy.value, f"{ratio:.4f}"])
        results[policy.value] = ratio
    emit_result(
        "ablation_eviction_policy",
        format_table(
            ["policy", "dynamic ratio (256-entry dictionary)"],
            rows,
            title="Ablation — eviction policy under dictionary pressure",
        ),
    )
    save_results_json(RESULTS_DIR / "ablation_eviction_policy.json", results)
    # With bursty sensor traffic LRU should not lose to FIFO by any margin
    # worth acting on; assert it is at least competitive.
    assert results["lru"] <= results["fifo"] + 0.02

    benchmark(
        lambda: GDCodec(order=8, identifier_bits=8).compress(data).compression_ratio
    )


def test_ablation_alignment_padding(benchmark):
    """The byte-alignment padding behind the paper's 3 % no-table overhead."""
    workload = _workload(num_chunks=5_000)
    data = b"".join(workload.chunks())
    rows = []
    results = {}
    for padding_bits in (0, 8):
        codec = GDCodec(order=8, mode="no_table", alignment_padding_bits=padding_bits)
        ratio = codec.compress(data).compression_ratio
        rows.append([padding_bits, f"{ratio:.4f}"])
        results[padding_bits] = ratio
    emit_result(
        "ablation_alignment_padding",
        format_table(
            ["type-2 padding bits", "no-table ratio"],
            rows,
            title="Ablation — container-alignment padding (the paper's 3 % overhead)",
        ),
    )
    save_results_json(
        RESULTS_DIR / "ablation_alignment_padding.json",
        {str(k): v for k, v in results.items()},
    )
    assert results[0] == 1.0
    assert 1.02 < results[8] < 1.04

    benchmark(
        lambda: GDCodec(order=8, mode="no_table", alignment_padding_bits=8)
        .compress(data)
        .compression_ratio
    )


def test_ablation_gd_vs_exact_dedup(benchmark):
    """GD vs classic deduplication on noisy sensor chunks."""
    workload = _workload(num_chunks=10_000, deviation_probability=0.9)
    chunks = workload.chunks()
    data = b"".join(chunks)
    gd = GDCodec(
        order=8,
        identifier_bits=15,
        mode="static",
        static_bases=workload.bases(),
        alignment_padding_bits=8,
    ).compress(data)
    dedup = ExactDedupBaseline(identifier_bits=15).run(chunks)
    emit_result(
        "ablation_gd_vs_dedup",
        format_table(
            ["scheme", "ratio", "notes"],
            [
                ["generalized deduplication", f"{gd.compression_ratio:.4f}",
                 "matches chunks up to 1-bit deviations"],
                ["exact deduplication", f"{dedup.compression_ratio:.4f}",
                 f"only {dedup.duplicate_fraction:.0%} of chunks were exact repeats"],
            ],
            title="Ablation — GD vs classic deduplication on noisy sensor data",
        ),
    )
    save_results_json(
        RESULTS_DIR / "ablation_gd_vs_dedup.json",
        {"gd": gd.compression_ratio, "exact_dedup": dedup.compression_ratio},
    )
    assert gd.compression_ratio < dedup.compression_ratio

    benchmark(lambda: ExactDedupBaseline(identifier_bits=15).run(chunks).compression_ratio)
