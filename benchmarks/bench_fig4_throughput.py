"""Figure 4: network throughput with the switch performing no-op/encode/decode.

The paper transfers raw Ethernet frames of 64, 1500 and 9000 bytes for ten
seconds through the switch running each of the three programs and reports
Gbit/s and Mpkt/s.  Absolute line-rate numbers cannot be demonstrated in
Python, so this benchmark reproduces the figure in two parts:

1. the *analytical series* from :mod:`repro.perfmodel` — identical bars for
   the three operations, generator-bound small frames (~7 Mpkt/s) and
   line-rate jumbo frames — after verifying against the actual encoder and
   decoder pipelines that neither program recirculates or duplicates
   packets (the precondition of the vendor's line-rate guarantee);
2. the *functional packet rate* of the Python switch models, benchmarked
   with pytest-benchmark, so regressions in the data-plane model's cost are
   visible.
"""

import random

from repro.analysis.experiment import ExperimentRunner
from repro.analysis.reporting import format_table, save_results_json
from repro.analysis.statistics import summarize
from repro.core.transform import GDTransform
from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.mac import MacAddress
from repro.perfmodel import SwitchOperation, ThroughputModel
from repro.zipline.decoder_switch import ZipLineDecoderSwitch
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")

#: Paper reference points for the annotation column (Gbit/s, approximate bar
#: heights; small frames are reported as packet rate).
PAPER_GBPS = {64: 3.6, 1500: 84.0, 9000: 99.7}
PAPER_MPPS = {64: 7.0, 1500: 7.0, 9000: 1.4}


def test_figure4_throughput_series(benchmark):
    """The Figure 4 bars, derived from the path model with 10 repetitions."""
    transform = GDTransform(order=8)
    encoder = ZipLineEncoderSwitch(transform=transform)
    decoder = ZipLineDecoderSwitch(transform=transform)
    operations = [
        SwitchOperation("no_op"),
        SwitchOperation("encode", pipeline=encoder.pipeline),
        SwitchOperation("decode", pipeline=decoder.pipeline),
    ]

    model = ThroughputModel(measurement_noise=0.01, seed=2020)
    runner = ExperimentRunner(repetitions=10)

    rows = []
    # Absolute numbers are machine-bound; note the environment in the JSON
    # so trajectories across commits stay comparable.
    results = {"environment": environment_info()}
    for operation in operations:
        for frame_bytes in (64, 1500, 9000):
            gbps_result = runner.run(
                f"{operation.name}/{frame_bytes}B/gbps",
                lambda _i, op=operation, fb=frame_bytes: model.measure(
                    op, fb, noisy=True
                ).throughput_gbps,
                unit="Gbit/s",
            )
            mpps_samples = [
                model.measure(operation, frame_bytes, noisy=True).packet_rate_mpps
                for _ in range(10)
            ]
            mpps = summarize(mpps_samples)
            rows.append(
                [
                    operation.name,
                    frame_bytes,
                    gbps_result.summary.format("Gbit/s"),
                    mpps.format("Mpkt/s"),
                    f"{PAPER_GBPS[frame_bytes]:.1f} / {PAPER_MPPS[frame_bytes]:.1f}",
                    model.measure(operation, frame_bytes).bottleneck,
                ]
            )
            results[f"{operation.name}_{frame_bytes}"] = {
                "throughput_gbps": gbps_result.summary.mean,
                "packet_rate_mpps": mpps.mean,
            }

    table = format_table(
        ["operation", "frame size [B]", "throughput", "packet rate",
         "paper (Gbit/s / Mpkt/s)", "bottleneck"],
        rows,
        title="Figure 4 — throughput with the switch performing various operations",
    )
    emit_result("figure4_throughput", table)
    save_results_json(RESULTS_DIR / "figure4_throughput.json", results)

    # The benchmarked operation: one full Figure 4 model evaluation.
    benchmark(model.figure4, operations)

    # Shape assertions: programs indistinguishable, jumbo at line rate.
    assert results["encode_9000"]["throughput_gbps"] > 98
    assert abs(
        results["encode_1500"]["throughput_gbps"] - results["no_op_1500"]["throughput_gbps"]
    ) < 2.0
    assert not encoder.pipeline.uses_forbidden_features
    assert not decoder.pipeline.uses_forbidden_features


def _chunk_frames(count: int, transform: GDTransform) -> list:
    rng = random.Random(7)
    code = transform.code
    frames = []
    for _ in range(count):
        basis = rng.getrandbits(code.k)
        body = code.encode(basis) ^ (1 << rng.randrange(code.n))
        chunk = ((rng.getrandbits(1) << code.n) | body).to_bytes(32, "big")
        frames.append(
            EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, chunk).to_bytes()
        )
    return frames


def test_functional_model_encode_packet_rate(benchmark):
    """Packets/second of the Python encoder model (not a line-rate claim)."""
    transform = GDTransform(order=8)
    encoder = ZipLineEncoderSwitch(transform=transform, forwarding={0: 1})
    encoder.switch.attach_port(1, lambda data, time: None)
    frames = _chunk_frames(200, transform)

    def push_all():
        for frame in frames:
            encoder.receive(frame, ingress_port=0)
        return encoder.switch.total_rx_packets()

    benchmark(push_all)


def test_functional_model_noop_packet_rate(benchmark):
    """Packets/second of plain forwarding through the model (baseline cost)."""
    transform = GDTransform(order=8)
    encoder = ZipLineEncoderSwitch(transform=transform, forwarding={0: 1})
    encoder.switch.attach_port(1, lambda data, time: None)
    frame = EthernetFrame(DST, SRC, EtherType.IPV4, b"x" * 50).to_bytes()
    frames = [frame] * 200

    def push_all():
        for raw in frames:
            encoder.receive(raw, ingress_port=0)
        return True

    benchmark(push_all)
