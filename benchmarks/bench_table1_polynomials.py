"""Table 1: generator polynomials for Hamming codes and CRC-m parameters.

Regenerates every row of Table 1 from the registry, validates that each
polynomial is primitive (i.e. actually usable as a Hamming generator), and
benchmarks the construction of the syndrome lookup tables — the work the
paper does offline with a C++/Boost.CRC program before compiling the P4
program.
"""

import pytest

from repro.analysis.reporting import format_table, save_results_json
from repro.core.hamming import HammingCode
from repro.core.polynomials import PAPER_ERRATA, TABLE_1, render_table_1

from benchmarks.conftest import RESULTS_DIR, emit_result


def _table1_rows():
    rows = []
    for index, entry in enumerate(TABLE_1):
        rows.append(
            [
                f"({entry.n}, {entry.k})",
                entry.polynomial_text,
                f"0x{entry.crc_parameter:X}",
                f"0x{entry.paper_crc_parameter:X}",
                "erratum" if index in PAPER_ERRATA else "match",
                str(entry.is_valid_hamming_generator()),
            ]
        )
    return rows


def test_table1_regeneration(benchmark):
    """Regenerate Table 1 and benchmark syndrome-table construction (m = 8)."""
    # The hot operation: building the (255, 247) code with its 256-entry
    # syndrome lookup table, which is what the offline table generator does.
    code = benchmark(HammingCode, 8)
    assert code.n == 255 and code.k == 247

    rows = _table1_rows()
    table = format_table(
        ["Code", "Generator polynomial", "CRC-m (derived)", "CRC-m (paper)", "status", "primitive"],
        rows,
        title="Table 1 — Hamming generator polynomials and CRC-m parameters",
    )
    emit_result("table1_polynomials", table + "\n\n" + render_table_1(include_validity=True))
    save_results_json(
        RESULTS_DIR / "table1_polynomials.json",
        {
            f"({entry.n},{entry.k})#{index}": {
                "polynomial": entry.polynomial_text,
                "crc_parameter": entry.crc_parameter,
                "paper_crc_parameter": entry.paper_crc_parameter,
                "primitive": entry.is_valid_hamming_generator(),
            }
            for index, entry in enumerate(TABLE_1)
        },
    )
    # every polynomial in the registry must be a valid Hamming generator
    assert all(entry.is_valid_hamming_generator() for entry in TABLE_1)


@pytest.mark.parametrize("order", [3, 4, 5, 6, 7, 8, 9, 10])
def test_syndrome_table_construction_cost(benchmark, order):
    """Construction cost of each Table 1 code (grows with 2^m)."""
    code = benchmark(HammingCode, order)
    assert code.m == order
