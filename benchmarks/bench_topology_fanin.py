"""K-sender fan-in through one shared ZipLine encoder.

The deployment scenario the paper motivates — many senders sharing a
datacenter path through one in-network compressor — expressed as the
``fan-in`` topology preset: K concurrent flows (each with its own workload
stream and derived seed) through a single encoder, one measured 100 GbE
link and one decoder.  The benchmark guards three properties:

* **ratio invariance** — the aggregate compression ratio on the shared
  link equals the single-flow static ratio (the dictionary serves all
  senders; Figure 3's 0.094 must not degrade under fan-in);
* **aggregate throughput** — the engine sustains a floor of simulated
  chunks per wall-clock second across all flows (scaled for CI smoke);
* **determinism** — the same spec and seed produce byte-identical reports.

Results land in ``benchmarks/results/topology_fanin.{txt,json}``.  Set
``REPRO_BENCH_SMOKE=1`` for the scaled-down CI smoke mode.
"""

import os
import time

from repro.analysis.reporting import format_table, save_results_json
from repro.replay import FixedRatePacing, ReplayHarness, WorkloadTraceSource
from repro.topology import TopologyEngine, fan_in_topology
from repro.workloads import SyntheticSensorWorkload

from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
SENDERS = 4 if SMOKE else 8
CHUNKS_PER_FLOW = 500 if SMOKE else 5_000
BASES_PER_FLOW = 4 if SMOKE else 16
SEED = 2020

#: Wall-clock throughput floor (chunks replayed per second across all
#: flows, including both switch pipelines, link emulation and the per-flow
#: integrity check).  Deliberately conservative: this guards against
#: order-of-magnitude regressions, not machine variance.
THROUGHPUT_FLOOR_CHUNKS_PER_S = 2_000


def _build_spec():
    return fan_in_topology(
        senders=SENDERS,
        chunks=CHUNKS_PER_FLOW,
        bases=BASES_PER_FLOW,
        scenario="static",
        seed=SEED,
    )


def _single_flow_static_ratio():
    """The reference ratio: one flow of the same shape through the harness."""
    workload = SyntheticSensorWorkload(
        num_chunks=CHUNKS_PER_FLOW, distinct_bases=BASES_PER_FLOW, seed=SEED
    )
    harness = ReplayHarness(scenario="static", static_bases=workload.bases())
    report = harness.run(
        WorkloadTraceSource(workload), FixedRatePacing(packet_rate=1e6)
    )
    assert report.integrity.lossless_in_order
    return report.compression_ratio


def test_topology_fanin(benchmark):
    """Fan-in smoke: aggregate throughput + unchanged compression ratio."""
    started = time.perf_counter()
    report = TopologyEngine(_build_spec()).run()
    elapsed = time.perf_counter() - started

    total_chunks = SENDERS * CHUNKS_PER_FLOW
    assert report.chunks_sent == total_chunks
    assert report.integrity.intact
    assert report.integrity.missing == 0
    for flow in report.flows:
        assert flow.integrity.lossless_in_order
        assert flow.delivered == CHUNKS_PER_FLOW

    # Ratio invariance: the shared dictionary compresses the aggregate
    # exactly as well as a single flow (every flow's 32-byte chunks leave
    # as 3-byte type-3 packets once the static table is loaded).
    fan_in_ratio = report.compression_ratio
    single_ratio = _single_flow_static_ratio()
    assert abs(fan_in_ratio - single_ratio) < 1e-9, (
        f"fan-in ratio {fan_in_ratio:.6f} deviates from the single-flow "
        f"static ratio {single_ratio:.6f}"
    )

    throughput = total_chunks / elapsed
    assert throughput >= THROUGHPUT_FLOOR_CHUNKS_PER_S, (
        f"aggregate fan-in throughput {throughput:,.0f} chunks/s fell below "
        f"the {THROUGHPUT_FLOOR_CHUNKS_PER_S:,} floor"
    )

    # Determinism: same spec + seed ⇒ byte-identical report.
    assert TopologyEngine(_build_spec()).run().json_text() == report.json_text()

    table_text = format_table(
        ["metric", "value"],
        [
            ["senders", SENDERS],
            ["chunks per flow", f"{CHUNKS_PER_FLOW:,}"],
            ["aggregate chunks", f"{total_chunks:,}"],
            ["fan-in ratio", f"{fan_in_ratio:.4f}"],
            ["single-flow ratio", f"{single_ratio:.4f}"],
            ["throughput [chunks/s]", f"{throughput:,.0f}"],
            ["intact", "yes"],
        ],
        title=(
            f"fan-in topology ({'smoke' if SMOKE else 'full'} mode, "
            f"{SENDERS} senders)"
        ),
    )
    emit_result("topology_fanin", table_text)
    save_results_json(
        RESULTS_DIR / "topology_fanin.json",
        {
            "senders": SENDERS,
            "chunks_per_flow": CHUNKS_PER_FLOW,
            "fan_in_ratio": fan_in_ratio,
            "single_flow_ratio": single_ratio,
            "throughput_chunks_per_s": throughput,
            "environment": environment_info(),
            "report": report.as_dict(),
        },
    )

    # Hot path under benchmark: one full fan-in run end to end.
    def fan_in_once():
        result = TopologyEngine(_build_spec()).run()
        assert result.integrity.intact
        return result.compression_ratio

    benchmark(fan_in_once)
