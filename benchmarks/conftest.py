"""Shared fixtures and result plumbing for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
paper's testbed (Tofino ASIC, 100 GbE servers) is replaced by functional and
analytical models, the *scale* of some workloads is reduced — each benchmark
documents its scaling factor and keeps the time structure of the original
experiment (see EXPERIMENTS.md).  Reproduced numbers are printed to stdout
and written to ``benchmarks/results/`` as both text and JSON.
"""

from __future__ import annotations

import os
import platform
import sys
from pathlib import Path

import pytest

from repro.workloads import DnsQueryWorkload, SyntheticSensorWorkload

#: Where the reproduced tables/figures are written.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scaled-down workload sizes used by default (the paper-scale numbers are
#: 3,124,000 synthetic chunks and roughly 7 × 10^5 DNS queries).  The number
#: of distinct bases is scaled together with the chunk count so that the
#: basis-discovery phase of the dynamic-learning scenario occupies the same
#: fraction of the trace as at paper scale (B·ln(B)·run_length / N is kept
#: constant); otherwise the scaled run would overstate the learning penalty.
SYNTHETIC_BENCH_CHUNKS = 60_000
SYNTHETIC_BENCH_BASES = 32
DNS_BENCH_QUERIES = 60_000
DNS_BENCH_NAMES = 400

#: Replay rate that preserves the paper's trace duration (3.124 M chunks at
#: the observed ~7 Mpkt/s take ≈ 446 ms on the wire).
PAPER_TRACE_DURATION_S = 3_124_000 / 7.0e6


def environment_info() -> dict:
    """Machine/interpreter metadata embedded in benchmark result JSONs.

    Absolute throughput numbers only mean something next to the machine
    that produced them; every perf-tracking benchmark notes this alongside
    its results so trajectories across commits are comparable.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def emit_result(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    # Write to the real stdout so the output is visible even under capture.
    sys.stdout.write(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def synthetic_workload() -> SyntheticSensorWorkload:
    """Scaled synthetic sensor workload (same generator as the paper-scale one)."""
    return SyntheticSensorWorkload(
        num_chunks=SYNTHETIC_BENCH_CHUNKS,
        distinct_bases=SYNTHETIC_BENCH_BASES,
        seed=2020,
    )


@pytest.fixture(scope="session")
def synthetic_chunks(synthetic_workload):
    """The synthetic chunk list, generated once per session."""
    return synthetic_workload.chunks()


@pytest.fixture(scope="session")
def dns_workload() -> DnsQueryWorkload:
    """Scaled DNS workload (statistical stand-in for the campus trace)."""
    return DnsQueryWorkload(
        num_queries=DNS_BENCH_QUERIES, distinct_names=DNS_BENCH_NAMES, seed=2016
    )


@pytest.fixture(scope="session")
def dns_chunks(dns_workload):
    """The filtered 32-byte DNS chunks, generated once per session."""
    return dns_workload.chunks()
