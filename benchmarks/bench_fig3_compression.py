"""Figure 3: resulting payload size after processing with ZipLine and gzip.

Regenerates both halves of Figure 3 — the synthetic sensor dataset and the
(synthetic stand-in for the) campus DNS dataset — for the four scenarios the
paper measures:

* *Original data* (the no-op reference, ratio 1.00);
* *No table* — GD applied, dictionary never consulted (paper: 1.03);
* *Static table* — every basis preloaded (paper: 0.09; DNS n/a);
* *Dynamic learning* — bases learned during the replay with the measured
  1.77 ms control-plane latency (paper: 0.11 synthetic, 0.10 DNS);
* *Gzip* — whole-file DEFLATE over the concatenated payloads
  (paper: 0.09 synthetic, 0.08 DNS).

The workloads are scaled down (see ``benchmarks/conftest.py``); the replay
rate is scaled with them so the trace duration — and therefore the relative
weight of the learning delay — matches the paper's experiment.  The
benchmarked hot path is GD encoding of the full synthetic trace.
"""

from typing import Dict, List

from repro.analysis.reporting import (
    ComparisonRow,
    comparison_table,
    format_table,
    horizontal_bars,
    save_results_json,
)
from repro.core.codec import GDCodec
from repro.core.encoder import EncoderMode
from repro.workloads import ChunkTrace

from benchmarks.conftest import PAPER_TRACE_DURATION_S, RESULTS_DIR, emit_result

#: Paper values for the annotation column.
PAPER_RATIOS = {
    "synthetic": {
        "Original data": 1.00,
        "No table": 1.03,
        "Static table": 0.09,
        "Dynamic learning": 0.11,
        "Gzip": 0.09,
    },
    "dns": {
        "Original data": 1.00,
        "No table": 1.03,
        "Static table": None,  # n/a in the paper
        "Dynamic learning": 0.10,
        "Gzip": 0.08,
    },
}

#: The paper's measured control-plane learning delay (seconds).
LEARNING_DELAY_S = 1.77e-3


def _codec(mode, bases=None, learning_delay_chunks=0) -> GDCodec:
    return GDCodec(
        order=8,
        identifier_bits=15,
        mode=mode,
        static_bases=bases,
        alignment_padding_bits=8,
        learning_delay_chunks=learning_delay_chunks,
    )


def _learning_delay_chunks(num_chunks: int) -> int:
    """Learning delay expressed in chunks at the scaled replay rate."""
    packet_rate = num_chunks / PAPER_TRACE_DURATION_S
    return round(LEARNING_DELAY_S * packet_rate)


def _scenario_ratios(chunks: List[bytes], bases: List[int], include_static: bool) -> Dict[str, float]:
    data = b"".join(chunks)
    ratios: Dict[str, float] = {"Original data": 1.0}
    ratios["No table"] = _codec(EncoderMode.NO_TABLE).compress(data).compression_ratio
    if include_static:
        ratios["Static table"] = (
            _codec(EncoderMode.STATIC, bases=bases).compress(data).compression_ratio
        )
    ratios["Dynamic learning"] = (
        _codec(
            EncoderMode.DYNAMIC,
            learning_delay_chunks=_learning_delay_chunks(len(chunks)),
        )
        .compress(data)
        .compression_ratio
    )
    # The gzip bar comes from the registry's streaming engine: same DEFLATE
    # algorithm and gzip container as the paper's command-line run, but the
    # trace streams through without materialising the concatenation.
    ratios["Gzip"] = ChunkTrace(chunks, name="fig3").compression_ratio_with("gzip")
    return ratios


def _emit_dataset(name: str, ratios: Dict[str, float], total_bytes: int) -> None:
    paper = PAPER_RATIOS[name]
    rows = []
    for label, ratio in ratios.items():
        paper_value = paper.get(label)
        rows.append(
            ComparisonRow(
                label=f"{label} ({name})",
                paper_value=paper_value,
                reproduced_value=ratio,
            )
        )
    bars = horizontal_bars(
        {label: ratio * total_bytes / 1e6 for label, ratio in ratios.items()},
        unit="MB",
        annotate={
            label: f"ratio {ratio:.2f}"
            + (f" (paper {paper[label]:.2f})" if paper.get(label) is not None else " (paper n/a)")
            for label, ratio in ratios.items()
        },
    )
    emit_result(
        f"figure3_{name}",
        comparison_table(rows, title=f"Figure 3 ({name}) — compression ratios")
        + "\n\n"
        + bars,
    )
    save_results_json(RESULTS_DIR / f"figure3_{name}.json", ratios)


def test_figure3_synthetic(benchmark, synthetic_workload, synthetic_chunks):
    """Synthetic dataset half of Figure 3 (benchmarks the GD encoder)."""
    chunks = synthetic_chunks
    data = b"".join(chunks)

    # Hot path under benchmark: static-table GD encoding of the whole trace.
    def encode_all():
        codec = _codec(EncoderMode.STATIC, bases=synthetic_workload.bases())
        return codec.compress(data).compression_ratio

    static_ratio = benchmark(encode_all)

    ratios = _scenario_ratios(chunks, synthetic_workload.bases(), include_static=True)
    ratios["Static table"] = static_ratio
    _emit_dataset("synthetic", ratios, total_bytes=len(data))

    assert ratios["No table"] > 1.0
    assert 0.08 < ratios["Static table"] < 0.11
    assert ratios["Static table"] < ratios["Dynamic learning"] < ratios["No table"]
    assert ratios["Gzip"] < 0.2


def test_figure3_dns(benchmark, dns_workload, dns_chunks):
    """DNS dataset half of Figure 3 (benchmarks dynamic GD encoding)."""
    chunks = dns_chunks
    data = b"".join(chunks)

    def encode_dynamic():
        codec = _codec(
            EncoderMode.DYNAMIC,
            learning_delay_chunks=_learning_delay_chunks(len(chunks)),
        )
        return codec.compress(data).compression_ratio

    dynamic_ratio = benchmark(encode_dynamic)

    ratios = _scenario_ratios(chunks, bases=[], include_static=False)
    ratios["Dynamic learning"] = dynamic_ratio
    _emit_dataset("dns", ratios, total_bytes=dns_workload.query_bytes())

    assert ratios["No table"] > 1.0
    assert ratios["Dynamic learning"] < 0.15
    assert ratios["Gzip"] < ratios["Dynamic learning"]


def test_figure3_roundtrip_integrity(benchmark, synthetic_chunks):
    """Decompression of the Figure 3 traffic is bit exact (and benchmarked)."""
    data = b"".join(synthetic_chunks[:10_000])
    codec = _codec(EncoderMode.DYNAMIC)
    result = codec.compress(data)

    def decode_all():
        return codec.decompress_records(result.records, original_bytes=len(data))

    restored = benchmark(decode_all)
    assert restored == data
