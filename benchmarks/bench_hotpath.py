"""Hot-path trajectory benchmark: the fused GD fast path, tracked PR over PR.

The paper's whole pitch is compression *at line speed*; this benchmark is
the reproduction's speedometer.  It measures the layers the fused fast path
rebuilt and asserts both directions of the contract:

* **correctness** — the fast path is bit-identical to the reference path
  (``GDTransform(fast=False)`` / the interpreted switch pipeline) on every
  workload it times;
* **performance** — machine-independent *speedup ratios* (fast vs reference
  on the same machine, same run) must not regress.  Absolute numbers go
  into the results JSON next to the machine/Python metadata; the committed
  trajectory lives in ``BENCH_hotpath.json`` at the repository root, and
  the assertions fail when a ratio drops more than 30 % below the
  committed baseline.

Measured stages:

1. *transform microbench* — ``split_batch_fields`` (lane-fused) vs the
   reference per-chunk ``split`` (the pre-PR hot loop);
2. *codec end to end* — ``GDCodec.compress``/``decompress_records`` over
   the synthetic sensor workload, with a round-trip assertion;
3. *switch encode* — the Figure 4 functional scenario (raw-chunk frames
   through ``ZipLineEncoderSwitch``), compiled fast path vs interpreted
   pipeline, with byte-identical output asserted;
4. *backend matrix* — every available codec backend (``pure``, ``numpy``
   when installed) over the same corpus: whole-buffer field split,
   columnar batch split, bulk parity, batch join, whole-buffer batch CRC
   (``crc_batch``) and the batched container pipeline
   (``codec_compress_batch`` / ``codec_decompress_batch``).  Each
   backend's output is asserted bit-identical to ``pure`` before it is
   timed, and the numpy-vs-pure batch speedups are guarded by hard floors
   plus the committed same-backend generations in ``BENCH_hotpath.json``.

``REPRO_BENCH_BACKENDS`` (comma-separated names) restricts the backend
matrix — ``repro bench --suite hotpath --backend numpy`` sets it.  The
legacy fast-vs-reference stages always run on the ``pure`` backend so
their ratios stay comparable with the backend-less committed baseline;
guards only ever compare generations recorded for the same backend.

``REPRO_BENCH_SMOKE=1`` scales the workloads down for CI; the equivalence
checks and the regression guards hold in both modes.
"""

import dataclasses
import json
import os
import random
import time
from pathlib import Path

from repro.analysis.reporting import format_table, save_results_json
from repro.core import backends as codec_backends
from repro.core.codec import GDCodec
from repro.core.transform import GDTransform
from repro.net.ethernet import EthernetFrame
from repro.net.mac import MacAddress
from repro.workloads import SyntheticSensorWorkload
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
CHUNKS = 4_000 if SMOKE else 20_000
FRAMES = 200  # the Figure 4 functional batch size
FRAME_ROUNDS = 3 if SMOKE else 10
REPEATS = 3

#: Committed speedup trajectory (see docs/performance.md).
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: A current ratio below ``(1 - TOLERANCE) * baseline`` fails the bench.
REGRESSION_TOLERANCE = 0.30

#: Machine-independent hard floors, far below the measured ratios, so a
#: fast path that silently stops being fast fails even without a baseline.
MIN_TRANSFORM_SPEEDUP = 3.0
MIN_SWITCH_SPEEDUP = 1.8

#: The vectorized backend must beat the pure batch path by at least this
#: much on the columnar split (the acceptance criterion is 5x over the
#: committed absolute baseline; the measured ratio is ~8x).
MIN_NUMPY_BATCH_SPEEDUP = 3.0

#: The batched end-to-end compress on the numpy backend must reach at
#: least this multiple of the committed ``codec_compress_mbps`` absolute
#: baseline (12.3 MB/s → floor 49.2 MB/s; measured ~65 MB/s).
MIN_NUMPY_COMPRESS_VS_COMMITTED = 4.0

#: Optional comma-separated backend filter (set by ``repro bench --backend``).
BACKEND_FILTER = os.environ.get("REPRO_BENCH_BACKENDS", "")

DST = MacAddress("02:00:00:00:00:02")
SRC = MacAddress("02:00:00:00:00:01")


def _best_seconds(function, repeats=REPEATS):
    """Best-of-N wall time of ``function()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _chunk_buffer():
    """The synthetic sensor trace as one contiguous chunk buffer."""
    workload = SyntheticSensorWorkload(
        num_chunks=CHUNKS, distinct_bases=32, seed=2020
    )
    return b"".join(workload.chunks())


def _chunk_frames(transform, count):
    """Raw-chunk Ethernet frames, as in the Figure 4 functional benchmark."""
    rng = random.Random(7)
    code = transform.code
    frames = []
    for _ in range(count):
        basis = rng.getrandbits(code.k)
        body = code.encode(basis) ^ (1 << rng.randrange(code.n))
        chunk = ((rng.getrandbits(1) << code.n) | body).to_bytes(32, "big")
        frames.append(EthernetFrame(DST, SRC, ETHERTYPE_RAW_CHUNK, chunk).to_bytes())
    return frames


def _load_trajectory():
    """The committed trajectory document, or ``{}`` when absent."""
    if not TRAJECTORY_PATH.exists():
        return {}
    return json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))


def _load_baseline():
    """The committed trajectory baseline, or ``None`` when absent."""
    return _load_trajectory().get("baseline") or None


def _selected_backends():
    """Available backends to bench, after the ``REPRO_BENCH_BACKENDS`` filter.

    ``pure`` is always measured — it is the denominator of every backend
    ratio — so a filter only restricts the *accelerated* backends.
    """
    available = codec_backends.available_backend_names()
    if not BACKEND_FILTER.strip():
        return available
    requested = [name.strip() for name in BACKEND_FILTER.split(",") if name.strip()]
    for name in requested:
        assert name in codec_backends.backend_names(), (
            f"REPRO_BENCH_BACKENDS names unknown backend {name!r}; "
            f"registered: {', '.join(codec_backends.backend_names())}"
        )
        assert name in available, (
            f"REPRO_BENCH_BACKENDS names unavailable backend {name!r}: "
            f"{codec_backends.get_backend(name).availability_detail()}"
        )
    selected = [name for name in available if name in requested]
    if "pure" not in selected:
        selected.insert(0, "pure")
    return selected


def _join_batch(transform, prefixes, bases, deviations):
    """Batch join through the transform's backend (decode direction)."""
    backend = transform.backend_impl
    if backend.accelerated and backend.supports_join(transform):
        return backend.join_batch_to_bytes(transform, prefixes, bases, deviations)
    return transform._join_batch_to_bytes_local(prefixes, bases, deviations)


def _guard(label, current, baseline_value):
    """Fail when ``current`` regressed >30 % below the committed baseline."""
    if baseline_value is None:
        return
    floor = (1.0 - REGRESSION_TOLERANCE) * baseline_value
    assert current >= floor, (
        f"{label} regressed: {current:.2f} vs committed baseline "
        f"{baseline_value:.2f} (floor {floor:.2f})"
    )


def test_hotpath_trajectory():
    """Measure fast vs reference, assert equivalence and guard the ratios."""
    data = _chunk_buffer()
    total_bytes = len(data)
    # The legacy stages are pinned to the pure backend: their committed
    # baseline ratios predate the backend registry and were measured on
    # the fused pure-Python path, so that is what they keep guarding.
    fast_transform = GDTransform(order=8, fast=True, backend="pure")
    reference_transform = GDTransform(order=8, fast=False, backend="pure")
    chunk_bytes = fast_transform.chunk_bytes

    # -- 1. transform microbench (encode direction) ------------------------
    fast_fields = fast_transform.split_batch_fields(data)
    reference_fields = [
        reference_transform.split_fields(data[offset : offset + chunk_bytes])
        for offset in range(0, total_bytes, chunk_bytes)
    ]
    assert fast_fields == reference_fields, "fast transform diverged from reference"

    fast_seconds = _best_seconds(lambda: fast_transform.split_batch_fields(data))
    reference_seconds = _best_seconds(
        lambda: [
            reference_transform.split_fields(data[offset : offset + chunk_bytes])
            for offset in range(0, total_bytes, chunk_bytes)
        ],
        repeats=1 if SMOKE else 2,
    )
    transform_fast_mbps = total_bytes / fast_seconds / 1e6
    transform_reference_mbps = total_bytes / reference_seconds / 1e6
    transform_speedup = transform_fast_mbps / transform_reference_mbps

    # decode direction: join the whole batch back, both paths, and verify
    # the transform round-trips bit for bit.
    rejoined = b"".join(
        fast_transform.join_fields_fast(prefix, basis, deviation).to_bytes(
            chunk_bytes, "big"
        )
        for prefix, basis, deviation in fast_fields
    )
    assert rejoined == data, "fast round trip is not bit-identical"
    join_fast_seconds = _best_seconds(
        lambda: [
            fast_transform.join_fields_fast(prefix, basis, deviation)
            for prefix, basis, deviation in fast_fields
        ]
    )
    join_fast_mbps = total_bytes / join_fast_seconds / 1e6

    # -- 2. codec end to end ----------------------------------------------
    codec = GDCodec(order=8, identifier_bits=15)
    compress_seconds = _best_seconds(
        lambda: GDCodec(order=8, identifier_bits=15).compress(data), repeats=REPEATS
    )
    result = codec.compress(data)
    decoder_codec = codec.clone()
    decompress_seconds = _best_seconds(
        lambda: codec.clone().decompress_records(
            result.records, original_bytes=total_bytes
        )
    )
    restored = decoder_codec.decompress_records(
        result.records, original_bytes=total_bytes
    )
    assert restored == data, "codec round trip is not bit-identical"
    codec_compress_mbps = total_bytes / compress_seconds / 1e6
    codec_decompress_mbps = total_bytes / decompress_seconds / 1e6

    # -- 3. switch encode (the Figure 4 functional scenario) ---------------
    frames = _chunk_frames(fast_transform, FRAMES)

    def run_switch(fast):
        switch = ZipLineEncoderSwitch(
            transform=GDTransform(order=8), forwarding={0: 1}, fast=fast
        )
        outputs = []
        switch.switch.attach_port(1, lambda frame, _time: outputs.append(frame))

        def push_all():
            for frame in frames:
                switch.receive(frame, ingress_port=0)

        seconds = _best_seconds(push_all, repeats=FRAME_ROUNDS) / 1  # per round
        return outputs[: len(frames)], len(frames) / seconds

    fast_outputs, switch_fast_pps = run_switch(True)
    reference_outputs, switch_reference_pps = run_switch(False)
    assert fast_outputs == reference_outputs, "switch fast path diverged"
    switch_speedup = switch_fast_pps / switch_reference_pps

    # -- 4. backend matrix --------------------------------------------------
    backend_names = _selected_backends()
    backend_results = {}
    pure_bases = [basis for _, basis, _ in fast_fields]
    pure_parities = list(fast_transform.code.parities_of_bases(pure_bases))
    # Whole-buffer batch CRC reference: the switch fast path's chunk CRC
    # (plain remainder over one chunk width), pure fold.
    crc_record_bits = 8 * chunk_bytes
    pure_crcs = fast_transform.code.crc_engine.compute_batch_pure(
        data, crc_record_bits
    )
    # Batched container reference: the eager per-record serialisation —
    # every backend's batch pipeline must produce these exact bytes.
    eager_codec = GDCodec(order=8, identifier_bits=15, backend="pure")
    eager_result = eager_codec.compress(data)
    eager_container = eager_codec.to_container(
        dataclasses.replace(eager_result, records=tuple(eager_result.records))
    )
    for name in backend_names:
        transform = GDTransform(order=8, backend=name)
        # correctness before timing: every backend must reproduce the
        # pure fields, parities and joined bytes on the bench corpus.
        fields = transform.split_batch_fields(data)
        assert fields == fast_fields, f"backend {name!r} fields diverged from pure"
        columns = transform.split_batch_columns(data)
        assert columns.fields() == fast_fields, (
            f"backend {name!r} columnar split diverged from pure"
        )
        prefixes = [prefix for prefix, _, _ in fields]
        deviations = [deviation for _, _, deviation in fields]
        parities = list(
            transform.code.parities_of_bases(
                pure_bases, backend=transform.backend_impl
            )
        )
        assert parities == pure_parities, f"backend {name!r} parities diverged"
        joined = _join_batch(transform, prefixes, pure_bases, deviations)
        assert joined == data, f"backend {name!r} batch join is not bit-identical"

        fields_seconds = _best_seconds(lambda: transform.split_batch_fields(data))
        batch_seconds = _best_seconds(lambda: transform.split_batch_columns(data))
        parity_seconds = _best_seconds(
            lambda: transform.code.parities_of_bases(
                pure_bases, backend=transform.backend_impl
            )
        )
        join_seconds = _best_seconds(
            lambda: _join_batch(transform, prefixes, pure_bases, deviations)
        )

        # batch CRC: one whole-buffer call, bit-identical to the pure fold.
        crc_engine = transform.code.crc_engine
        batch_crcs = crc_engine.compute_batch(data, crc_record_bits, backend=name)
        assert batch_crcs == pure_crcs, f"backend {name!r} batch CRCs diverged"
        crc_seconds = _best_seconds(
            lambda: crc_engine.compute_batch(data, crc_record_bits, backend=name)
        )

        # batched codec pipeline: compress (timed like the committed
        # ``codec_compress`` baseline), then the container pack and the
        # columnar container decode, all equality-asserted before timing.
        codec = GDCodec(order=8, identifier_bits=15, backend=name)
        blob = codec.to_container(codec.compress(data))
        assert blob == eager_container, (
            f"backend {name!r} batched container diverged from the "
            "per-record serialisation"
        )
        assert (
            GDCodec(order=8, identifier_bits=15, backend=name).decompress_container(
                blob
            )
            == data
        ), f"backend {name!r} batched container round trip failed"
        compress_batch_seconds = _best_seconds(
            lambda: GDCodec(order=8, identifier_bits=15, backend=name).compress(data)
        )
        decompress_batch_seconds = _best_seconds(
            lambda: GDCodec(
                order=8, identifier_bits=15, backend=name
            ).decompress_container(blob)
        )

        backend_results[name] = {
            "transform_fields_mbps": total_bytes / fields_seconds / 1e6,
            "transform_batch_mbps": total_bytes / batch_seconds / 1e6,
            "parity_batch_mparities_per_s": len(pure_bases) / parity_seconds / 1e6,
            "join_batch_mbps": total_bytes / join_seconds / 1e6,
            "crc_batch_mbps": total_bytes / crc_seconds / 1e6,
            "codec_compress_batch_mbps": total_bytes / compress_batch_seconds / 1e6,
            "codec_decompress_batch_mbps": (
                total_bytes / decompress_batch_seconds / 1e6
            ),
        }
    pure_batch_mbps = backend_results["pure"]["transform_batch_mbps"]
    pure_metrics = backend_results["pure"]
    for name, metrics in backend_results.items():
        metrics["batch_speedup_vs_pure"] = (
            metrics["transform_batch_mbps"] / pure_batch_mbps
        )
        metrics["crc_batch_speedup_vs_pure"] = (
            metrics["crc_batch_mbps"] / pure_metrics["crc_batch_mbps"]
        )
        metrics["compress_batch_speedup_vs_pure"] = (
            metrics["codec_compress_batch_mbps"]
            / pure_metrics["codec_compress_batch_mbps"]
        )
        metrics["decompress_batch_speedup_vs_pure"] = (
            metrics["codec_decompress_batch_mbps"]
            / pure_metrics["codec_decompress_batch_mbps"]
        )

    # -- report -------------------------------------------------------------
    results = {
        "environment": environment_info(),
        "smoke": SMOKE,
        "chunks": CHUNKS,
        "transform_fast_mbps": transform_fast_mbps,
        "transform_reference_mbps": transform_reference_mbps,
        "transform_speedup": transform_speedup,
        "join_fast_mbps": join_fast_mbps,
        "codec_compress_mbps": codec_compress_mbps,
        "codec_decompress_mbps": codec_decompress_mbps,
        "switch_fast_pps": switch_fast_pps,
        "switch_reference_pps": switch_reference_pps,
        "switch_speedup": switch_speedup,
        "backends": backend_results,
    }
    rows = [
        ["transform split (fused)", f"{transform_fast_mbps:.1f} MB/s",
         f"{transform_speedup:.1f}x vs reference"],
        ["transform split (reference)", f"{transform_reference_mbps:.1f} MB/s", "1.0x"],
        ["transform join (fused)", f"{join_fast_mbps:.1f} MB/s", ""],
        ["codec compress", f"{codec_compress_mbps:.1f} MB/s", ""],
        ["codec decompress", f"{codec_decompress_mbps:.1f} MB/s", ""],
        ["switch encode (compiled)", f"{switch_fast_pps:,.0f} pkt/s",
         f"{switch_speedup:.1f}x vs interpreted"],
        ["switch encode (interpreted)", f"{switch_reference_pps:,.0f} pkt/s", "1.0x"],
    ]
    for name in backend_names:
        metrics = backend_results[name]
        rows.extend(
            [
                [f"[{name}] transform fields",
                 f"{metrics['transform_fields_mbps']:.1f} MB/s", ""],
                [f"[{name}] transform batch",
                 f"{metrics['transform_batch_mbps']:.1f} MB/s",
                 f"{metrics['batch_speedup_vs_pure']:.1f}x vs pure"],
                [f"[{name}] parity batch",
                 f"{metrics['parity_batch_mparities_per_s']:.2f} Mparity/s", ""],
                [f"[{name}] join batch",
                 f"{metrics['join_batch_mbps']:.1f} MB/s", ""],
                [f"[{name}] crc batch",
                 f"{metrics['crc_batch_mbps']:.1f} MB/s",
                 f"{metrics['crc_batch_speedup_vs_pure']:.1f}x vs pure"],
                [f"[{name}] codec compress batch",
                 f"{metrics['codec_compress_batch_mbps']:.1f} MB/s",
                 f"{metrics['compress_batch_speedup_vs_pure']:.1f}x vs pure"],
                [f"[{name}] codec decompress batch",
                 f"{metrics['codec_decompress_batch_mbps']:.1f} MB/s",
                 f"{metrics['decompress_batch_speedup_vs_pure']:.1f}x vs pure"],
            ]
        )
    table = format_table(
        ["stage", "throughput", "speedup"],
        rows,
        title="hot path — fused fast path vs reference",
    )
    emit_result("hotpath", table)
    save_results_json(RESULTS_DIR / "hotpath.json", results)

    # -- guards -------------------------------------------------------------
    assert transform_speedup >= MIN_TRANSFORM_SPEEDUP, (
        f"transform fast path only {transform_speedup:.2f}x over the reference "
        f"(floor {MIN_TRANSFORM_SPEEDUP}x)"
    )
    assert switch_speedup >= MIN_SWITCH_SPEEDUP, (
        f"switch fast path only {switch_speedup:.2f}x over the interpreted "
        f"pipeline (floor {MIN_SWITCH_SPEEDUP}x)"
    )
    if "numpy" in backend_results:
        numpy_speedup = backend_results["numpy"]["batch_speedup_vs_pure"]
        assert numpy_speedup >= MIN_NUMPY_BATCH_SPEEDUP, (
            f"numpy batch split only {numpy_speedup:.2f}x over the pure "
            f"backend (floor {MIN_NUMPY_BATCH_SPEEDUP}x)"
        )
    trajectory = _load_trajectory()
    baseline = trajectory.get("baseline")
    if "numpy" in backend_results and baseline is not None:
        committed_compress = baseline.get("absolute", {}).get("codec_compress_mbps")
        if committed_compress:
            floor = MIN_NUMPY_COMPRESS_VS_COMMITTED * committed_compress
            current = backend_results["numpy"]["codec_compress_batch_mbps"]
            assert current >= floor, (
                f"numpy batched compress only {current:.1f} MB/s; the "
                f"acceptance floor is {MIN_NUMPY_COMPRESS_VS_COMMITTED}x the "
                f"committed {committed_compress} MB/s baseline ({floor:.1f})"
            )
    if baseline is not None:
        ratios = baseline.get("speedups", {})
        # Older baselines predate the backend registry and carry no
        # "backend" key; they guard the pure-pinned legacy stages only.
        # A generation recorded for another backend never judges this run.
        if ratios.get("backend") in (None, "pure"):
            _guard("transform speedup", transform_speedup, ratios.get("transform"))
            _guard("switch speedup", switch_speedup, ratios.get("switch"))
    for generation in trajectory.get("generations", []):
        name = generation.get("backend")
        if name not in backend_results:
            continue  # backend filtered out or unavailable here
        speedups = generation.get("speedups", {})
        for committed_key, metric_key in (
            ("batch_vs_pure", "batch_speedup_vs_pure"),
            ("crc_batch_vs_pure", "crc_batch_speedup_vs_pure"),
            ("compress_batch_vs_pure", "compress_batch_speedup_vs_pure"),
            ("decompress_batch_vs_pure", "decompress_batch_speedup_vs_pure"),
        ):
            _guard(
                f"{name} {committed_key.replace('_', ' ')}",
                backend_results[name][metric_key],
                speedups.get(committed_key),
            )
