"""Observability overhead: disabled tracing must stay off the hot path.

The telemetry layer (:mod:`repro.obs`) instruments the encoder/decoder
switches, the emulated links and the simulator.  The contract is that with
the default :class:`~repro.obs.NullTracer` installed, instrumentation costs
one module-attribute lookup plus one ``enabled`` check per instrumented
branch — nothing else (no argument dicts, no string formatting).  This
benchmark guards that contract on the Figure 4 encoder hot path:

* **disabled overhead** — the measured cost of the guard sequence
  (``_obs.TRACER`` + ``.enabled``), times the guard evaluations per frame,
  must stay at or below 2 % of the per-frame cost of the fast path;
* **byte-identity** — a traced fan-in topology run must produce a report
  byte-identical to the untraced run (tracing observes, never perturbs);
* **sample trace artifact** — the traced run's events are exported as a
  Chrome/Perfetto ``trace_event`` JSON under ``benchmarks/results/`` so CI
  uploads a trace that can be dropped straight into ui.perfetto.dev.

Set ``REPRO_BENCH_SMOKE=1`` for the scaled-down CI smoke mode.
"""

import os
import time
import timeit

from repro import obs
from repro.analysis.reporting import format_table, save_results_json
from repro.core.transform import GDTransform
from repro.topology import preset_topology, run_topology
from repro.zipline.encoder_switch import ZipLineEncoderSwitch

from benchmarks.bench_fig4_throughput import _chunk_frames
from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FRAMES = 2_000 if SMOKE else 20_000
REPEATS = 3 if SMOKE else 5
GUARD_SAMPLES = 200_000 if SMOKE else 1_000_000

#: Guard evaluations per frame on the functional-mode encoder fast path:
#: one ``_obs.TRACER``/``.enabled`` pair in ``_fast_receive``.  (The switch
#: transmit guard is behind the simulator check and the link/simulator
#: guards are not on this path.)
GUARDS_PER_FRAME = 1

#: Disabled instrumentation may cost at most this fraction of the hot path.
MAX_DISABLED_OVERHEAD = 0.02

#: Traced fan-in run used for the byte-identity check and the sample trace.
TRACE_CHUNKS = 60 if SMOKE else 200
SNAPSHOT_INTERVAL = 1e-5


def _encoder_and_frames():
    transform = GDTransform(order=8)
    encoder = ZipLineEncoderSwitch(transform=transform, forwarding={0: 1})
    encoder.switch.attach_port(1, lambda data, time: None)
    return encoder, _chunk_frames(FRAMES, transform)


def _median_frame_seconds(encoder, frames):
    """Median per-frame wall time over REPEATS pushes of the frame list."""
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        for frame in frames:
            encoder.receive(frame, ingress_port=0)
        samples.append((time.perf_counter() - started) / len(frames))
    return sorted(samples)[len(samples) // 2]


def test_obs_disabled_overhead(benchmark):
    """Guard cost x guards/frame must stay ≤ 2 % of the per-frame cost."""
    assert not obs.TRACER.enabled, "benchmark requires the default NullTracer"

    encoder, frames = _encoder_and_frames()
    frame_seconds = _median_frame_seconds(encoder, frames)

    # The exact sequence every instrumented branch executes when disabled.
    guard_seconds = (
        timeit.timeit("o.TRACER.enabled", globals={"o": obs}, number=GUARD_SAMPLES)
        / GUARD_SAMPLES
    )
    overhead = (GUARDS_PER_FRAME * guard_seconds) / frame_seconds
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {overhead:.2%} of the encoder hot path "
        f"({GUARDS_PER_FRAME} x {guard_seconds * 1e9:.1f} ns guard vs "
        f"{frame_seconds * 1e6:.2f} us/frame), above the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )

    # Byte-identity: tracing observes the run, it never perturbs it.
    spec_kwargs = dict(chunks=TRACE_CHUNKS, bases=4, seed=2020)
    plain = run_topology(preset_topology("fan-in", **spec_kwargs), workers=1)
    started = time.perf_counter()
    tracer = obs.enable(snapshot_interval=SNAPSHOT_INTERVAL)
    try:
        traced = run_topology(preset_topology("fan-in", **spec_kwargs), workers=1)
    finally:
        obs.disable()
    traced_seconds = time.perf_counter() - started
    assert traced.json_text() == plain.json_text(), (
        "traced fan-in report differs from the untraced one"
    )

    # The sample Perfetto trace CI uploads as an artifact.
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    sample_path = RESULTS_DIR / "obs_sample_trace.json"
    records = obs.write_chrome_trace(tracer.sink.events, sample_path)
    assert records == len(tracer.sink.events)

    table_text = format_table(
        ["metric", "value"],
        [
            ["frames", f"{FRAMES:,}"],
            ["frame time (disabled)", f"{frame_seconds * 1e6:.3f} us"],
            ["guard cost", f"{guard_seconds * 1e9:.1f} ns"],
            ["disabled overhead", f"{overhead:.3%} (budget "
                                  f"{MAX_DISABLED_OVERHEAD:.0%})"],
            ["traced fan-in run", f"{traced_seconds:.3f} s, "
                                  f"{records:,} events"],
            ["report byte-identical", "yes"],
            ["sample trace", str(sample_path.name)],
        ],
        title="observability overhead"
        + (" (smoke mode)" if SMOKE else ""),
    )
    emit_result("obs_overhead", table_text)
    save_results_json(
        RESULTS_DIR / "obs_overhead.json",
        {
            "mode": "smoke" if SMOKE else "full",
            "frames": FRAMES,
            "frame_seconds_disabled": frame_seconds,
            "guard_seconds": guard_seconds,
            "guards_per_frame": GUARDS_PER_FRAME,
            "disabled_overhead_fraction": overhead,
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "traced_run_seconds": traced_seconds,
            "trace_events": records,
            "environment": environment_info(),
        },
    )

    # Hot path under benchmark: the disabled-mode frame push.
    def push_all():
        for frame in frames:
            encoder.receive(frame, ingress_port=0)
        return encoder.switch.total_rx_packets()

    benchmark(push_all)
