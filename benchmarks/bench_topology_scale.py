"""Sharded topology scale: flows/sec, chunks/sec, and bounded memory.

The paper's deployment axis — thousands of hosts behind rack encoders —
runs here as the ``rack-fan-in`` preset through the sharded execution
layer (:func:`repro.topology.run_topology`).  The benchmark guards four
properties:

* **byte-identity** — the ``--workers 4`` report is byte-identical to the
  sequential one (the determinism contract of the sharded engine);
* **throughput trajectory** — flows/sec and chunks/sec land in
  ``benchmarks/results/topology_scale.json`` and are guarded against the
  committed ``BENCH_topology.json`` baseline (machine-independent ratios
  only; absolutes are annotated with the environment);
* **parallel speedup** — on a host with 4+ cores, ``workers=4`` must beat
  sequential by the floor recorded in the trajectory (2x full mode,
  1.1x smoke; skipped on smaller machines where there is nothing to
  parallelise onto);
* **bounded memory** — a streaming-metrics run must allocate measurably
  less than the same run with exact (per-sample) metrics.

Set ``REPRO_BENCH_SMOKE=1`` for the scaled-down CI smoke mode.
"""

import json
import os
import time
import tracemalloc
from pathlib import Path

from repro.analysis.reporting import format_table, save_results_json
from repro.topology import rack_fan_in_topology, run_topology

from benchmarks.conftest import RESULTS_DIR, emit_result, environment_info

#: Scaled down when REPRO_BENCH_SMOKE is set (CI smoke mode).
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
RACKS = 4 if SMOKE else 8
SENDERS_PER_RACK = 4 if SMOKE else 16
CHUNKS_PER_FLOW = 300 if SMOKE else 400
BASES_PER_FLOW = 4 if SMOKE else 8
SEED = 2020
WORKERS = 4

#: Committed scale trajectory (see docs/performance.md).
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_topology.json"

#: A current ratio below ``(1 - TOLERANCE) * baseline`` fails the bench.
REGRESSION_TOLERANCE = 0.30

#: Machine-independent speedup floors, enforced only where 4 workers have
#: 4 cores to land on.  The full-mode floor is the acceptance criterion:
#: 4 independent rack shards must buy at least 2x wall-clock.
SPEEDUP_FLOOR = 1.1 if SMOKE else 2.0

#: Hard absolute floor: even a 1-core sequential run must push more than
#: this many simulated chunks per wall-clock second (order-of-magnitude
#: guard, far below any measured number).
CHUNKS_PER_S_FLOOR = 1_000


def _build_spec():
    return rack_fan_in_topology(
        racks=RACKS,
        senders=SENDERS_PER_RACK,
        chunks=CHUNKS_PER_FLOW,
        bases=BASES_PER_FLOW,
        scenario="static",
        seed=SEED,
    )


def _timed_run(workers):
    started = time.perf_counter()
    report = run_topology(_build_spec(), workers=workers,
                          metrics_mode="streaming")
    return report, time.perf_counter() - started


def _load_baseline():
    """The committed trajectory baseline, or ``None`` when absent."""
    if not TRAJECTORY_PATH.exists():
        return None
    with TRAJECTORY_PATH.open(encoding="utf-8") as handle:
        return json.load(handle).get("baseline")


def _guard(label, current, baseline_value):
    """Fail when ``current`` regressed >30 % below the committed baseline."""
    if baseline_value is None:
        return
    floor = (1.0 - REGRESSION_TOLERANCE) * baseline_value
    assert current >= floor, (
        f"{label} regressed: {current:,.2f} vs committed baseline "
        f"{baseline_value:,.2f} (floor {floor:,.2f})"
    )


def _peak_memory(metrics_mode):
    """Peak allocation of one rack's worth of flows under either mode."""
    spec = rack_fan_in_topology(
        racks=1, senders=SENDERS_PER_RACK, chunks=CHUNKS_PER_FLOW,
        bases=BASES_PER_FLOW, scenario="static", seed=SEED,
    )
    tracemalloc.start()
    report = run_topology(spec, workers=1, metrics_mode=metrics_mode)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert report.integrity.intact
    return peak


def test_topology_scale(benchmark):
    """Sharded rack fan-in: throughput trajectory + byte-identity."""
    total_flows = RACKS * SENDERS_PER_RACK
    total_chunks = total_flows * CHUNKS_PER_FLOW

    sequential_report, sequential_s = _timed_run(workers=1)
    parallel_report, parallel_s = _timed_run(workers=WORKERS)

    assert sequential_report.chunks_sent == total_chunks
    assert sequential_report.integrity.intact
    assert sequential_report.integrity.missing == 0
    # The determinism contract: worker count changes wall-clock only.
    assert parallel_report.json_text() == sequential_report.json_text()

    flows_per_s = total_flows / parallel_s
    chunks_per_s = total_chunks / parallel_s
    sequential_chunks_per_s = total_chunks / sequential_s
    speedup = sequential_s / parallel_s

    assert sequential_chunks_per_s >= CHUNKS_PER_S_FLOOR, (
        f"sequential throughput {sequential_chunks_per_s:,.0f} chunks/s "
        f"fell below the {CHUNKS_PER_S_FLOOR:,} hard floor"
    )

    mode = "smoke" if SMOKE else "full"
    baseline = _load_baseline()
    cores = os.cpu_count() or 1
    if cores >= WORKERS:
        # 4 shards on 4+ cores: the parallel layer must actually pay.
        assert speedup >= SPEEDUP_FLOOR, (
            f"workers={WORKERS} speedup {speedup:.2f}x fell below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host"
        )
        if baseline is not None:
            speedups = baseline.get("speedups", {})
            # Pool overhead weighs differently on the short smoke workload,
            # so the committed speedup only guards runs in the same mode.
            if speedups.get("mode") in (None, mode):
                _guard(
                    f"workers={WORKERS} speedup",
                    speedup,
                    speedups.get("workers4"),
                )
    if baseline is not None and baseline.get("environment", {}).get(
        "cpu_count"
    ) == cores:
        # Absolute chunk rates only mean something on the same shape of
        # machine as the committed baseline.
        _guard(
            "sequential chunks/s",
            sequential_chunks_per_s,
            baseline.get("absolute", {}).get("sequential_chunks_per_s"),
        )

    # Bounded memory: the streaming run must retain no per-sample state
    # (latency lists, tap records, per-chunk pending copies).
    exact_peak = _peak_memory("exact")
    streaming_peak = _peak_memory("streaming")
    assert streaming_peak < 0.9 * exact_peak, (
        f"streaming peak {streaming_peak:,} B is not materially below the "
        f"exact-metrics peak {exact_peak:,} B"
    )

    table_text = format_table(
        ["metric", "value"],
        [
            ["racks x senders", f"{RACKS} x {SENDERS_PER_RACK}"],
            ["flows", f"{total_flows:,}"],
            ["aggregate chunks", f"{total_chunks:,}"],
            ["sequential [s]", f"{sequential_s:.3f}"],
            [f"workers={WORKERS} [s]", f"{parallel_s:.3f}"],
            ["speedup", f"{speedup:.2f}x"],
            ["flows/s", f"{flows_per_s:,.1f}"],
            ["chunks/s", f"{chunks_per_s:,.0f}"],
            ["exact peak [B]", f"{exact_peak:,}"],
            ["streaming peak [B]", f"{streaming_peak:,}"],
            ["byte-identical", "yes"],
        ],
        title=f"topology scale ({mode} mode, {cores} cores)",
    )
    emit_result("topology_scale", table_text)
    save_results_json(
        RESULTS_DIR / "topology_scale.json",
        {
            "mode": mode,
            "racks": RACKS,
            "senders_per_rack": SENDERS_PER_RACK,
            "chunks_per_flow": CHUNKS_PER_FLOW,
            "flows": total_flows,
            "chunks": total_chunks,
            "sequential_s": sequential_s,
            "parallel_s": parallel_s,
            "workers": WORKERS,
            "speedup_workers4": speedup,
            "flows_per_s": flows_per_s,
            "chunks_per_s": chunks_per_s,
            "sequential_chunks_per_s": sequential_chunks_per_s,
            "exact_peak_bytes": exact_peak,
            "streaming_peak_bytes": streaming_peak,
            "environment": environment_info(),
        },
    )

    # Hot path under benchmark: one sharded run end to end.
    def sharded_once():
        report = run_topology(
            _build_spec(), workers=WORKERS, metrics_mode="streaming"
        )
        assert report.integrity.intact
        return report.chunks_sent

    benchmark(sharded_once)
