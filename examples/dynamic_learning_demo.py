#!/usr/bin/env python3
"""Watching the control plane learn a basis, event by event.

The paper measures (1.77 ± 0.08) ms between the first *uncompressed*
(type-2) packet of an unknown basis and the first *compressed* (type-3)
packet — the time the control plane needs to receive the digest, pick an
identifier, install the reverse mapping on the decoding switch and finally
the forward mapping on the encoding switch.

This example sends a burst of identical chunks through the simulated
deployment, prints the control-plane event timeline with timestamps, and
repeats the measurement ten times to report the mean ± 95 % confidence
interval next to the paper's number.

Run with::

    python examples/dynamic_learning_demo.py
"""

from __future__ import annotations

from repro.analysis.statistics import summarize
from repro.controlplane.events import (
    DecoderMappingInstalled,
    DigestReceived,
    EncoderMappingInstalled,
)
from repro.workloads import SyntheticSensorWorkload
from repro.zipline import ZipLineDeployment

PACKETS = 4_000
PACKET_RATE = 1.0e6  # packets per second


def one_measurement(seed: int, verbose: bool = False) -> float:
    """One run of the paper's experiment; returns the learning delay in ms."""
    chunk = SyntheticSensorWorkload(num_chunks=1, distinct_bases=1, seed=seed).chunks()[0]
    deployment = ZipLineDeployment(scenario="dynamic", seed=seed)
    deployment.replay_chunks([chunk] * PACKETS, packet_rate=PACKET_RATE)
    deployment.run()

    if verbose:
        control_plane = deployment.control_plane
        # The *first* digest of each kind matters; later digests for the same
        # basis are ignored while the install is pending.
        digest = control_plane.events.of_type(DigestReceived)[0]
        decoder_install = control_plane.events.of_type(DecoderMappingInstalled)[0]
        encoder_install = control_plane.events.of_type(EncoderMappingInstalled)[0]
        summary = deployment.summary()
        print("control-plane timeline (simulated time):")
        print(f"  t = 0.000 ms  first raw chunk enters the encoding switch")
        print(f"  t = {digest.time * 1e3:6.3f} ms  learn digest delivered to the control plane")
        print(f"  t = {decoder_install.time * 1e3:6.3f} ms  identifier → basis entry active in the decoder")
        print(f"  t = {encoder_install.time * 1e3:6.3f} ms  basis → identifier entry active in the encoder")
        print(
            f"  packets while learning: {summary.uncompressed_packets:,} stayed "
            f"uncompressed, {summary.compressed_packets:,} were compressed afterwards"
        )

    learning_time = deployment.learning_time()
    assert learning_time is not None
    return learning_time * 1e3


def main() -> None:
    print("single run, with the control-plane event timeline:\n")
    first = one_measurement(seed=0, verbose=True)
    print(f"\nmeasured learning delay: {first:.3f} ms\n")

    print("repeating the measurement 10 times (as the paper does)...")
    samples = [one_measurement(seed=seed) for seed in range(1, 11)]
    summary = summarize(samples)
    print(f"reproduced: {summary.format('ms', precision=3)}")
    print("paper:      (1.77 ± 0.08) ms")
    print()
    print(
        "Every packet that shares the basis and arrives inside this window is\n"
        "forwarded as a type-2 packet — that is exactly the gap between the\n"
        "static-table (0.09) and dynamic-learning (0.11) bars of Figure 3."
    )


if __name__ == "__main__":
    main()
