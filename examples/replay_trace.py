#!/usr/bin/env python3
"""Replay a pcap trace through an emulated ZipLine topology.

The tour of :mod:`repro.replay`, the subsystem that turns the switch
models into one experimentable system:

1. generate a sensor-like chunk trace and persist it as a standard pcap
   (nanosecond resolution — readable by tcpdump/Wireshark);
2. stream it through ``source → encoder → emulated link → decoder → sink``
   with dynamic dictionary learning, and verify every delivered payload is
   byte-identical to what was sent;
3. rerun over a *lossy* link (seeded, fully reproducible) and observe the
   counted failure mode: chunks go missing, nothing gets corrupted;
4. print the metrics report: compression on the wire, latency percentiles,
   per-component counters.

The same experiment is one shell command::

    repro generate-trace synthetic trace.pcap --chunks 4000 --bases 8
    repro replay --trace trace.pcap --topology encoder-link-decoder

Run with::

    python examples/replay_trace.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay import FixedRatePacing, PcapTraceSource, ReplayHarness
from repro.workloads import SyntheticSensorWorkload


def main() -> None:
    workload = SyntheticSensorWorkload(num_chunks=4_000, distinct_bases=8, seed=42)
    trace = workload.trace()

    with tempfile.TemporaryDirectory() as tmp:
        pcap_path = Path(tmp) / "sensor_trace.pcap"
        # Nanosecond-resolution pcap: 1 Mpkt/s spacing survives the round trip.
        trace.to_pcap(pcap_path, packet_rate=1e6, nanosecond=True)
        print(f"wrote {len(trace):,} chunk packets to {pcap_path.name}\n")

        # -- loss-free replay with dynamic learning --------------------------
        harness = ReplayHarness(topology="encoder-link-decoder", scenario="dynamic")
        report = harness.run(
            PcapTraceSource(pcap_path), FixedRatePacing(packet_rate=1e6)
        )
        assert report.integrity.lossless_in_order, "loss-free replay must be exact"
        print(report.render(include_counters=False))

        # -- the same trace over a 2 %-loss link ------------------------------
        lossy = ReplayHarness(
            topology="encoder-link-decoder",
            scenario="dynamic",
            impairments=ImpairmentModel(loss_probability=0.02, seed=7),
        )
        lossy_report = lossy.run(
            PcapTraceSource(pcap_path), FixedRatePacing(packet_rate=1e6)
        )
        integrity = lossy_report.integrity
        assert integrity.intact, "loss must never corrupt delivered chunks"
        print(
            f"\nlossy link: {integrity.missing} of {integrity.sent} chunks lost "
            f"(= {lossy_report.metrics.counter('link0.dropped_loss'):.0f} link "
            f"drops), 0 corrupted — a counted failure mode, not silent damage"
        )


if __name__ == "__main__":
    main()
