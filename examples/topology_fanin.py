"""Drive a K-sender fan-in topology from Python.

Builds the ``fan-in`` preset — K concurrent senders, each with its own
deterministically-seeded workload stream, sharing one ZipLine encoder and
one measured 100 GbE link — runs it, and prints the aggregate plus the
per-flow breakdown.  Then reruns it with in-network control messages to
show the control channel's accounting.

Run from the repository root::

    PYTHONPATH=src python examples/topology_fanin.py
"""

from repro.topology import TopologyEngine, fan_in_topology


def main() -> None:
    spec = fan_in_topology(
        senders=4, chunks=2000, bases=6, scenario="static", seed=2020
    )
    report = TopologyEngine(spec).run()
    print(report.render())
    print()
    assert report.integrity.intact
    for flow in report.flows:
        assert flow.integrity.lossless_in_order

    # Same topology, but mapping installs travel the network as control
    # frames over a dedicated emulated link instead of direct table writes.
    spec = fan_in_topology(
        senders=4, chunks=2000, bases=6, scenario="dynamic", seed=2020
    )
    spec.control = "in-network"
    engine = TopologyEngine(spec)
    report = engine.run()
    channel = engine.control_channels["encoder"]
    print(
        f"in-network control: {channel.messages_sent} install messages, "
        f"{channel.message_bytes} bytes on the control link, "
        f"ratio {report.compression_ratio:.4f}"
    )


if __name__ == "__main__":
    main()
