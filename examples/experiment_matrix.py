"""Scenario-matrix sweeps from Python: spec -> sharded runner -> aggregate.

The CLI front-end for this is ``repro experiment --spec ... --workers N``;
this example drives the same engine directly, which is what a plotting
notebook or a parameter-search script would do.

Run with:  PYTHONPATH=src python examples/experiment_matrix.py
"""

from repro.experiments import ExperimentSpec, MatrixRunner

# A declarative sweep: the cross-product of the axes is the scenario
# matrix.  Every parameter is validated, so typos fail at load time.
spec = ExperimentSpec.from_dict(
    {
        "name": "example-sweep",
        "base": {"workload": "synthetic", "chunks": 1000, "bases": 8, "seed": 2020},
        "axes": {
            "scenario": ["no_table", "static", "dynamic"],
            "loss": [0.0, 0.02],
        },
    }
)
print(f"{spec.name}: {spec.matrix_size} scenarios over axes {spec.axis_names}")

# workers=2 shards scenarios across processes; per-scenario deterministic
# seeding makes the result byte-identical to a sequential run.
result = MatrixRunner(spec, workers=2).run()

# One row per scenario, then mean +/- 95% CI grouped per axis value.
print(result.render(group_axes=["scenario"], metric="compression_ratio"))

# Exports for plotting: result.to_csv("sweep.csv"), result.to_json("sweep.json")
ratios = {
    r.scenario_id: r.metric("compression_ratio") for r in result.results
}
best = min(ratios, key=lambda key: ratios[key])
print(f"\nbest compression: {best} at ratio {ratios[best]:.4f}")
