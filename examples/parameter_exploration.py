#!/usr/bin/env python3
"""Choosing GD parameters for your own traffic.

The paper fixes the Hamming order (m = 8) and the identifier width (t = 15)
because of Tofino byte-alignment and memory constraints; a software
deployment — or a different switch generation — can pick other points.  This
example sweeps both parameters over a sensor-style workload and prints:

* the wire formats each configuration implies (chunk, type-2, type-3 sizes,
  padding bits, dictionary capacity);
* the achieved compression ratio and the fraction of chunks compressed;
* the best configuration for this workload under a simple byte-count
  objective.

It also shows how to query Table 1 for the generator polynomial a given
order requires.

Run with::

    python examples/parameter_exploration.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.codec import GDCodec
from repro.core.polynomials import polynomial_for_order
from repro.core.transform import GDTransform
from repro.workloads import SyntheticSensorWorkload
from repro.zipline.headers import ZipLineHeaderSet

ORDERS = (6, 8, 10, 12)
IDENTIFIER_BITS = (7, 15, 23)
CHUNKS_PER_RUN = 4_000
DISTINCT_BASES = 64


def describe_wire_formats() -> None:
    """Print the wire formats implied by each Hamming order."""
    rows = []
    for order in ORDERS:
        transform = GDTransform(order=order)
        headers = ZipLineHeaderSet.build(transform, identifier_bits=15)
        entry = polynomial_for_order(order)
        rows.append(
            [
                order,
                f"({entry.n}, {entry.k})",
                entry.polynomial_text,
                transform.chunk_bytes,
                headers.type2_payload_bytes,
                headers.type3_payload_bytes,
            ]
        )
    print(
        format_table(
            ["m", "Hamming code", "generator polynomial", "chunk [B]",
             "type-2 [B]", "type-3 [B]"],
            rows,
            title="Wire formats by Hamming order (15-bit identifiers)",
        )
    )


def sweep() -> None:
    """Sweep (order, identifier width) and report compression results."""
    rows = []
    best = None
    for order in ORDERS:
        workload = SyntheticSensorWorkload(
            num_chunks=CHUNKS_PER_RUN,
            distinct_bases=DISTINCT_BASES,
            order=order,
            seed=11,
        )
        data = b"".join(workload.chunks())
        for identifier_bits in IDENTIFIER_BITS:
            codec = GDCodec(
                order=order,
                identifier_bits=identifier_bits,
                alignment_padding_bits=8,
            )
            result = codec.compress(data)
            rows.append(
                [
                    order,
                    identifier_bits,
                    1 << identifier_bits,
                    f"{result.compressed_record_fraction:.2f}",
                    f"{result.compression_ratio:.4f}",
                ]
            )
            if best is None or result.compression_ratio < best[2]:
                best = (order, identifier_bits, result.compression_ratio)
    print()
    print(
        format_table(
            ["m", "identifier bits", "dictionary size", "fraction compressed", "ratio"],
            rows,
            title=f"Compression sweep ({CHUNKS_PER_RUN:,} chunks, "
            f"{DISTINCT_BASES} distinct bases per order)",
        )
    )
    assert best is not None
    print()
    print(
        f"best configuration for this workload: m = {best[0]}, "
        f"t = {best[1]} bits (ratio {best[2]:.4f})"
    )
    print(
        "The paper's m = 8 / t = 15 choice is the hardware sweet spot: the\n"
        "largest byte-aligned order and the largest identifier that fits the\n"
        "switch memory, not necessarily the best pure-software point."
    )


def main() -> None:
    describe_wire_formats()
    sweep()


if __name__ == "__main__":
    main()
