#!/usr/bin/env python3
"""Compressing campus DNS queries in the network, vs gzip.

The paper's real-world dataset is a day of DNS queries at a university
campus, filtered to the 34-byte queries addressed to the main resolver with
the random transaction identifier excluded — which leaves exactly one
256-bit chunk per query.  This example:

1. generates a statistically similar query stream (Zipf-skewed names, random
   transaction identifiers);
2. writes a pcap of the full Ethernet/IPv4/UDP/DNS packets, plus the
   filtered chunk trace, like the paper's preprocessing does;
3. compresses the chunk trace with ZipLine (dynamic learning) and with gzip,
   and prints the Figure 3 (right half) comparison;
4. shows why per-packet DEFLATE is not an alternative for 32-byte payloads.

Run with::

    python examples/dns_compression.py [output-directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.baselines import GzipBaseline
from repro.core.codec import GDCodec
from repro.net.pcap import PcapPacket, write_pcap
from repro.workloads import DnsQueryWorkload

NUM_QUERIES = 20_000
DISTINCT_NAMES = 300


def main() -> None:
    output_directory = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    output_directory.mkdir(parents=True, exist_ok=True)

    workload = DnsQueryWorkload(
        num_queries=NUM_QUERIES, distinct_names=DISTINCT_NAMES, seed=2016
    )
    chunks = workload.chunks()
    print(
        f"DNS workload: {NUM_QUERIES:,} queries of 34 B "
        f"({workload.query_bytes() / 1e6:.2f} MB), {DISTINCT_NAMES} distinct names, "
        f"resolver {workload.resolver_ip}"
    )

    # Persist both views of the dataset, like the paper's tooling.
    full_pcap = output_directory / "dns_queries_full.pcap"
    write_pcap(
        full_pcap,
        (
            PcapPacket(timestamp=index * 1e-4, data=frame)
            for index, frame in enumerate(workload.packets(2_000))
        ),
    )
    chunk_pcap = output_directory / "dns_chunks.pcap"
    workload.trace().to_pcap(chunk_pcap, packet_rate=1e5)
    print(f"wrote {full_pcap} (raw capture sample) and {chunk_pcap} (filtered chunks)")

    # ZipLine, dynamic learning, with the paper's wire format overheads.
    codec = GDCodec(order=8, identifier_bits=15, alignment_padding_bits=8)
    zipline_result = codec.compress(b"".join(chunks))

    # gzip over the concatenated payloads (the paper's comparison) and per
    # packet (what an online DEFLATE box would have to do).
    gzip_whole = GzipBaseline().compress_chunks(chunks)
    gzip_per_packet = GzipBaseline().compress_per_chunk(chunks)

    rows = [
        ["Original data", f"{len(chunks) * 32 / 1e6:.2f} MB", "1.000", "–"],
        [
            "ZipLine (dynamic learning)",
            f"{zipline_result.payload_bytes / 1e6:.2f} MB",
            f"{zipline_result.compression_ratio:.3f}",
            "0.10",
        ],
        [
            "gzip (whole trace)",
            f"{gzip_whole.compressed_bytes / 1e6:.2f} MB",
            f"{gzip_whole.compression_ratio:.3f}",
            "0.08",
        ],
        [
            "DEFLATE per packet",
            f"{gzip_per_packet.compressed_bytes / 1e6:.2f} MB",
            f"{gzip_per_packet.compression_ratio:.3f}",
            "n/a",
        ],
    ]
    print()
    print(
        format_table(
            ["scheme", "bytes transmitted", "ratio", "paper"],
            rows,
            title="Figure 3 (DNS queries) — resulting payload size",
        )
    )
    print()
    print(
        "ZipLine compresses each query independently at line rate inside the\n"
        "switch; gzip needs the whole trace (and an end host) to do slightly\n"
        "better, and per-packet DEFLATE is counter-productive at this size."
    )

    restored = codec.decompress_records(
        zipline_result.records, original_bytes=len(chunks) * 32
    )
    assert restored == b"".join(chunks)
    print("round trip: OK (bit exact)")


if __name__ == "__main__":
    main()
