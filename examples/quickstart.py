#!/usr/bin/env python3
"""Quickstart: compress and decompress data with generalized deduplication.

This is the five-minute tour of the library's core API:

1. build a :class:`repro.GDCodec` with the paper's parameters (Hamming order
   m = 8 → 256-bit chunks, 15-bit identifiers → 32,768 cached bases);
2. compress a byte buffer whose chunks cluster around a few "bases"
   (sensor-style data), inspect the compression ratio and the packet types;
3. decompress and verify the round trip is bit exact;
4. serialise to the self-contained ``GDZ1`` container and read it back.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import GDCodec
from repro.core.records import RecordType


def make_sensor_like_payload(num_chunks: int = 2_000, seed: int = 7) -> bytes:
    """Synthesise chunks that are one bit-flip away from a few prototypes.

    Real deployments would feed actual telemetry; the structure that matters
    for GD is that many chunks are *similar* (not necessarily identical).
    """
    rng = random.Random(seed)
    prototypes = [bytes(rng.randrange(256) for _ in range(32)) for _ in range(5)]
    chunks = []
    for index in range(num_chunks):
        chunk = bytearray(prototypes[index % len(prototypes)])
        # flip one random bit: identical chunks are rare, similar ones common
        position = rng.randrange(len(chunk) * 8)
        chunk[position // 8] ^= 1 << (position % 8)
        chunks.append(bytes(chunk))
    return b"".join(chunks)


def main() -> None:
    payload = make_sensor_like_payload()
    print(f"original payload: {len(payload):,} bytes "
          f"({len(payload) // 32:,} chunks of 32 bytes)")

    # The paper's configuration: m = 8, 15-bit identifiers, and the 8 padding
    # bits the Tofino byte-alignment constraint forces on type-2 packets.
    codec = GDCodec(order=8, identifier_bits=15, alignment_padding_bits=8)

    result = codec.compress(payload)
    uncompressed = sum(
        1 for record in result.records if record.record_type is RecordType.UNCOMPRESSED
    )
    compressed = sum(
        1 for record in result.records if record.record_type is RecordType.COMPRESSED
    )
    print(f"compressed payload: {result.payload_bytes:,} bytes "
          f"(ratio {result.compression_ratio:.3f})")
    print(f"  type-2 (basis + syndrome) records : {uncompressed:,}")
    print(f"  type-3 (identifier + syndrome)    : {compressed:,}")

    restored = codec.decompress_records(result.records, original_bytes=len(payload))
    assert restored == payload
    print("round trip: OK (bit exact)")

    # Self-contained container: everything needed to decompress travels with
    # the data, so a fresh codec on another machine can read it.
    blob = codec.compress_to_container(payload)
    fresh = GDCodec(order=8, identifier_bits=15, alignment_padding_bits=8)
    assert fresh.decompress_container(blob) == payload
    print(f"container: {len(blob):,} bytes "
          f"(ratio {len(blob) / len(payload):.3f}, includes per-record framing)")


if __name__ == "__main__":
    main()
