#!/usr/bin/env python3
"""IoT sensor telemetry through a pair of ZipLine switches.

This example reproduces the paper's primary use case end to end, entirely in
simulation:

* a fleet of sensors produces 256-bit readouts (the synthetic workload of
  Figure 3, scaled down);
* the readouts are replayed through the full deployment — sender host →
  ZipLine *encoding* switch → 100 GbE hop → ZipLine *decoding* switch →
  receiver host — under the three dictionary scenarios the paper measures
  (no table, static table, dynamic learning);
* the traffic crossing the compressed hop is accounted per packet type, the
  receiver verifies every chunk arrived bit exact, and the dynamic scenario
  reports the basis-learning delay.

Run with::

    python examples/sensor_telemetry.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.workloads import SyntheticSensorWorkload
from repro.zipline import DeploymentScenario, ZipLineDeployment

#: Scaled-down trace (the paper replays 3,124,000 chunks; the simulation gets
#: the same shape from far fewer).
NUM_CHUNKS = 8_000
DISTINCT_BASES = 16

#: Replay rate chosen so the trace duration relative to the 1.77 ms learning
#: delay matches the paper's experiment (see EXPERIMENTS.md).
PACKET_RATE = NUM_CHUNKS / 0.446


def run_scenario(scenario: DeploymentScenario, workload: SyntheticSensorWorkload):
    """Replay the workload under one dictionary scenario."""
    chunks = workload.chunks()
    deployment = ZipLineDeployment(
        scenario=scenario,
        static_bases=workload.bases() if scenario is DeploymentScenario.STATIC else None,
    )
    summary = deployment.replay_and_run(chunks, packet_rate=PACKET_RATE)
    lossless = deployment.verify_lossless(chunks)
    return summary, lossless


def main() -> None:
    workload = SyntheticSensorWorkload(
        num_chunks=NUM_CHUNKS, distinct_bases=DISTINCT_BASES, seed=42
    )
    print(
        f"sensor workload: {NUM_CHUNKS:,} chunks of "
        f"{workload.chunk_bytes} bytes, {DISTINCT_BASES} operating points, "
        f"{workload.total_bytes / 1e6:.1f} MB of payload"
    )

    rows = []
    for scenario in (
        DeploymentScenario.NO_TABLE,
        DeploymentScenario.STATIC,
        DeploymentScenario.DYNAMIC,
    ):
        summary, lossless = run_scenario(scenario, workload)
        learning = (
            f"{summary.learning_time * 1e3:.2f} ms"
            if summary.learning_time is not None
            else "–"
        )
        rows.append(
            [
                scenario.value,
                summary.uncompressed_packets,
                summary.compressed_packets,
                f"{summary.transmitted_payload_bytes / 1e6:.3f} MB",
                f"{summary.compression_ratio:.3f}",
                f"{summary.savings_percent:.1f} %",
                learning,
                "yes" if lossless else "NO",
            ]
        )

    print()
    print(
        format_table(
            [
                "scenario",
                "type-2 pkts",
                "type-3 pkts",
                "bytes on hop",
                "ratio",
                "savings",
                "learning delay",
                "lossless",
            ],
            rows,
            title="Traffic crossing the compressed hop (encoder switch → decoder switch)",
        )
    )
    print()
    print(
        "The paper's Figure 3 reports 1.03 (no table), 0.09 (static) and 0.11\n"
        "(dynamic) for the synthetic dataset; the dynamic penalty is the\n"
        "1.77 ms the control plane needs to install each new basis-ID pair."
    )


if __name__ == "__main__":
    main()
