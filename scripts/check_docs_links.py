#!/usr/bin/env python3
"""Check that every relative markdown link in the repo resolves.

Scans the tracked ``*.md`` files (repo root and ``docs/``) for inline links
``[text](target)`` and verifies that every *relative* target exists on
disk, resolved against the linking file's directory.  External links
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors (``#...``)
are skipped — no network access, so CI stays hermetic.

    python scripts/check_docs_links.py            # exit 1 on any broken link
    python scripts/check_docs_links.py --verbose  # also list every checked link
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links; reference-style links are not used in this repo.
#: Image embeds (``![alt](target)``) are excluded — the scraped related-work
#: files reference figures that were intentionally never vendored.
_LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> List[Path]:
    """Every markdown file the repo ships (root + docs/, sorted)."""
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/**/*.md"))
    return [path for path in files if path.is_file()]


def iter_links(path: Path) -> Iterator[Tuple[int, str]]:
    """``(line_number, target)`` for every inline link in a file."""
    in_code_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def check(verbose: bool = False) -> int:
    broken: List[str] = []
    checked = 0
    for path in markdown_files():
        for line_number, target in iter_links(path):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            # Strip an in-page anchor from a file target.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            checked += 1
            if verbose:
                print(f"  {path.relative_to(REPO_ROOT)}:{line_number} -> {file_part}")
            if not resolved.exists():
                broken.append(
                    f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                    f"broken link -> {target}"
                )
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s) out of {checked} checked")
        return 1
    print(f"all {checked} relative links resolve across {len(markdown_files())} files")
    return 0


def main(argv=None) -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--verbose", action="store_true", help="list every checked link")
    args = cli.parse_args(argv)
    return check(verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
