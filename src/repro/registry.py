"""Name-based registry of streaming compressors.

One place maps short codec names to :class:`~repro.core.engine.Compressor`
factories, so the CLI, the workloads and the benchmarks all select codecs
the same way::

    from repro import registry

    compressor = registry.get("gd", identifier_bits=15)
    blob = b"".join(compressor.compress_stream(blocks))

Formats are also *sniffable*: every registered compressor carries a magic
prefix, and :func:`sniff` maps the first bytes of a stream back to the codec
name — this is how ``repro decompress`` picks the right decoder without a
``--codec`` flag.

The registry ships with the four built-ins (``gd``, ``gzip``, ``dedup``,
``null``); downstream code can :func:`register` additional factories.

Next to the compressor registry lives the **codec-backend** registry
(re-exported from :mod:`repro.core.backends`): the ``pure``/``numpy``/
``native`` implementations of the GD batch hot paths.  Backends are
orthogonal to codecs — every codec built here accepts ``backend=...`` —
and bit-identical to one another, so they select performance, never
format::

    registry.get("gd", backend="numpy")   # explicit vectorized backend

>>> from repro import registry
>>> registry.names()
['dedup', 'gd', 'gzip', 'null']
>>> registry.backend_names()
['native', 'numpy', 'pure']
>>> registry.sniff(registry.magic_for("gd") + b"...")
'gd'
>>> blocks = registry.get("null").compress_stream([b"payload"])
>>> b"".join(registry.get("null").decompress_stream(blocks))
b'payload'
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.backends import (
    available_backend_names,
    backend_names,
    backend_status,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.engine import (
    Compressor,
    DedupStreamCompressor,
    GDStreamCompressor,
    GzipStreamCompressor,
    NullStreamCompressor,
)
from repro.exceptions import ReproError

__all__ = [
    "register",
    "get",
    "names",
    "sniff",
    "magic_for",
    "get_for_header",
    # codec-backend registry (repro.core.backends)
    "available_backend_names",
    "backend_names",
    "backend_status",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

_FACTORIES: Dict[str, Callable[..., Compressor]] = {}
_MAGICS: Dict[str, bytes] = {}


def register(
    name: str,
    factory: Callable[..., Compressor],
    magic: Optional[bytes] = None,
    replace: bool = False,
) -> None:
    """Register a compressor factory under ``name``.

    ``factory`` is any callable returning a :class:`Compressor` (typically
    the class itself).  ``magic`` defaults to the factory's ``magic``
    attribute and is used by :func:`sniff`; pass ``b""`` to opt out of
    sniffing.  Re-registering an existing name raises unless ``replace``
    is true.
    """
    key = name.lower()
    if not key:
        raise ReproError("compressor name cannot be empty")
    if key in _FACTORIES and not replace:
        raise ReproError(f"compressor {name!r} is already registered")
    if magic is None:
        magic = getattr(factory, "magic", b"")
    _FACTORIES[key] = factory
    _MAGICS[key] = bytes(magic)


def get(name: str, **parameters: object) -> Compressor:
    """Construct the compressor registered under ``name``.

    Keyword arguments are forwarded to the factory, so
    ``get("gd", order=8, identifier_bits=15)`` parameterises the codec the
    same way direct construction would.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown compressor {name!r}; available: {', '.join(names())}"
        ) from None
    return factory(**parameters)


def names() -> List[str]:
    """Registered compressor names, sorted."""
    return sorted(_FACTORIES)


def magic_for(name: str) -> bytes:
    """The magic prefix of a registered compressor (may be empty)."""
    try:
        return _MAGICS[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown compressor {name!r}; available: {', '.join(names())}"
        ) from None


def sniff(header: bytes) -> Optional[str]:
    """Identify the compressor that produced a stream from its first bytes.

    Returns the registered name whose magic is the longest prefix match of
    ``header``, or ``None`` when nothing matches.
    """
    best: Optional[str] = None
    best_length = 0
    for name, magic in _MAGICS.items():
        if magic and len(magic) > best_length and header.startswith(magic):
            best = name
            best_length = len(magic)
    return best


def get_for_header(header: bytes, **parameters: object) -> Compressor:
    """Construct the compressor matching a stream's leading bytes."""
    name = sniff(header)
    if name is None:
        raise ReproError(
            f"unrecognised stream format (header {header[:8]!r}); "
            f"known formats: {', '.join(names())}"
        )
    return get(name, **parameters)


# -- built-ins -----------------------------------------------------------------

register("gd", GDStreamCompressor)
register("gzip", GzipStreamCompressor)
register("dedup", DedupStreamCompressor)
register("null", NullStreamCompressor)
