"""Analytical performance models for the raw-performance figures (4 and 5)."""

from repro.perfmodel.latency import (
    FIGURE5_OPERATIONS,
    LatencyComponents,
    LatencyModel,
    LatencySample,
)
from repro.perfmodel.linkmodel import (
    ImpairmentModel,
    LinkModel,
    PathModel,
    SwitchModel,
    TrafficGeneratorModel,
)
from repro.perfmodel.throughput import (
    FIGURE4_FRAME_SIZES,
    SwitchOperation,
    ThroughputModel,
    ThroughputSample,
)

__all__ = [
    "FIGURE5_OPERATIONS",
    "LatencyComponents",
    "LatencyModel",
    "LatencySample",
    "ImpairmentModel",
    "LinkModel",
    "PathModel",
    "SwitchModel",
    "TrafficGeneratorModel",
    "FIGURE4_FRAME_SIZES",
    "SwitchOperation",
    "ThroughputModel",
    "ThroughputSample",
]
