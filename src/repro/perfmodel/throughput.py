"""Throughput model regenerating Figure 4.

The experiment behind Figure 4 transfers raw Ethernet frames of 64, 1500 and
9000 bytes for 10 seconds through the switch running (a) a plain forwarding
program, (b) the ZipLine encode program and (c) the ZipLine decode program,
and reports Gbit/s and Mpkt/s.  The paper's observation — and the property
the model encodes — is that the three programs are indistinguishable because
none of them recirculates or duplicates packets; the measured numbers are
set by the traffic-generating server for small frames and by the 100 GbE
line rate for jumbo frames.

:class:`ThroughputModel` also accepts the actual
:class:`~repro.tofino.pipeline.Pipeline` objects of the encoder and decoder
programs and *verifies* the no-recirculation precondition against them
instead of assuming it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.perfmodel.linkmodel import PathModel
from repro.tofino.pipeline import Pipeline

__all__ = ["SwitchOperation", "ThroughputSample", "ThroughputModel", "FIGURE4_FRAME_SIZES"]

#: The frame sizes of Figure 4.
FIGURE4_FRAME_SIZES = (64, 1500, 9000)

#: The switch operations of Figure 4.
SWITCH_OPERATIONS = ("no_op", "encode", "decode")


@dataclass(frozen=True)
class SwitchOperation:
    """One of the three programs loaded on the switch during the experiment."""

    name: str
    pipeline: Optional[Pipeline] = None

    def is_line_rate_safe(self) -> bool:
        """True when the program avoids recirculation and duplication."""
        if self.pipeline is None:
            return True
        return not self.pipeline.uses_forbidden_features


@dataclass(frozen=True)
class ThroughputSample:
    """One Figure 4 bar: an operation × frame-size measurement."""

    operation: str
    frame_bytes: int
    throughput_gbps: float
    packet_rate_mpps: float
    bottleneck: str

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "operation": self.operation,
            "frame_bytes": self.frame_bytes,
            "throughput_gbps": self.throughput_gbps,
            "packet_rate_mpps": self.packet_rate_mpps,
            "bottleneck": self.bottleneck,
        }


class ThroughputModel:
    """Compute the Figure 4 series from the path model.

    Parameters
    ----------
    path:
        The link/switch/generator model.
    measurement_noise:
        Relative standard deviation applied to each repeated measurement, so
        the 10-repetition averages carry realistic confidence intervals.
    seed:
        RNG seed for the noise.
    """

    def __init__(
        self,
        path: Optional[PathModel] = None,
        measurement_noise: float = 0.01,
        seed: int = 42,
    ):
        if measurement_noise < 0:
            raise ReproError("measurement noise cannot be negative")
        self.path = path or PathModel()
        self.measurement_noise = measurement_noise
        self._rng = random.Random(seed)

    # -- single measurements ------------------------------------------------------

    def measure(
        self, operation: SwitchOperation, frame_bytes: int, noisy: bool = False
    ) -> ThroughputSample:
        """One operation × frame-size point of Figure 4."""
        if frame_bytes <= 0:
            raise ReproError("frame size must be positive")
        if not operation.is_line_rate_safe():
            raise ReproError(
                f"operation {operation.name!r} uses recirculation/duplication; "
                "the line-rate model does not apply"
            )
        packet_rate = self.path.achievable_packet_rate(frame_bytes)
        throughput = self.path.achievable_throughput_bps(frame_bytes)
        if noisy and self.measurement_noise:
            factor = 1.0 + self._rng.gauss(0.0, self.measurement_noise)
            factor = max(0.0, min(factor, 1.0))  # measurements never exceed the model
            packet_rate *= factor
            throughput *= factor
        return ThroughputSample(
            operation=operation.name,
            frame_bytes=frame_bytes,
            throughput_gbps=throughput / 1e9,
            packet_rate_mpps=packet_rate / 1e6,
            bottleneck=self.path.bottleneck(frame_bytes),
        )

    def repeated_measurements(
        self, operation: SwitchOperation, frame_bytes: int, repetitions: int = 10
    ) -> List[ThroughputSample]:
        """Repeat a measurement (the paper repeats everything 10 times)."""
        if repetitions <= 0:
            raise ReproError("repetitions must be positive")
        return [
            self.measure(operation, frame_bytes, noisy=True) for _ in range(repetitions)
        ]

    # -- full figure ------------------------------------------------------------------

    def figure4(
        self,
        operations: Optional[Sequence[SwitchOperation]] = None,
        frame_sizes: Sequence[int] = FIGURE4_FRAME_SIZES,
    ) -> List[ThroughputSample]:
        """Every bar of Figure 4 (no noise: the model's central values)."""
        if operations is None:
            operations = [SwitchOperation(name) for name in SWITCH_OPERATIONS]
        samples = []
        for operation in operations:
            for frame_bytes in frame_sizes:
                samples.append(self.measure(operation, frame_bytes))
        return samples
