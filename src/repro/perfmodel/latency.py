"""Round-trip latency model regenerating Figure 5.

The experiment behind Figure 5 has one server send packets to itself through
the programmable switch and measures the round-trip time.  The reported RTT
(≈ 10–15 µs) is dominated by the two traversals of the server's network
stack and NIC; the switch adds a constant sub-microsecond pipeline latency
that does not depend on which ZipLine program is loaded — which is exactly
the paper's conclusion ("the addition of ZipLine has no noticeable effect on
raw performance").

:class:`LatencyModel` composes the path out of explicit components so the
claim can be examined: host transmit path, NIC + PCIe, wire serialisation,
switch pipeline (twice, since the packet crosses the switch out and back),
and host receive path.  Samples carry log-normal-ish jitter typical of
kernel-bypass measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.perfmodel.linkmodel import LinkModel, SwitchModel

__all__ = ["LatencyComponents", "LatencySample", "LatencyModel", "FIGURE5_OPERATIONS"]

#: The switch operations of Figure 5.
FIGURE5_OPERATIONS = ("no_op", "encode", "decode")


@dataclass(frozen=True)
class LatencyComponents:
    """The fixed components of one direction of the path (seconds)."""

    host_transmit: float = 1.5e-6
    nic_and_pcie: float = 1.0e-6
    host_receive: float = 1.5e-6

    def one_way_host_cost(self) -> float:
        """Host-side cost of one traversal (send + receive side)."""
        return self.host_transmit + self.nic_and_pcie + self.host_receive


@dataclass(frozen=True)
class LatencySample:
    """One RTT measurement (microseconds)."""

    operation: str
    rtt_us: float


class LatencyModel:
    """Compute Figure 5 RTT distributions.

    Parameters
    ----------
    components:
        Host/NIC latency components.
    link / switch:
        Wire and pipeline models.
    frame_bytes:
        Size of the probe frames (the raw_ethernet_lat default of 64 bytes).
    extra_program_latency:
        Additional pipeline latency attributable to the ZipLine programs —
        zero by default, which is the paper's finding; the ablation
        benchmark sweeps it.
    jitter_fraction:
        Relative spread of the measurement jitter.
    """

    def __init__(
        self,
        components: Optional[LatencyComponents] = None,
        link: Optional[LinkModel] = None,
        switch: Optional[SwitchModel] = None,
        frame_bytes: int = 64,
        extra_program_latency: float = 0.0,
        jitter_fraction: float = 0.04,
        seed: int = 7,
    ):
        if frame_bytes <= 0:
            raise ReproError("frame size must be positive")
        if extra_program_latency < 0:
            raise ReproError("extra program latency cannot be negative")
        if jitter_fraction < 0:
            raise ReproError("jitter fraction cannot be negative")
        self.components = components or LatencyComponents()
        self.link = link or LinkModel()
        self.switch = switch or SwitchModel()
        self.frame_bytes = frame_bytes
        self.extra_program_latency = extra_program_latency
        self.jitter_fraction = jitter_fraction
        self._rng = random.Random(seed)

    # -- deterministic value --------------------------------------------------------

    def round_trip_time(self, operation: str = "no_op") -> float:
        """The model's central RTT value for an operation, in seconds.

        The packet crosses the switch twice (out to the loopback and back),
        and each crossing serialises the frame onto the wire twice.
        """
        program_latency = self.switch.pipeline_latency
        if operation != "no_op":
            program_latency += self.extra_program_latency
        one_direction = (
            self.components.host_transmit
            + self.components.nic_and_pcie
            + 2 * self.link.serialisation_delay(self.frame_bytes)
            + program_latency
            + self.components.nic_and_pcie
            + self.components.host_receive
        )
        return 2 * one_direction

    def round_trip_time_us(self, operation: str = "no_op") -> float:
        """Central RTT in microseconds."""
        return self.round_trip_time(operation) * 1e6

    # -- sampled measurements ---------------------------------------------------------

    def sample(self, operation: str = "no_op") -> LatencySample:
        """One jittered RTT measurement."""
        base = self.round_trip_time(operation)
        jitter = self._rng.gauss(0.0, self.jitter_fraction)
        # Latency jitter is one-sided in practice (queueing only adds time).
        value = base * (1.0 + abs(jitter))
        return LatencySample(operation=operation, rtt_us=value * 1e6)

    def samples(self, operation: str = "no_op", count: int = 10) -> List[LatencySample]:
        """Repeated RTT measurements (the paper repeats 10 times)."""
        if count <= 0:
            raise ReproError("sample count must be positive")
        return [self.sample(operation) for _ in range(count)]

    def figure5(
        self, operations: Sequence[str] = FIGURE5_OPERATIONS, count: int = 10
    ) -> Dict[str, List[LatencySample]]:
        """The full Figure 5 dataset: RTT samples per operation."""
        return {operation: self.samples(operation, count) for operation in operations}
