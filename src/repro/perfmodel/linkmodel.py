"""Analytical models of the 100 GbE link, the switch and the traffic servers.

Pure Python cannot demonstrate 100 Gbit/s, so the raw-performance results of
the paper (Figures 4 and 5) are reproduced with explicit analytical models
whose inputs are public datasheet numbers and the paper's own observations:

* the 100 GbE link: line rate divided by the per-frame wire occupancy
  (preamble + frame + FCS + inter-frame gap) gives the theoretical packet
  rate for every frame size;
* the Tofino ASIC: any P4 program that compiles without recirculation or
  packet duplication forwards at line rate (the vendor claim the paper
  verifies); the chip's aggregate packet budget (4.7 Gpkt/s from the
  Wedge100BF datasheet) is never the bottleneck for a single port;
* the traffic-generating server: the paper observes ≈ 7 Mpkt/s for small
  frames with the Mellanox ``raw_ethernet_*`` tools — a per-packet CPU/PCIe
  cost — plus the PCIe 3.0 x16 bandwidth ceiling for large frames.

The achievable throughput for a frame size is then simply the minimum of
the three stages, which reproduces the shape of Figure 4: small frames are
generator-limited in packets per second, jumbo frames reach line rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ReproError
from repro.net.ethernet import frame_wire_bytes

__all__ = [
    "LinkModel",
    "SwitchModel",
    "TrafficGeneratorModel",
    "PathModel",
    "ImpairmentModel",
]


@dataclass(frozen=True)
class LinkModel:
    """A full-duplex Ethernet link of ``speed_bps`` bits per second."""

    speed_bps: float = 100e9

    def __post_init__(self) -> None:
        if self.speed_bps <= 0:
            raise ReproError(f"link speed must be positive, got {self.speed_bps}")

    def wire_bits(self, frame_bytes: int) -> int:
        """Wire occupancy of one frame, in bits (padding + overheads included)."""
        return frame_wire_bytes(frame_bytes) * 8

    def max_packet_rate(self, frame_bytes: int) -> float:
        """Theoretical packets per second at line rate for this frame size."""
        return self.speed_bps / self.wire_bits(frame_bytes)

    def throughput_bps(self, frame_bytes: int, packet_rate: float) -> float:
        """Goodput in bits per second (frame bytes, excluding wire overhead)."""
        if packet_rate < 0:
            raise ReproError("packet rate cannot be negative")
        return packet_rate * frame_bytes * 8

    def utilisation(self, frame_bytes: int, packet_rate: float) -> float:
        """Fraction of the line rate consumed (1.0 = saturated)."""
        return min(1.0, packet_rate * self.wire_bits(frame_bytes) / self.speed_bps)

    def serialisation_delay(self, frame_bytes: int) -> float:
        """Time to put one frame on the wire, in seconds."""
        return self.wire_bits(frame_bytes) / self.speed_bps


class ImpairmentModel:
    """Seeded stochastic impairments of a link: loss and reordering.

    The replay subsystem needs *reproducible* packet loss and reordering:
    two runs with the same seed must drop and delay exactly the same
    packets, and two links in the same topology must not share one RNG
    stream (or adding a hop would silently change which packets another
    hop drops).  The seed is therefore part of the constructor signature,
    and :meth:`fork` derives an independent, equally deterministic stream
    for each additional link.

    Parameters
    ----------
    loss_probability:
        Per-packet probability of the frame being dropped on the wire.
    reorder_probability:
        Per-packet probability of the frame being held back by
        ``reorder_delay`` seconds after serialisation, letting later
        frames overtake it.
    reorder_delay:
        Extra delivery delay applied to reordered frames.
    seed:
        RNG seed.  The decision sequence is fully determined by it.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        reorder_probability: float = 0.0,
        reorder_delay: float = 10e-6,
        seed: int = 0,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise ReproError(
                f"loss probability must be within [0, 1], got {loss_probability}"
            )
        if not 0.0 <= reorder_probability <= 1.0:
            raise ReproError(
                f"reorder probability must be within [0, 1], got {reorder_probability}"
            )
        if reorder_delay < 0:
            raise ReproError(f"reorder delay cannot be negative, got {reorder_delay}")
        self.loss_probability = loss_probability
        self.reorder_probability = reorder_probability
        self.reorder_delay = reorder_delay
        self.seed = seed
        self._rng = random.Random(seed)

    @property
    def lossless(self) -> bool:
        """True when the model can never drop or reorder a frame."""
        return self.loss_probability == 0.0 and self.reorder_probability == 0.0

    def should_drop(self) -> bool:
        """Decide the fate of the next frame (advances the RNG stream)."""
        if self.loss_probability == 0.0:
            return False
        return self._rng.random() < self.loss_probability

    def reorder_penalty(self) -> float:
        """Extra delivery delay for the next frame (0.0 = stays in order)."""
        if self.reorder_probability == 0.0:
            return 0.0
        if self._rng.random() < self.reorder_probability:
            return self.reorder_delay
        return 0.0

    def fork(self, index: int) -> "ImpairmentModel":
        """An independent model with the same parameters for another link.

        The derived seed depends only on ``(seed, index)``, so multi-hop
        topologies stay reproducible while each hop draws from its own
        stream.
        """
        if index < 0:
            raise ReproError(f"fork index must be non-negative, got {index}")
        return ImpairmentModel(
            loss_probability=self.loss_probability,
            reorder_probability=self.reorder_probability,
            reorder_delay=self.reorder_delay,
            seed=(self.seed * 1_000_003 + index + 1) & 0xFFFFFFFF,
        )

    def reset(self) -> None:
        """Rewind the RNG stream to the beginning (same seed, same decisions)."""
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return (
            f"ImpairmentModel(loss={self.loss_probability}, "
            f"reorder={self.reorder_probability}, seed={self.seed})"
        )


@dataclass(frozen=True)
class SwitchModel:
    """The forwarding capacity of the programmable switch.

    ``line_rate_guaranteed`` encodes the vendor claim the paper relies on:
    a program that compiles without recirculation or duplication forwards
    every port at line rate.  ``aggregate_packet_rate`` is the chip-wide
    packet budget from the datasheet (4.7 Gpkt/s); ``pipeline_latency`` is
    the constant port-to-port latency of a compiled program.
    """

    aggregate_packet_rate: float = 4.7e9
    pipeline_latency: float = 0.6e-6
    line_rate_guaranteed: bool = True

    def max_packet_rate(self, ports_active: int = 1) -> float:
        """Per-port packet budget when ``ports_active`` ports are loaded."""
        if ports_active <= 0:
            raise ReproError("ports_active must be positive")
        return self.aggregate_packet_rate / ports_active


@dataclass(frozen=True)
class TrafficGeneratorModel:
    """The sending/receiving server (Mellanox ConnectX-5 on PCIe 3.0 x16).

    ``max_packet_rate`` is the observed per-core raw-Ethernet send limit
    (the paper measures ≈ 7 Mpkt/s); ``pcie_bandwidth_bps`` is the usable
    PCIe 3.0 x16 bandwidth, which only matters for jumbo frames and sits
    just above 100 Gbit/s so it never shows up in the figure.
    """

    max_packet_rate: float = 7.0e6
    pcie_bandwidth_bps: float = 120e9
    nic_latency: float = 4.0e-6

    def max_rate_for_frame(self, frame_bytes: int) -> float:
        """Packets per second the server can generate for this frame size."""
        if frame_bytes <= 0:
            raise ReproError("frame size must be positive")
        pcie_limited = self.pcie_bandwidth_bps / (frame_bytes * 8)
        return min(self.max_packet_rate, pcie_limited)


@dataclass(frozen=True)
class PathModel:
    """Sender → switch → receiver: the full Figure 4 measurement path."""

    link: LinkModel = LinkModel()
    switch: SwitchModel = SwitchModel()
    generator: TrafficGeneratorModel = TrafficGeneratorModel()

    def achievable_packet_rate(self, frame_bytes: int) -> float:
        """Packets per second the whole path sustains for this frame size."""
        rates = [
            self.link.max_packet_rate(frame_bytes),
            self.generator.max_rate_for_frame(frame_bytes),
        ]
        if self.switch.line_rate_guaranteed:
            rates.append(self.switch.max_packet_rate())
        else:
            # A program that recirculates halves the usable bandwidth; the
            # ZipLine program never takes this path but the model supports it
            # for the ablation benchmark.
            rates.append(self.link.max_packet_rate(frame_bytes) / 2)
        return min(rates)

    def achievable_throughput_bps(self, frame_bytes: int) -> float:
        """Goodput in bits per second for this frame size."""
        return self.link.throughput_bps(
            frame_bytes, self.achievable_packet_rate(frame_bytes)
        )

    def bottleneck(self, frame_bytes: int) -> str:
        """Which stage limits the rate: ``link``, ``generator`` or ``switch``."""
        link_rate = self.link.max_packet_rate(frame_bytes)
        generator_rate = self.generator.max_rate_for_frame(frame_bytes)
        switch_rate = (
            self.switch.max_packet_rate()
            if self.switch.line_rate_guaranteed
            else link_rate / 2
        )
        rates = {"link": link_rate, "generator": generator_rate, "switch": switch_rate}
        return min(rates, key=rates.get)
