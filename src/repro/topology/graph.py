"""The topology graph: nodes, edges, and deterministic wiring.

A :class:`TopologyGraph` is a directed graph of named :class:`Node` objects
connected by edges.  An edge goes from one node's egress *port* to another
node's ingress port and is either **direct** (a synchronous function call,
the way the original two-switch deployment wired its hop) or **emulated**
(one or more :class:`~repro.replay.link.EmulatedLink` hops in series on the
shared simulator).  An edge may carry a
:class:`~repro.zipline.stats.LinkTap` that observes every frame entering it
— the measurement point the Figure 3 byte accounting reads.

The graph only *describes and wires*; traffic generation, flow bookkeeping
and reporting live in :class:`~repro.topology.engine.TopologyEngine`, and
the linear special case keeps living behind
:class:`~repro.replay.harness.ReplayHarness`, which builds its chain
through :func:`build_link_chain` and a small graph instead of ad hoc
wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import TopologyError
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # runtime imports stay lazy: repro.replay imports us back
    from repro.perfmodel.linkmodel import ImpairmentModel
    from repro.replay.link import EmulatedLink
    from repro.zipline.stats import LinkTap

__all__ = ["LinkSink", "Node", "TopologyEdge", "TopologyGraph", "build_link_chain"]

#: ``sink(frame_bytes, time)`` — the signature shared by switch port sinks,
#: link sends and host delivery (same shape as ``repro.replay.link.LinkSink``).
LinkSink = Callable[[bytes, float], None]


class Node:
    """One vertex of the topology graph.

    Every node has a unique ``name``, receives frames on numbered ingress
    ports via :meth:`receive`, and exposes numbered egress ports the graph
    attaches sinks to via :meth:`attach`.  Concrete nodes live in
    :mod:`repro.topology.nodes`.
    """

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise TopologyError(f"node name must be a non-empty string, got {name!r}")
        self.name = name

    def receive(self, frame_bytes: bytes, port: int, time: float) -> None:
        """Handle one frame arriving on ingress ``port`` at ``time``."""
        raise NotImplementedError

    def attach(self, port: int, sink: LinkSink) -> None:
        """Attach the sink that egress ``port`` transmits into."""
        raise NotImplementedError

    def counters(self) -> Dict[str, float]:
        """Per-node counters for the metrics registry (may be empty)."""
        return {}


@dataclass
class TopologyEdge:
    """A directed connection between two node ports.

    ``links`` is the serial chain of emulated hops the edge traverses — an
    empty tuple means a direct synchronous attachment.  ``tap`` observes
    every frame entering the edge (before the first hop), exactly where the
    replay harness and the paper's testbed place their measurement tap.
    ``target`` may also be a bare ``(frame_bytes, time)`` callable for
    terminal sinks that are not nodes (e.g. the deployment's receiver
    host).
    """

    source: str
    source_port: int
    target: Union[str, LinkSink]
    target_port: int = 0
    links: Tuple["EmulatedLink", ...] = ()
    tap: Optional["LinkTap"] = None

    def describe(self) -> str:
        """``encoder:1 -> decoder:0`` style label for error messages."""
        target = self.target if isinstance(self.target, str) else "<sink>"
        return f"{self.source}:{self.source_port} -> {target}:{self.target_port}"


class TopologyGraph:
    """A named collection of nodes plus the edges that connect them.

    Nodes and edges are registered first, then :meth:`wire` performs all
    the attachments in one deterministic pass (edge registration order).
    Wiring is idempotent per graph: calling :meth:`wire` twice raises, so a
    half-wired graph can never go unnoticed.
    """

    def __init__(self, simulator: Simulator):
        self.simulator = simulator
        self.nodes: Dict[str, Node] = {}
        self.edges: List[TopologyEdge] = []
        self._wired = False

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node; names must be unique within the graph."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            known = ", ".join(sorted(self.nodes)) or "none"
            raise TopologyError(
                f"unknown node {name!r}; known nodes: {known}"
            ) from None

    def add_edge(
        self,
        source: str,
        source_port: int,
        target: Union[str, LinkSink],
        target_port: int = 0,
        links: Sequence["EmulatedLink"] = (),
        tap: Optional["LinkTap"] = None,
    ) -> TopologyEdge:
        """Register a directed edge (validated against registered nodes)."""
        if source not in self.nodes:
            raise TopologyError(
                f"edge references unknown source node {source!r}"
            )
        if isinstance(target, str):
            if target not in self.nodes:
                raise TopologyError(
                    f"edge references unknown target node {target!r}"
                )
        elif not callable(target):
            raise TopologyError(
                f"edge target must be a node name or a callable sink, "
                f"got {target!r}"
            )
        edge = TopologyEdge(
            source=source,
            source_port=source_port,
            target=target,
            target_port=target_port,
            links=tuple(links),
            tap=tap,
        )
        self.edges.append(edge)
        return edge

    # -- wiring --------------------------------------------------------------

    def _terminal_sink(self, edge: TopologyEdge) -> LinkSink:
        if callable(edge.target):
            return edge.target
        node = self.nodes[edge.target]
        port = edge.target_port

        def into_node(frame_bytes: bytes, time: float) -> None:
            node.receive(frame_bytes, port, time)

        return into_node

    def wire(self) -> None:
        """Attach every edge: chain its links and connect both endpoints."""
        if self._wired:
            raise TopologyError("topology graph is already wired")
        self._wired = True
        for edge in self.edges:
            sink = self._terminal_sink(edge)
            if edge.links:
                for upstream, downstream in zip(edge.links, edge.links[1:]):
                    upstream.attach(downstream.send)
                edge.links[-1].attach(sink)
                entry: LinkSink = edge.links[0].send
            else:
                entry = sink
            if edge.tap is not None:
                tap = edge.tap

                def tapped(
                    frame_bytes: bytes, time: float, _entry: LinkSink = entry,
                    _tap: "LinkTap" = tap,
                ) -> None:
                    _tap.observe(frame_bytes, time)
                    _entry(frame_bytes, time)

                entry = tapped
            self.nodes[edge.source].attach(edge.source_port, entry)

    # -- inspection ----------------------------------------------------------

    @property
    def links(self) -> List["EmulatedLink"]:
        """Every emulated link of the graph, in edge then hop order."""
        return [link for edge in self.edges for link in edge.links]


def build_link_chain(
    simulator: Simulator,
    names: Sequence[str],
    bandwidth_bps: float = 100e9,
    propagation_delay: float = 0.5e-6,
    queue_capacity: Optional[int] = None,
    impairments: Optional["ImpairmentModel"] = None,
    record_delays: bool = True,
) -> List["EmulatedLink"]:
    """Build a serial chain of identically-parameterised emulated links.

    One link per entry of ``names``; when an impairment model is given,
    every hop receives an independent deterministic ``fork(index)`` so
    multi-hop loss streams stay exactly reproducible.  This is the one
    place multi-hop paths are constructed — the replay harness's ``--hops``
    and spec-built topologies both route through it.
    """
    from repro.replay.link import EmulatedLink

    if not names:
        raise TopologyError("a link chain needs at least one link name")
    return [
        EmulatedLink(
            simulator=simulator,
            name=name,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=propagation_delay,
            queue_capacity=queue_capacity,
            impairments=None if impairments is None else impairments.fork(index),
            record_delays=record_delays,
        )
        for index, name in enumerate(names)
    ]
