"""Sharded topology execution: partition, simulate per shard, merge.

The paper's deployment story is a datacenter fan-in — thousands of hosts
behind rack encoders — and one Python process simulating every flow on a
single event queue cannot reach that scale.  This module splits a
:class:`~repro.topology.spec.TopologySpec` into independent per-encoder
subgraphs, simulates each shard in its own process, and folds the results
back into one :class:`~repro.topology.engine.TopologyReport`.

The determinism contract is the whole point: **same spec + seed ⇒
byte-identical report JSON at any worker count.**  It holds because

* per-flow and per-link seeds are CRC-derived from the *full spec's* name
  and seed (shard sub-specs keep both), so a flow's randomness is
  identical whether it runs in the monolithic engine or a shard;
* shards are disjoint connected components — no event in one shard can
  observe another shard's clock, queue or dictionary;
* the merge folds per-flow latency into ``endtoend.latency`` in
  flow-declaration order of the *full* spec, the exact order the
  monolithic engine uses, so even float summation is bit-identical;
* counters/gauges land in sorted-key JSON, and every shard's namespaces
  are disjoint by construction (control-plane counters are qualified per
  encoder whenever the full spec has several encoders).

What cannot shard: two encoders connected by a data link (or sharing a
decoder) form one component, and a component with more than one encoder
is rejected with the offending link named — partitioning it would tear a
shared dictionary in half.  A flow whose source and sink sit in different
components is likewise rejected by name.  Single-component specs (the
``fan-in`` preset) still run through this path as one shard, so
``--workers 1`` and the monolithic engine agree byte for byte.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import sys
import tempfile
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import obs as _obs
from repro.exceptions import TopologyError
from repro.obs.sinks import JsonLinesSink, merge_segments
from repro.obs.tracer import Tracer
from repro.replay.metrics import Distribution, IntegrityResult, MetricsRegistry
from repro.topology.engine import (
    METRICS_MODES,
    FlowResult,
    TopologyEngine,
    TopologyReport,
)
from repro.topology.spec import TopologySpec

__all__ = [
    "PartitionError",
    "TopologyShard",
    "partition_spec",
    "run_topology",
]

_INTEGRITY_FIELDS = (
    "sent", "received", "matched", "corrupted", "missing", "out_of_order"
)


class PartitionError(TopologyError):
    """The spec cannot be split into independent per-encoder subgraphs."""


@dataclass(frozen=True)
class TopologyShard:
    """One independent subgraph of a spec, ready to simulate on its own.

    ``spec`` is a full, self-validating :class:`TopologySpec` restricted
    to one connected component; it keeps the parent spec's name, seed and
    scenario so every derived seed matches the monolithic run.  ``name``
    identifies the shard in progress and error messages — the component's
    encoder when it has exactly one, its first node otherwise.
    """

    index: int
    name: str
    spec: TopologySpec


@dataclass(frozen=True)
class _ShardTask:
    """Everything a worker process needs to rebuild and run its shard.

    ``trace_segment``/``snapshot_interval`` are set only when the parent
    has tracing enabled: the worker then writes its own JSON-lines trace
    segment (stamped with its shard index), which the parent merge-sorts
    into one time-ordered stream after the run.
    """

    shard: TopologyShard
    verify_integrity: bool
    metrics_mode: str
    qualify_controlplane: bool
    trace_segment: Optional[str] = None
    snapshot_interval: Optional[float] = None


@dataclass
class _ShardOutcome:
    """A picklable shard result the parent folds into the merged report."""

    index: int
    name: str
    duration: float
    wire_payload_bytes: int
    first_uncompressed: Optional[float]
    first_compressed: Optional[float]
    registry_state: Dict[str, Any]
    flows: List[Dict[str, Any]]
    failure: Optional[str] = None


def _shard_name(component: List[str], encoders: List[str]) -> str:
    if len(encoders) == 1:
        return encoders[0]
    return component[0]


def partition_spec(spec: TopologySpec) -> List[TopologyShard]:
    """Split a spec into one shard per connected component.

    Components are connected through links *and* encoder↔decoder control
    pairings (see :meth:`TopologySpec.node_components`).  Raises
    :class:`PartitionError` — naming the offender — when a component holds
    more than one encoder (the link that merges them) or a flow spans two
    components (the flow).
    """
    component_of = spec.node_components()
    kind_of = {node.name: node.kind for node in spec.nodes}

    # Name the *link* that first merges two encoder-bearing subgraphs:
    # replay the link unions and watch encoder counts per set.
    encoder_count: Dict[str, int] = {
        node.name: (1 if node.kind == "encoder" else 0) for node in spec.nodes
    }
    parent = {node.name: node.name for node in spec.nodes}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for link in spec.links:
        root_a = find(link.source[0])
        root_b = find(link.target[0])
        if root_a == root_b:
            continue
        if encoder_count[root_a] and encoder_count[root_b]:
            raise PartitionError(
                f"topology {spec.name!r} cannot be partitioned: link "
                f"{link.name!r} connects two encoder subgraphs "
                f"({link.source[0]!r} side and {link.target[0]!r} side) — "
                f"flows sharing an encoder or link must stay in one shard"
            )
        parent[root_a] = root_b
        encoder_count[root_b] += encoder_count[root_a]
    # Decoder pairings can also merge encoder subgraphs (two encoders
    # claiming one decoder); there is no link to blame, so name the nodes.
    for component in spec.components():
        encoders = [name for name in component if kind_of[name] == "encoder"]
        if len(encoders) > 1:
            names = ", ".join(repr(name) for name in encoders)
            raise PartitionError(
                f"topology {spec.name!r} cannot be partitioned: encoders "
                f"{names} share a decoder and would land in one shard"
            )

    for flow in spec.flows:
        if component_of[flow.source] != component_of[flow.sink]:
            raise PartitionError(
                f"topology {spec.name!r} cannot be partitioned: flow "
                f"{flow.name!r} runs from {flow.source!r} to {flow.sink!r}, "
                f"which sit in different components"
            )

    # Pre-resolve the measured set once, globally, so a shard never falls
    # back to tapping its own first emulated link when the full spec's
    # fallback lies in a different shard.
    measured_names = {link.name for link in spec.measured_links}

    shards: List[TopologyShard] = []
    for index, component in enumerate(spec.components()):
        members = set(component)
        nodes = [node for node in spec.nodes if node.name in members]
        links = [
            replace(link, measured=link.name in measured_names)
            for link in spec.links
            if link.source[0] in members and link.target[0] in members
        ]
        flows = [flow for flow in spec.flows if flow.source in members]
        sub_spec = TopologySpec(
            name=spec.name,
            nodes=nodes,
            links=links,
            flows=flows,
            scenario=spec.scenario,
            order=spec.order,
            identifier_bits=spec.identifier_bits,
            seed=spec.seed,
            entry_ttl=spec.entry_ttl,
            control=spec.control,
            control_bandwidth_gbps=spec.control_bandwidth_gbps,
            control_propagation_us=spec.control_propagation_us,
            control_rate=spec.control_rate,
            control_queue=spec.control_queue,
            # Restart/storm events follow their node into its shard; the
            # global control-link impairment probabilities stay (each
            # control link draws from its own derived-seed stream).
            faults=(
                spec.faults.events_for(members)
                if spec.faults is not None
                else None
            ),
        )
        encoders = [name for name in component if kind_of[name] == "encoder"]
        shards.append(
            TopologyShard(
                index=index,
                name=_shard_name(component, encoders),
                spec=sub_spec,
            )
        )
    return shards


def _run_shard(task: _ShardTask) -> _ShardOutcome:
    """Module-level worker: rebuild the shard's subgraph and simulate it.

    Never raises — a crash comes back as an outcome with ``failure`` set,
    so the parent can name the failing shard instead of surfacing a bare
    pool traceback.
    """
    shard = task.shard
    # Swap in a file-writing tracer for the duration of the shard when the
    # parent requested one.  The save/restore matters in the sequential
    # (workers=1) path, where all shards share this process's global; in a
    # forked worker it is merely harmless.
    saved_tracer = None
    segment_sink = None
    if task.trace_segment is not None:
        saved_tracer = _obs.TRACER
        segment_sink = JsonLinesSink(task.trace_segment)
        _obs.TRACER = Tracer(
            segment_sink,
            shard=shard.index,
            snapshot_interval=task.snapshot_interval,
        )
    try:
        engine = TopologyEngine(
            shard.spec,
            verify_integrity=task.verify_integrity,
            metrics_mode=task.metrics_mode,
            tap_fallback=False,
            qualify_controlplane=task.qualify_controlplane,
        )
        report = engine.run()
        first_uncompressed, first_compressed = engine.wire_first_times()
        return _ShardOutcome(
            index=shard.index,
            name=shard.name,
            duration=report.duration,
            wire_payload_bytes=report.wire_payload_bytes,
            first_uncompressed=first_uncompressed,
            first_compressed=first_compressed,
            registry_state=report.metrics.export_state(),
            flows=[flow.as_dict() for flow in report.flows],
        )
    except Exception:  # noqa: BLE001 — reported by name in the parent
        return _ShardOutcome(
            index=shard.index,
            name=shard.name,
            duration=0.0,
            wire_payload_bytes=0,
            first_uncompressed=None,
            first_compressed=None,
            registry_state={"counters": {}, "gauges": {}, "distributions": {}},
            flows=[],
            failure=traceback.format_exc(),
        )
    finally:
        if segment_sink is not None:
            segment_sink.close()
            _obs.TRACER = saved_tracer


def _integrity_from_dict(
    data: Optional[Mapping[str, Any]],
) -> Optional[IntegrityResult]:
    if data is None:
        return None
    return IntegrityResult(**{key: data[key] for key in _INTEGRITY_FIELDS})


def _merge_outcomes(
    spec: TopologySpec,
    outcomes: List[_ShardOutcome],
    metrics_mode: str,
) -> TopologyReport:
    """Fold per-shard outcomes into one report, byte-identical to 1 worker.

    Counters and gauges are re-imported in shard-index order (they are
    disjoint across shards, so order only matters for insertion, and the
    JSON export sorts keys anyway); per-flow latency distributions are
    restored from their full state and folded into ``endtoend.latency``
    in flow-declaration order of the *full* spec — the same left-fold the
    monolithic engine performs, so float sums match exactly.
    """
    streaming = metrics_mode == "streaming"
    outcomes = sorted(outcomes, key=lambda outcome: outcome.index)
    metrics = MetricsRegistry(bounded_distributions=streaming)
    for outcome in outcomes:
        for name, value in outcome.registry_state["counters"].items():
            metrics.increment(name, value)
        for name, value in outcome.registry_state["gauges"].items():
            metrics.set_gauge(name, value)
        for name, state in outcome.registry_state["distributions"].items():
            if name == "endtoend.latency":
                continue  # rebuilt below in full-spec flow order
            metrics.add_distribution(Distribution.from_state(name, state))

    endtoend = metrics.distribution("endtoend.latency")
    flow_data = {
        data["name"]: data for outcome in outcomes for data in outcome.flows
    }
    distributions = metrics.distributions()
    flow_results: List[FlowResult] = []
    totals = {key: 0 for key in _INTEGRITY_FIELDS}
    any_integrity = False
    for flow_spec in spec.flows:
        data = flow_data[flow_spec.name]
        latency = distributions.get(f"flow.{flow_spec.name}.latency")
        if latency is not None and not latency.empty:
            if streaming:
                endtoend.merge(latency)
            else:
                endtoend.extend(latency.samples)
        integrity = _integrity_from_dict(data["integrity"])
        if integrity is not None:
            any_integrity = True
            for key in totals:
                totals[key] += getattr(integrity, key)
        flow_results.append(
            FlowResult(
                name=data["name"],
                source=data["source"],
                seed=data["seed"],
                chunks_sent=data["chunks_sent"],
                payload_bytes_sent=data["payload_bytes_sent"],
                frames_sent=data["frames_sent"],
                delivered=data["delivered"],
                integrity=integrity,
                latency=dict(data["latency"]),
            )
        )

    first_uncompressed = min(
        (
            outcome.first_uncompressed
            for outcome in outcomes
            if outcome.first_uncompressed is not None
        ),
        default=None,
    )
    first_compressed = min(
        (
            outcome.first_compressed
            for outcome in outcomes
            if outcome.first_compressed is not None
        ),
        default=None,
    )
    learning_time = (
        None
        if first_uncompressed is None or first_compressed is None
        else max(0.0, first_compressed - first_uncompressed)
    )
    return TopologyReport(
        topology=spec.name,
        scenario=spec.scenario,
        chunks_sent=sum(result.chunks_sent for result in flow_results),
        payload_bytes_sent=sum(
            result.payload_bytes_sent for result in flow_results
        ),
        wire_payload_bytes=sum(
            outcome.wire_payload_bytes for outcome in outcomes
        ),
        duration=max((outcome.duration for outcome in outcomes), default=0.0),
        integrity=IntegrityResult(**totals) if any_integrity else None,
        flows=flow_results,
        metrics=metrics,
        learning_time=learning_time,
    )


def _raise_on_failure(outcome: _ShardOutcome) -> _ShardOutcome:
    if outcome.failure is not None:
        raise TopologyError(
            f"shard {outcome.name!r} (index {outcome.index}) failed:\n"
            f"{outcome.failure}"
        )
    return outcome


def run_topology(
    spec: TopologySpec,
    workers: int = 1,
    verify_integrity: bool = True,
    metrics_mode: str = "exact",
    progress: Optional[Callable[[str], None]] = None,
) -> TopologyReport:
    """Partition ``spec``, simulate the shards, and merge one report.

    ``workers=1`` runs the shards sequentially in-process; ``workers>1``
    fans them across a process pool (``fork`` start method on Linux, the
    platform default elsewhere — spawn-safe because the worker rebuilds
    everything from the picklable shard spec).  Either way the merged
    report is byte-identical: the worker count only changes wall-clock.

    A spec that cannot be partitioned (multiple encoders in one
    component) still runs at ``workers=1`` — it falls back to the
    monolithic engine, whose report this path reproduces exactly — but
    raises :class:`PartitionError` for ``workers > 1``, because no process
    boundary can honor a shared dictionary.
    """
    if metrics_mode not in METRICS_MODES:
        raise TopologyError(
            f"metrics_mode must be one of {', '.join(METRICS_MODES)}; "
            f"got {metrics_mode!r}"
        )
    if workers < 1:
        raise TopologyError(f"workers must be a positive integer, got {workers}")
    try:
        shards = partition_spec(spec)
    except PartitionError:
        if workers > 1:
            raise
        return TopologyEngine(
            spec, verify_integrity=verify_integrity, metrics_mode=metrics_mode
        ).run()

    qualify = sum(1 for node in spec.nodes if node.kind == "encoder") > 1
    # With tracing on, every shard — regardless of worker count — writes a
    # JSON-lines segment into a private temp dir; the segments are merged
    # below on (ts, shard, seq), a key independent of process scheduling,
    # so the final trace matches at any worker count.
    parent_tracer = _obs.TRACER
    trace_dir: Optional[str] = None
    segment_paths: List[str] = []
    if parent_tracer.enabled:
        trace_dir = tempfile.mkdtemp(prefix="repro-trace-")
        segment_paths = [
            os.path.join(trace_dir, f"shard-{shard.index}.jsonl")
            for shard in shards
        ]
    tasks = [
        _ShardTask(
            shard=shard,
            verify_integrity=verify_integrity,
            metrics_mode=metrics_mode,
            qualify_controlplane=qualify,
            trace_segment=segment_paths[position] if segment_paths else None,
            snapshot_interval=(
                parent_tracer.snapshot_interval if parent_tracer.enabled else None
            ),
        )
        for position, shard in enumerate(shards)
    ]

    try:
        processes = min(workers, len(tasks))
        outcomes: List[_ShardOutcome] = []
        if processes <= 1:
            for done, task in enumerate(tasks, start=1):
                outcome = _raise_on_failure(_run_shard(task))
                outcomes.append(outcome)
                if progress is not None:
                    progress(
                        f"[{done}/{len(tasks)}] shard {outcome.name}: "
                        f"{outcome.duration * 1e3:.3f} ms simulated"
                    )
        else:
            # PR 3 hardening, mirrored: fork is a measured 5x+ startup win on
            # Linux; everywhere else the platform default avoids macOS fork
            # unsafety.  chunksize=1 keeps shards spread across the pool.
            method = "fork" if sys.platform == "linux" else None
            context = multiprocessing.get_context(method)
            with context.Pool(processes=processes) as pool:
                for done, outcome in enumerate(
                    pool.imap_unordered(_run_shard, tasks, chunksize=1), start=1
                ):
                    _raise_on_failure(outcome)
                    outcomes.append(outcome)
                    if progress is not None:
                        progress(
                            f"[{done}/{len(tasks)}] shard {outcome.name}: "
                            f"{outcome.duration * 1e3:.3f} ms simulated"
                        )
        report = _merge_outcomes(spec, outcomes, metrics_mode)
        if segment_paths:
            written = [path for path in segment_paths if os.path.exists(path)]
            for event in merge_segments(written):
                parent_tracer.emit_raw(event)
        return report
    finally:
        if trace_dir is not None:
            shutil.rmtree(trace_dir, ignore_errors=True)
