"""Topology graphs: arbitrary node/link networks with concurrent flows.

This package generalises the point-to-point replay chain into a graph
engine:

* :mod:`repro.topology.graph` — :class:`Node`/:class:`TopologyGraph`
  abstractions and the shared multi-hop link-chain builder;
* :mod:`repro.topology.nodes` — hosts, ZipLine encoder/decoder adapters,
  plain forwarders;
* :mod:`repro.topology.spec` — the declarative :class:`TopologySpec`
  (JSON/dict: nodes, links, flows) plus the ``linear`` / ``fan-in`` /
  ``paper-testbed`` presets and the shared CRC-32 seed derivation;
* :mod:`repro.topology.control` — in-network control messages (table
  installs that cross an emulated link instead of a method call), with
  optional token-bucket pacing and a bounded install queue;
* :mod:`repro.topology.faults` — the declarative :class:`FaultPlan`
  (control-link loss/reorder, scheduled node restarts, eviction storms)
  a spec can carry for deterministic fault injection;
* :mod:`repro.topology.engine` — :class:`TopologyEngine`, which runs N
  concurrent flows over one spec and returns a :class:`TopologyReport`
  with per-flow and per-link attribution;
* :mod:`repro.topology.sharding` — :func:`run_topology`, which splits a
  spec into independent per-encoder shards, simulates them across a
  process pool, and merges one byte-identical report at any worker count.

Quick start::

    from repro.topology import run_topology, rack_fan_in_topology

    spec = rack_fan_in_topology(racks=4, senders=8, chunks=2000)
    report = run_topology(spec, workers=4, metrics_mode="streaming")
    print(report.render())
"""

from repro.topology.graph import (
    LinkSink,
    Node,
    TopologyEdge,
    TopologyGraph,
    build_link_chain,
)
from repro.topology.nodes import (
    ForwardNode,
    HostNode,
    ZipLineDecoderNode,
    ZipLineEncoderNode,
)
from repro.topology.faults import (
    EvictionStorm,
    FaultPlan,
    NodeRestart,
    load_fault_plan,
    validate_spec_faults,
)
from repro.topology.spec import (
    TOPOLOGY_PRESETS,
    FlowSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    derive_flow_seed,
    derive_seed,
    fan_in_stress_topology,
    fan_in_topology,
    fault_storm_topology,
    linear_topology,
    paper_testbed_topology,
    preset_topology,
    rack_fan_in_topology,
)
from repro.topology.control import (
    ETHERTYPE_ZIPLINE_CONTROL,
    ControlChannel,
    apply_switch_command,
)
from repro.topology.engine import (
    METRICS_MODES,
    FlowResult,
    TopologyEngine,
    TopologyReport,
)
from repro.topology.sharding import (
    PartitionError,
    TopologyShard,
    partition_spec,
    run_topology,
)

__all__ = [
    "LinkSink",
    "Node",
    "TopologyEdge",
    "TopologyGraph",
    "build_link_chain",
    "ForwardNode",
    "HostNode",
    "ZipLineDecoderNode",
    "ZipLineEncoderNode",
    "TOPOLOGY_PRESETS",
    "FlowSpec",
    "LinkSpec",
    "NodeSpec",
    "TopologySpec",
    "derive_flow_seed",
    "derive_seed",
    "EvictionStorm",
    "FaultPlan",
    "NodeRestart",
    "load_fault_plan",
    "validate_spec_faults",
    "fan_in_stress_topology",
    "fan_in_topology",
    "fault_storm_topology",
    "linear_topology",
    "paper_testbed_topology",
    "preset_topology",
    "rack_fan_in_topology",
    "ETHERTYPE_ZIPLINE_CONTROL",
    "ControlChannel",
    "apply_switch_command",
    "METRICS_MODES",
    "FlowResult",
    "TopologyEngine",
    "TopologyReport",
    "PartitionError",
    "TopologyShard",
    "partition_spec",
    "run_topology",
]
