"""Topology graphs: arbitrary node/link networks with concurrent flows.

This package generalises the point-to-point replay chain into a graph
engine:

* :mod:`repro.topology.graph` — :class:`Node`/:class:`TopologyGraph`
  abstractions and the shared multi-hop link-chain builder;
* :mod:`repro.topology.nodes` — hosts, ZipLine encoder/decoder adapters,
  plain forwarders;
* :mod:`repro.topology.spec` — the declarative :class:`TopologySpec`
  (JSON/dict: nodes, links, flows) plus the ``linear`` / ``fan-in`` /
  ``paper-testbed`` presets and the shared CRC-32 seed derivation;
* :mod:`repro.topology.control` — in-network control messages (table
  installs that cross an emulated link instead of a method call);
* :mod:`repro.topology.engine` — :class:`TopologyEngine`, which runs N
  concurrent flows over one spec and returns a :class:`TopologyReport`
  with per-flow and per-link attribution.

Quick start::

    from repro.topology import TopologyEngine, fan_in_topology

    spec = fan_in_topology(senders=4, scenario="static", chunks=2000)
    report = TopologyEngine(spec).run()
    print(report.render())
"""

from repro.topology.graph import (
    LinkSink,
    Node,
    TopologyEdge,
    TopologyGraph,
    build_link_chain,
)
from repro.topology.nodes import (
    ForwardNode,
    HostNode,
    ZipLineDecoderNode,
    ZipLineEncoderNode,
)
from repro.topology.spec import (
    TOPOLOGY_PRESETS,
    FlowSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    derive_flow_seed,
    derive_seed,
    fan_in_topology,
    linear_topology,
    paper_testbed_topology,
    preset_topology,
)
from repro.topology.control import (
    ETHERTYPE_ZIPLINE_CONTROL,
    ControlChannel,
    apply_switch_command,
)
from repro.topology.engine import FlowResult, TopologyEngine, TopologyReport

__all__ = [
    "LinkSink",
    "Node",
    "TopologyEdge",
    "TopologyGraph",
    "build_link_chain",
    "ForwardNode",
    "HostNode",
    "ZipLineDecoderNode",
    "ZipLineEncoderNode",
    "TOPOLOGY_PRESETS",
    "FlowSpec",
    "LinkSpec",
    "NodeSpec",
    "TopologySpec",
    "derive_flow_seed",
    "derive_seed",
    "fan_in_topology",
    "linear_topology",
    "paper_testbed_topology",
    "preset_topology",
    "ETHERTYPE_ZIPLINE_CONTROL",
    "ControlChannel",
    "apply_switch_command",
    "FlowResult",
    "TopologyEngine",
    "TopologyReport",
]
