"""Declarative topology descriptions: nodes, links, flows — and presets.

A :class:`TopologySpec` is the JSON/dict form of a topology experiment:

* ``nodes`` — named vertices with a ``kind`` (``host``, ``encoder``,
  ``decoder``, ``forward``);
* ``links`` — directed connections ``"node:port" -> "node:port"`` with
  per-link emulation parameters (bandwidth, propagation, queue bound,
  loss/reorder, serial ``hops``); ``direct: true`` makes the connection a
  synchronous wire (the original testbed's tapped hop), ``measured: true``
  marks the link whose traffic the Figure 3 byte accounting reads;
* ``flows`` — concurrent traffic streams, each with its own source/sink
  host, workload or trace, pacing, start offset and seed.  A flow without
  an explicit seed gets one derived from the spec name, the spec seed and
  the flow name via the same CRC-32 scheme the experiment matrix uses, so
  per-flow randomness never depends on declaration order, scheduling order
  or worker count.

Validation is strict and *names the offending node, link or flow* in every
error — a sweep over hundreds of generated specs must fail with "link
'uplink': unknown target node 'decdoer'", not a bare KeyError.

:data:`TOPOLOGY_PRESETS` registers the shapes users reach for by name:
``linear`` (the replay harness chain), ``fan-in`` (K senders sharing one
encoder — the dictionary-contention scenario a single-flow harness cannot
express) and ``paper-testbed`` (the two-switch deployment).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import TopologyError
from repro.topology.faults import FaultPlan, NodeRestart, validate_spec_faults

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "FlowSpec",
    "TopologySpec",
    "TOPOLOGY_PRESETS",
    "preset_topology",
    "linear_topology",
    "fan_in_topology",
    "fan_in_stress_topology",
    "rack_fan_in_topology",
    "fault_storm_topology",
    "paper_testbed_topology",
    "derive_seed",
    "derive_flow_seed",
]

NODE_KINDS = ("host", "encoder", "decoder", "forward")
WORKLOADS = ("synthetic", "dns", "thrash")
PACINGS = ("recorded", "rate", "back-to-back")
SCENARIOS = ("no_table", "static", "dynamic")
CONTROL_MODES = ("direct", "in-network")


def derive_seed(name: str, seed: int, entity_id: str) -> int:
    """Stable component seed: a name/seed pair mixed with an entity identity.

    This is *the* seed-derivation scheme of the repository (CRC-32, stable
    across processes, platforms and Python versions, result in the
    non-negative 31-bit range every consumer accepts).  The experiment
    matrix derives per-scenario seeds through it, topologies derive
    per-flow and per-link seeds through it — so randomness is always a
    pure function of *what* an entity is, never of scheduling order,
    declaration order or worker count.
    """
    digest = zlib.crc32(f"{name}:{entity_id}".encode("utf-8"))
    return (digest ^ (seed & 0xFFFFFFFF)) & 0x7FFFFFFF


def derive_flow_seed(spec_name: str, spec_seed: int, flow_name: str) -> int:
    """Per-flow seed: the flow's identity through :func:`derive_seed`.

    >>> derive_flow_seed("demo", 0, "flow0") == derive_flow_seed("demo", 0, "flow0")
    True
    >>> derive_flow_seed("demo", 0, "flow0") != derive_flow_seed("demo", 0, "flow1")
    True
    """
    return derive_seed(spec_name, spec_seed, f"flow:{flow_name}")


def _where_error(where: str, message: str) -> TopologyError:
    return TopologyError(f"{where}: {message}")


def _require_string(where: str, name: str, value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise _where_error(where, f"{name} must be a non-empty string, got {value!r}")
    return value


def _require_choice(where: str, name: str, value: Any, options: Sequence[str]) -> str:
    if not isinstance(value, str) or value not in options:
        raise _where_error(
            where, f"{name} must be one of {', '.join(options)}; got {value!r}"
        )
    return value


def _require_positive_int(where: str, name: str, value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise _where_error(where, f"{name} must be a positive integer, got {value!r}")
    return value


def _require_non_negative_number(where: str, name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        raise _where_error(
            where, f"{name} must be a non-negative number, got {value!r}"
        )
    return float(value)


def _require_positive_number(where: str, name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise _where_error(where, f"{name} must be a positive number, got {value!r}")
    return float(value)


def _require_probability(where: str, name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _where_error(where, f"{name} must be a number in [0, 1], got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise _where_error(where, f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def _reject_unknown_keys(where: str, data: Mapping[str, Any], known: Sequence[str]) -> None:
    unknown = set(data) - set(known)
    if unknown:
        raise _where_error(
            where,
            f"unknown keys: {', '.join(sorted(unknown))} "
            f"(expected {', '.join(known)})",
        )


def _parse_port_ref(where: str, name: str, value: Any) -> Tuple[str, int]:
    """Parse a ``"node:port"`` endpoint reference."""
    if not isinstance(value, str) or ":" not in value:
        raise _where_error(
            where, f"{name} must be a 'node:port' string, got {value!r}"
        )
    node, _, port_text = value.rpartition(":")
    if not node:
        raise _where_error(where, f"{name} names no node in {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise _where_error(
            where, f"{name} has a non-integer port in {value!r}"
        ) from None
    if port < 0:
        raise _where_error(where, f"{name} port must be non-negative, got {port}")
    return node, port


@dataclass(frozen=True)
class NodeSpec:
    """One vertex of the declarative topology."""

    name: str
    kind: str
    forwarding: Dict[int, int] = field(default_factory=dict)
    default_egress_port: Optional[int] = None
    decoder: Optional[str] = None  # encoder nodes: the paired decoder node

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeSpec":
        if not isinstance(data, Mapping):
            raise TopologyError(f"node entries must be mappings, got {data!r}")
        name = _require_string("node", "name", data.get("name"))
        where = f"node {name!r}"
        _reject_unknown_keys(
            where, data, ("name", "kind", "forwarding", "default_egress_port", "decoder")
        )
        kind = _require_choice(where, "kind", data.get("kind"), NODE_KINDS)
        forwarding: Dict[int, int] = {}
        for ingress, egress in (data.get("forwarding") or {}).items():
            try:
                forwarding[int(ingress)] = int(egress)
            except (TypeError, ValueError):
                raise _where_error(
                    where, f"forwarding entries must be integer ports, got "
                    f"{ingress!r}: {egress!r}"
                ) from None
        default_egress = data.get("default_egress_port")
        if default_egress is not None:
            if (
                isinstance(default_egress, bool)
                or not isinstance(default_egress, int)
                or default_egress < 0
            ):
                raise _where_error(
                    where,
                    f"default_egress_port must be a non-negative integer, "
                    f"got {default_egress!r}",
                )
        decoder = data.get("decoder")
        if decoder is not None:
            decoder = _require_string(where, "decoder", decoder)
            if kind != "encoder":
                raise _where_error(where, "only encoder nodes take a 'decoder' pairing")
        return cls(
            name=name,
            kind=kind,
            forwarding=forwarding,
            default_egress_port=default_egress,
            decoder=decoder,
        )

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.forwarding:
            data["forwarding"] = {str(k): v for k, v in self.forwarding.items()}
        if self.default_egress_port is not None:
            data["default_egress_port"] = self.default_egress_port
        if self.decoder is not None:
            data["decoder"] = self.decoder
        return data


@dataclass(frozen=True)
class LinkSpec:
    """One directed connection of the declarative topology."""

    name: str
    source: Tuple[str, int]
    target: Tuple[str, int]
    bandwidth_gbps: float = 100.0
    propagation_us: float = 0.5
    queue_capacity: int = 0  # 0 = unbounded
    loss: float = 0.0
    reorder: float = 0.0
    hops: int = 1
    direct: bool = False
    measured: bool = False
    seed: Optional[int] = None  # None → derived from the spec identity

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkSpec":
        if not isinstance(data, Mapping):
            raise TopologyError(f"link entries must be mappings, got {data!r}")
        name = _require_string("link", "name", data.get("name"))
        where = f"link {name!r}"
        _reject_unknown_keys(
            where,
            data,
            (
                "name", "source", "target", "bandwidth_gbps", "propagation_us",
                "queue_capacity", "loss", "reorder", "hops", "direct", "measured",
                "seed",
            ),
        )
        seed = data.get("seed")
        if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
            raise _where_error(where, f"seed must be an integer, got {seed!r}")
        direct = bool(data.get("direct", False))
        hops = _require_positive_int(where, "hops", data.get("hops", 1))
        if direct and hops != 1:
            raise _where_error(where, "a direct link cannot have multiple hops")
        queue_capacity = data.get("queue_capacity", 0)
        if not isinstance(queue_capacity, int) or isinstance(queue_capacity, bool) or queue_capacity < 0:
            raise _where_error(
                where,
                f"queue_capacity must be a non-negative integer (0 = unbounded), "
                f"got {queue_capacity!r}",
            )
        return cls(
            name=name,
            source=_parse_port_ref(where, "source", data.get("source")),
            target=_parse_port_ref(where, "target", data.get("target")),
            bandwidth_gbps=_require_positive_number(
                where, "bandwidth_gbps", data.get("bandwidth_gbps", 100.0)
            ),
            propagation_us=_require_non_negative_number(
                where, "propagation_us", data.get("propagation_us", 0.5)
            ),
            queue_capacity=queue_capacity,
            loss=_require_probability(where, "loss", data.get("loss", 0.0)),
            reorder=_require_probability(where, "reorder", data.get("reorder", 0.0)),
            hops=hops,
            direct=direct,
            measured=bool(data.get("measured", False)),
            seed=seed,
        )

    def hop_names(self) -> List[str]:
        """Names of the serial hops this link expands into.

        A single-hop link keeps its own name; a multi-hop link numbers its
        hops ``<name>0 .. <name>N-1`` (the convention the replay harness
        established with ``link0``, ``link1``, …).
        """
        if self.hops == 1:
            return [self.name]
        return [f"{self.name}{index}" for index in range(self.hops)]

    def as_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "source": f"{self.source[0]}:{self.source[1]}",
            "target": f"{self.target[0]}:{self.target[1]}",
            "bandwidth_gbps": self.bandwidth_gbps,
            "propagation_us": self.propagation_us,
            "queue_capacity": self.queue_capacity,
            "loss": self.loss,
            "reorder": self.reorder,
            "hops": self.hops,
            "direct": self.direct,
            "measured": self.measured,
        }
        if self.seed is not None:
            data["seed"] = self.seed
        return data


@dataclass(frozen=True)
class FlowSpec:
    """One concurrent traffic stream of the declarative topology."""

    name: str
    source: str
    sink: str
    workload: str = "synthetic"
    chunks: int = 1000
    bases: int = 16
    names: int = 300
    trace: Optional[str] = None
    pacing: str = "rate"
    packet_rate: float = 1e6
    speedup: float = 1.0
    start: float = 0.0
    seed: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        if not isinstance(data, Mapping):
            raise TopologyError(f"flow entries must be mappings, got {data!r}")
        name = _require_string("flow", "name", data.get("name"))
        where = f"flow {name!r}"
        _reject_unknown_keys(
            where,
            data,
            (
                "name", "source", "sink", "workload", "chunks", "bases", "names",
                "trace", "pacing", "packet_rate", "speedup", "start", "seed",
            ),
        )
        seed = data.get("seed")
        if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
            raise _where_error(where, f"seed must be an integer, got {seed!r}")
        trace = data.get("trace")
        if trace is not None:
            trace = _require_string(where, "trace", trace)
        return cls(
            name=name,
            source=_require_string(where, "source", data.get("source")),
            sink=_require_string(where, "sink", data.get("sink")),
            workload=_require_choice(
                where, "workload", data.get("workload", "synthetic"), WORKLOADS
            ),
            chunks=_require_positive_int(where, "chunks", data.get("chunks", 1000)),
            bases=_require_positive_int(where, "bases", data.get("bases", 16)),
            names=_require_positive_int(where, "names", data.get("names", 300)),
            trace=trace,
            pacing=_require_choice(where, "pacing", data.get("pacing", "rate"), PACINGS),
            packet_rate=_require_positive_number(
                where, "packet_rate", data.get("packet_rate", 1e6)
            ),
            speedup=_require_positive_number(
                where, "speedup", data.get("speedup", 1.0)
            ),
            start=_require_non_negative_number(where, "start", data.get("start", 0.0)),
            seed=seed,
        )

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "source": self.source,
            "sink": self.sink,
            "workload": self.workload,
            "chunks": self.chunks,
            "bases": self.bases,
            "names": self.names,
            "pacing": self.pacing,
            "packet_rate": self.packet_rate,
            "speedup": self.speedup,
            "start": self.start,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        if self.seed is not None:
            data["seed"] = self.seed
        return data


class TopologySpec:
    """A validated topology document: nodes + links + flows + scenario.

    Build one from plain data with :meth:`from_dict` / :meth:`from_file`,
    or use the preset constructors (:func:`linear_topology`,
    :func:`fan_in_topology`, :func:`paper_testbed_topology`).
    """

    def __init__(
        self,
        name: str,
        nodes: Sequence[NodeSpec],
        links: Sequence[LinkSpec],
        flows: Sequence[FlowSpec],
        scenario: str = "dynamic",
        order: int = 8,
        identifier_bits: int = 15,
        seed: int = 0,
        entry_ttl: Optional[float] = None,
        control: str = "direct",
        control_bandwidth_gbps: float = 10.0,
        control_propagation_us: float = 5.0,
        control_rate: Optional[float] = None,
        control_queue: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        batch_drain: bool = False,
    ):
        where = "topology"
        self.name = _require_string(where, "name", name)
        where = f"topology {self.name!r}"
        self.scenario = _require_choice(where, "scenario", scenario, SCENARIOS)
        self.order = _require_positive_int(where, "order", order)
        self.identifier_bits = _require_positive_int(
            where, "identifier_bits", identifier_bits
        )
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise _where_error(where, f"seed must be an integer, got {seed!r}")
        self.seed = seed
        self.entry_ttl = (
            None
            if entry_ttl is None
            else _require_positive_number(where, "entry_ttl", entry_ttl)
        )
        self.control = _require_choice(where, "control", control, CONTROL_MODES)
        self.control_bandwidth_gbps = _require_positive_number(
            where, "control_bandwidth_gbps", control_bandwidth_gbps
        )
        self.control_propagation_us = _require_non_negative_number(
            where, "control_propagation_us", control_propagation_us
        )
        self.control_rate = (
            None
            if control_rate is None
            else _require_positive_number(where, "control_rate", control_rate)
        )
        self.control_queue = (
            None
            if control_queue is None
            else _require_positive_int(where, "control_queue", control_queue)
        )
        if faults is not None and not isinstance(faults, FaultPlan):
            faults = FaultPlan.from_dict(faults)
        self.faults = faults
        if not isinstance(batch_drain, bool):
            raise _where_error(
                where, f"batch_drain must be a boolean, got {batch_drain!r}"
            )
        self.batch_drain = batch_drain
        self.nodes: List[NodeSpec] = list(nodes)
        self.links: List[LinkSpec] = list(links)
        self.flows: List[FlowSpec] = list(flows)
        self._validate()
        validate_spec_faults(self)

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        if not self.nodes:
            raise _where_error(f"topology {self.name!r}", "has no nodes")
        by_name: Dict[str, NodeSpec] = {}
        for node in self.nodes:
            if node.name in by_name:
                raise _where_error(
                    f"node {node.name!r}", "is declared more than once"
                )
            by_name[node.name] = node
        for node in self.nodes:
            if node.decoder is not None and node.decoder not in by_name:
                raise _where_error(
                    f"node {node.name!r}",
                    f"pairs with unknown decoder node {node.decoder!r}",
                )
            if node.decoder is not None and by_name[node.decoder].kind != "decoder":
                raise _where_error(
                    f"node {node.name!r}",
                    f"pairs with {node.decoder!r}, which is not a decoder node",
                )

        seen_links: Dict[str, LinkSpec] = {}
        seen_hop_names: Dict[str, str] = {}
        seen_sources: Dict[Tuple[str, int], str] = {}
        for link in self.links:
            where = f"link {link.name!r}"
            if link.name in seen_links:
                raise _where_error(where, "is declared more than once")
            seen_links[link.name] = link
            for label, (node, _port) in (("source", link.source), ("target", link.target)):
                if node not in by_name:
                    raise _where_error(
                        where, f"references unknown {label} node {node!r}"
                    )
            # Expanded hop names are metric namespaces; a collision would
            # silently sum two different links' counters under one key.
            for hop_name in link.hop_names():
                if hop_name in seen_hop_names:
                    raise _where_error(
                        where,
                        f"hop name {hop_name!r} collides with link "
                        f"{seen_hop_names[hop_name]!r}",
                    )
                seen_hop_names[hop_name] = link.name
            # One egress port feeds one edge; a second edge from the same
            # port would silently overwrite the first at wiring time.
            if link.source in seen_sources:
                raise _where_error(
                    where,
                    f"source {link.source[0]}:{link.source[1]} is already "
                    f"used by link {seen_sources[link.source]!r}",
                )
            seen_sources[link.source] = link.name

        seen_flows: Dict[str, FlowSpec] = {}
        for flow in self.flows:
            where = f"flow {flow.name!r}"
            if flow.name in seen_flows:
                raise _where_error(where, "is declared more than once")
            seen_flows[flow.name] = flow
            for label, node_name in (("source", flow.source), ("sink", flow.sink)):
                if node_name not in by_name:
                    raise _where_error(
                        where, f"references unknown {label} node {node_name!r}"
                    )
                if by_name[node_name].kind != "host":
                    raise _where_error(
                        where,
                        f"{label} node {node_name!r} is a "
                        f"{by_name[node_name].kind} node, not a host",
                    )

    # -- accessors ---------------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        """Look up a node spec by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        known = ", ".join(repr(node.name) for node in self.nodes)
        raise TopologyError(f"unknown node {name!r}; known nodes: {known}")

    @property
    def measured_link(self) -> Optional[LinkSpec]:
        """The (first) link the wire accounting reads.

        An explicit ``measured: true`` link wins.  Without one, the first
        *emulated* (non-direct) link is used — direct links are typically
        the host-facing ingress/egress attachments, and tapping one of
        those would measure raw traffic before compression.  Falls back to
        the first link only when every link is direct.
        """
        for link in self.links:
            if link.measured:
                return link
        for link in self.links:
            if not link.direct:
                return link
        return self.links[0] if self.links else None

    @property
    def measured_links(self) -> List[LinkSpec]:
        """Every link the wire accounting reads, in declaration order.

        A spec may mark several links ``measured: true`` (one wire per
        rack in the multi-encoder presets); their payload bytes are summed
        into the report's ``wire_payload_bytes`` and the learning-time
        gap uses the earliest type-2/type-3 frame across all of them.
        Without any explicit mark this is the :attr:`measured_link`
        fallback as a one-element list (or empty).
        """
        explicit = [link for link in self.links if link.measured]
        if explicit:
            return explicit
        fallback = self.measured_link
        return [] if fallback is None else [fallback]

    # -- connectivity ------------------------------------------------------------

    def node_components(self) -> Dict[str, int]:
        """Map every node name to its connected-component id.

        Components are computed over the undirected union of all links
        *plus* each encoder's control coupling to its paired decoder
        (explicit ``decoder:`` pairing, or the implied pairing when the
        spec has exactly one decoder) — two nodes share a component id
        exactly when traffic or control state can flow between them.
        Component ids are dense and ordered by first appearance in the
        node list, so they are deterministic for a given spec.
        """
        parent = {node.name: node.name for node in self.nodes}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        for link in self.links:
            union(link.source[0], link.target[0])
        decoders = [node for node in self.nodes if node.kind == "decoder"]
        for node in self.nodes:
            if node.kind != "encoder":
                continue
            decoder = node.decoder
            if decoder is None and len(decoders) == 1:
                decoder = decoders[0].name
            if decoder is not None:
                union(node.name, decoder)
        ids: Dict[str, int] = {}
        component_of: Dict[str, int] = {}
        for node in self.nodes:
            root = find(node.name)
            if root not in ids:
                ids[root] = len(ids)
            component_of[node.name] = ids[root]
        return component_of

    def components(self) -> List[List[str]]:
        """Node names grouped by connected component, in declaration order."""
        component_of = self.node_components()
        groups: Dict[int, List[str]] = {}
        for node in self.nodes:
            groups.setdefault(component_of[node.name], []).append(node.name)
        return [groups[index] for index in range(len(groups))]

    def flow_seed(self, flow: FlowSpec) -> int:
        """The flow's effective seed (explicit, or derived from identity)."""
        if flow.seed is not None:
            return flow.seed
        return derive_flow_seed(self.name, self.seed, flow.name)

    # -- serialisation -----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        """Build and validate a spec from a plain dictionary."""
        if not isinstance(data, Mapping):
            raise TopologyError(f"topology spec must be a mapping, got {data!r}")
        _reject_unknown_keys(
            "topology spec",
            data,
            (
                "name", "scenario", "order", "identifier_bits", "seed",
                "entry_ttl", "control", "control_bandwidth_gbps",
                "control_propagation_us", "control_rate", "control_queue",
                "faults", "nodes", "links", "flows", "batch_drain",
            ),
        )
        return cls(
            name=data.get("name", "topology"),
            nodes=[NodeSpec.from_dict(entry) for entry in data.get("nodes", [])],
            links=[LinkSpec.from_dict(entry) for entry in data.get("links", [])],
            flows=[FlowSpec.from_dict(entry) for entry in data.get("flows", [])],
            scenario=data.get("scenario", "dynamic"),
            order=data.get("order", 8),
            identifier_bits=data.get("identifier_bits", 15),
            seed=data.get("seed", 0),
            entry_ttl=data.get("entry_ttl"),
            control=data.get("control", "direct"),
            control_bandwidth_gbps=data.get("control_bandwidth_gbps", 10.0),
            control_propagation_us=data.get("control_propagation_us", 5.0),
            control_rate=data.get("control_rate"),
            control_queue=data.get("control_queue"),
            faults=(
                FaultPlan.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            batch_drain=data.get("batch_drain", False),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TopologySpec":
        """Load a spec from a JSON file."""
        target = Path(path)
        if not target.exists():
            raise TopologyError(f"topology spec file {target} does not exist")
        try:
            document = json.loads(target.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise TopologyError(f"invalid JSON in {target}: {error}") from None
        return cls.from_dict(document)

    def as_dict(self) -> Dict[str, Any]:
        """The validated spec as plain data (round-trips through JSON)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "scenario": self.scenario,
            "order": self.order,
            "identifier_bits": self.identifier_bits,
            "seed": self.seed,
            "control": self.control,
            "nodes": [node.as_dict() for node in self.nodes],
            "links": [link.as_dict() for link in self.links],
            "flows": [flow.as_dict() for flow in self.flows],
        }
        if self.entry_ttl is not None:
            data["entry_ttl"] = self.entry_ttl
        if self.control == "in-network":
            data["control_bandwidth_gbps"] = self.control_bandwidth_gbps
            data["control_propagation_us"] = self.control_propagation_us
        if self.control_rate is not None:
            data["control_rate"] = self.control_rate
        if self.control_queue is not None:
            data["control_queue"] = self.control_queue
        if self.faults is not None and self.faults.active:
            data["faults"] = self.faults.as_dict()
        if self.batch_drain:
            data["batch_drain"] = True
        return data


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------


def linear_topology(
    name: str = "linear",
    scenario: str = "dynamic",
    hops: int = 1,
    workload: str = "synthetic",
    chunks: int = 1000,
    bases: int = 16,
    names: int = 300,
    trace: Optional[str] = None,
    pacing: str = "rate",
    packet_rate: float = 1e6,
    speedup: float = 1.0,
    bandwidth_gbps: float = 100.0,
    propagation_us: float = 0.5,
    queue_capacity: int = 0,
    loss: float = 0.0,
    reorder: float = 0.0,
    seed: int = 0,
    flow_seed: Optional[int] = None,
    link_seed: Optional[int] = None,
    order: int = 8,
    identifier_bits: int = 15,
    **overrides: Any,
) -> TopologySpec:
    """The replay harness's chain as a spec: sender → encoder → link(s) → decoder → sink.

    The wire keeps the harness's hop naming (``link0``, ``link1``, …) so a
    one-flow linear topology reports the exact counter names the harness
    reports — the equivalence the test suite asserts byte for byte.
    """
    return TopologySpec(
        name=name,
        scenario=scenario,
        order=order,
        identifier_bits=identifier_bits,
        seed=seed,
        nodes=[
            NodeSpec(name="sender", kind="host"),
            NodeSpec(name="encoder", kind="encoder", forwarding={0: 1},
                     default_egress_port=1, decoder="decoder"),
            NodeSpec(name="decoder", kind="decoder", forwarding={0: 1},
                     default_egress_port=1),
            NodeSpec(name="sink", kind="host"),
        ],
        links=[
            LinkSpec(name="ingress", source=("sender", 0), target=("encoder", 0),
                     direct=True),
            LinkSpec(
                name="link0" if hops == 1 else "link",
                source=("encoder", 1),
                target=("decoder", 0),
                bandwidth_gbps=bandwidth_gbps,
                propagation_us=propagation_us,
                queue_capacity=queue_capacity,
                loss=loss,
                reorder=reorder,
                hops=hops,
                measured=True,
                seed=link_seed,
            ),
            LinkSpec(name="egress", source=("decoder", 1), target=("sink", 0),
                     direct=True),
        ],
        flows=[
            FlowSpec(
                name="flow0", source="sender", sink="sink", workload=workload,
                chunks=chunks, bases=bases, names=names, trace=trace,
                pacing=pacing, packet_rate=packet_rate, speedup=speedup,
                seed=flow_seed,
            )
        ],
        **overrides,
    )


def fan_in_topology(
    name: str = "fan-in",
    senders: int = 4,
    scenario: str = "dynamic",
    hops: int = 1,
    workload: str = "synthetic",
    chunks: int = 1000,
    bases: int = 16,
    names: int = 300,
    trace: Optional[str] = None,
    pacing: str = "rate",
    packet_rate: float = 1e6,
    speedup: float = 1.0,
    bandwidth_gbps: float = 100.0,
    propagation_us: float = 0.5,
    queue_capacity: int = 0,
    loss: float = 0.0,
    reorder: float = 0.0,
    seed: int = 0,
    order: int = 8,
    identifier_bits: int = 15,
    **overrides: Any,
) -> TopologySpec:
    """K senders fan in through one shared ZipLine encoder.

    Every sender drives its own flow (own workload stream, own derived
    seed) into a dedicated encoder ingress port; the shared encoder, the
    measured inter-switch link and the decoder serve all of them — the
    dictionary-contention scenario a single-flow chain cannot express.
    """
    if senders < 1:
        raise TopologyError(f"fan-in needs at least one sender, got {senders}")
    nodes = [NodeSpec(name=f"sender{index}", kind="host") for index in range(senders)]
    wire_port = senders  # encoder egress sits after the K ingress ports
    nodes.extend(
        [
            NodeSpec(
                name="encoder",
                kind="encoder",
                forwarding={index: wire_port for index in range(senders)},
                default_egress_port=wire_port,
                decoder="decoder",
            ),
            NodeSpec(name="decoder", kind="decoder", forwarding={0: 1},
                     default_egress_port=1),
            NodeSpec(name="sink", kind="host"),
        ]
    )
    links = [
        LinkSpec(
            name=f"ingress{index}",
            source=(f"sender{index}", 0),
            target=("encoder", index),
            direct=True,
        )
        for index in range(senders)
    ]
    links.append(
        LinkSpec(
            name="shared",
            source=("encoder", wire_port),
            target=("decoder", 0),
            bandwidth_gbps=bandwidth_gbps,
            propagation_us=propagation_us,
            queue_capacity=queue_capacity,
            loss=loss,
            reorder=reorder,
            hops=hops,
            measured=True,
        )
    )
    links.append(
        LinkSpec(name="egress", source=("decoder", 1), target=("sink", 0),
                 direct=True)
    )
    flows = [
        FlowSpec(
            name=f"flow{index}",
            source=f"sender{index}",
            sink="sink",
            workload=workload,
            chunks=chunks,
            bases=bases,
            names=names,
            trace=trace,
            pacing=pacing,
            packet_rate=packet_rate,
            speedup=speedup,
            # Stagger starts by one inter-packet gap so simultaneous-arrival
            # ties never depend on flow declaration order.
            start=index / (packet_rate * max(1, senders)),
        )
        for index in range(senders)
    ]
    return TopologySpec(
        name=name,
        scenario=scenario,
        order=order,
        identifier_bits=identifier_bits,
        seed=seed,
        nodes=nodes,
        links=links,
        flows=flows,
        **overrides,
    )


def rack_fan_in_topology(
    name: str = "rack-fan-in",
    racks: int = 4,
    senders: int = 8,
    scenario: str = "dynamic",
    hops: int = 1,
    workload: str = "synthetic",
    chunks: int = 500,
    bases: int = 8,
    names: int = 300,
    trace: Optional[str] = None,
    pacing: str = "rate",
    packet_rate: float = 1e6,
    speedup: float = 1.0,
    bandwidth_gbps: float = 100.0,
    propagation_us: float = 0.5,
    queue_capacity: int = 0,
    loss: float = 0.0,
    reorder: float = 0.0,
    seed: int = 0,
    order: int = 8,
    identifier_bits: int = 15,
    **overrides: Any,
) -> TopologySpec:
    """R independent racks, each a K-sender fan-in behind its own encoder.

    The datacenter deployment at scale: every rack has its own encoder,
    measured rack wire and decoder, and nothing crosses rack boundaries —
    exactly the shape the shard partitioner splits into R independent
    subgraphs, so ``--workers N`` gets genuine parallelism here where the
    single-encoder ``fan-in`` preset collapses to one shard.
    """
    if racks < 1:
        raise TopologyError(f"rack-fan-in needs at least one rack, got {racks}")
    if senders < 1:
        raise TopologyError(
            f"rack-fan-in needs at least one sender per rack, got {senders}"
        )
    nodes: List[NodeSpec] = []
    links: List[LinkSpec] = []
    flows: List[FlowSpec] = []
    wire_port = senders  # each encoder's egress sits after its K ingress ports
    for rack in range(racks):
        nodes.extend(
            NodeSpec(name=f"sender{rack}_{index}", kind="host")
            for index in range(senders)
        )
        nodes.extend(
            [
                NodeSpec(
                    name=f"encoder{rack}",
                    kind="encoder",
                    forwarding={index: wire_port for index in range(senders)},
                    default_egress_port=wire_port,
                    decoder=f"decoder{rack}",
                ),
                NodeSpec(name=f"decoder{rack}", kind="decoder",
                         forwarding={0: 1}, default_egress_port=1),
                NodeSpec(name=f"sink{rack}", kind="host"),
            ]
        )
        links.extend(
            LinkSpec(
                name=f"ingress{rack}_{index}",
                source=(f"sender{rack}_{index}", 0),
                target=(f"encoder{rack}", index),
                direct=True,
            )
            for index in range(senders)
        )
        links.append(
            LinkSpec(
                name=f"wire{rack}",
                source=(f"encoder{rack}", wire_port),
                target=(f"decoder{rack}", 0),
                bandwidth_gbps=bandwidth_gbps,
                propagation_us=propagation_us,
                queue_capacity=queue_capacity,
                loss=loss,
                reorder=reorder,
                hops=hops,
                measured=True,
            )
        )
        links.append(
            LinkSpec(name=f"egress{rack}", source=(f"decoder{rack}", 1),
                     target=(f"sink{rack}", 0), direct=True)
        )
        flows.extend(
            FlowSpec(
                name=f"flow{rack}_{index}",
                source=f"sender{rack}_{index}",
                sink=f"sink{rack}",
                workload=workload,
                chunks=chunks,
                bases=bases,
                names=names,
                trace=trace,
                pacing=pacing,
                packet_rate=packet_rate,
                speedup=speedup,
                # Same per-rack stagger rule as the fan-in preset so ties
                # never depend on flow declaration order.
                start=index / (packet_rate * max(1, senders)),
            )
            for index in range(senders)
        )
    return TopologySpec(
        name=name,
        scenario=scenario,
        order=order,
        identifier_bits=identifier_bits,
        seed=seed,
        nodes=nodes,
        links=links,
        flows=flows,
        **overrides,
    )


def fan_in_stress_topology(
    name: str = "fan-in-stress",
    senders: int = 1000,
    chunks: int = 100,
    bases: int = 8,
    **kwargs: Any,
) -> TopologySpec:
    """The ``senders=1000+`` stress shape: the fan-in preset at rack scale.

    Defaults trade per-flow depth (``chunks=100``) for breadth so a stress
    run finishes in minutes; pass ``senders=``/``chunks=`` to push further.
    """
    return fan_in_topology(
        name=name, senders=senders, chunks=chunks, bases=bases, **kwargs
    )


def paper_testbed_topology(
    name: str = "paper-testbed",
    scenario: str = "dynamic",
    workload: str = "synthetic",
    chunks: int = 1000,
    bases: int = 16,
    names: int = 300,
    trace: Optional[str] = None,
    pacing: str = "rate",
    packet_rate: float = 1e6,
    speedup: float = 1.0,
    seed: int = 0,
    order: int = 8,
    identifier_bits: int = 15,
    **overrides: Any,
) -> TopologySpec:
    """The paper's two-switch testbed: a direct, tapped inter-switch hop."""
    spec = linear_topology(
        name=name,
        scenario=scenario,
        workload=workload,
        chunks=chunks,
        bases=bases,
        names=names,
        trace=trace,
        pacing=pacing,
        packet_rate=packet_rate,
        speedup=speedup,
        seed=seed,
        order=order,
        identifier_bits=identifier_bits,
        **overrides,
    )
    # Replace the emulated hop with the deployment's synchronous tapped wire.
    spec.links = [
        link if not link.measured else LinkSpec(
            name=link.name, source=link.source, target=link.target,
            direct=True, measured=True,
        )
        for link in spec.links
    ]
    return spec


def fault_storm_topology(
    name: str = "fault-storm",
    senders: int = 4,
    chunks: int = 600,
    bases: int = 6,
    control_loss: float = 0.10,
    control_rate: Optional[float] = None,
    restart_at: Optional[float] = None,
    packet_rate: float = 1e5,
    **kwargs: Any,
) -> TopologySpec:
    """The chaos-smoke shape: fan-in + lossy control channel + decoder restart.

    An in-network control plane loses ``control_loss`` of its frames, and
    the decoder crashes mid-trace (halfway through the nominal send window
    by default), wiping its identifier table.  The run must still finish
    with zero corruption: lost installs surface as ``control.dropped`` and
    ``decoder.unknown_identifier`` misses, and the post-restart resync
    restores every surviving binding.  CI runs this preset with
    ``--workers 2`` and asserts nonzero recovery counters.
    """
    if restart_at is None:
        # Halfway through the nominal send window of one flow.  The default
        # packet rate keeps that window well past the control plane's
        # learning latency (digest + table writes ≈ 1.8 ms), so the wiped
        # table is non-empty and the resync actually has work to do.
        restart_at = chunks / (2.0 * packet_rate)
    spec = fan_in_topology(
        name=name,
        senders=senders,
        chunks=chunks,
        bases=bases,
        packet_rate=packet_rate,
        control="in-network",
        control_rate=control_rate,
        **kwargs,
    )
    spec.faults = FaultPlan(
        control_loss=control_loss,
        restarts=(NodeRestart(node="decoder", time=restart_at),),
    )
    validate_spec_faults(spec)
    return spec


#: Named topology shapes ``repro topology --preset`` and the experiment
#: matrix can reach without writing a spec file.
TOPOLOGY_PRESETS: Dict[str, Callable[..., TopologySpec]] = {
    "linear": linear_topology,
    "fan-in": fan_in_topology,
    "fan-in-stress": fan_in_stress_topology,
    "rack-fan-in": rack_fan_in_topology,
    "fault-storm": fault_storm_topology,
    "paper-testbed": paper_testbed_topology,
}


def preset_topology(name: str, **kwargs: Any) -> TopologySpec:
    """Build a preset topology by name; unknown names list the valid ones."""
    builder = TOPOLOGY_PRESETS.get(name)
    if builder is None:
        valid = ", ".join(sorted(TOPOLOGY_PRESETS))
        raise TopologyError(
            f"unknown topology preset {name!r}; valid presets: {valid}"
        )
    return builder(**kwargs)
