"""Concrete topology nodes: hosts, ZipLine switches, plain forwarders.

Four node kinds cover every topology the reproduction builds:

* :class:`HostNode` — a traffic endpoint: flows inject frames at it and
  sinks collect (and optionally store) delivered frames;
* :class:`ZipLineEncoderNode` / :class:`ZipLineDecoderNode` — thin graph
  adapters around the existing
  :class:`~repro.zipline.encoder_switch.ZipLineEncoderSwitch` and
  :class:`~repro.zipline.decoder_switch.ZipLineDecoderSwitch` models (all
  counters, digests and table semantics are the switch's own);
* :class:`ForwardNode` — a plain store-and-forward hop that moves frames
  between ports without touching them, for paths that traverse ordinary
  switches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import TopologyError
from repro.topology.graph import LinkSink, Node

__all__ = [
    "HostNode",
    "ZipLineEncoderNode",
    "ZipLineDecoderNode",
    "ForwardNode",
]


class HostNode(Node):
    """A traffic endpoint: the place flows start and end.

    As a *sink*, the host counts — and when ``store`` is true, retains —
    every delivered frame, and forwards each delivery to an optional
    ``on_deliver`` hook (the engine uses it for per-flow attribution).  As
    a *source*, :meth:`inject` transmits a frame into whatever the graph
    attached to the host's egress port.
    """

    def __init__(self, name: str = "host", store: bool = True):
        super().__init__(name)
        self.store = store
        self.delivered = 0
        self.arrivals: List[Tuple[float, bytes]] = []
        self._egress: Dict[int, LinkSink] = {}
        self.on_deliver: Optional[Callable[[bytes, float], None]] = None

    # -- sink side -----------------------------------------------------------

    def receive(self, frame_bytes: bytes, port: int, time: float) -> None:
        self.deliver(frame_bytes, time)

    def deliver(self, frame_bytes: bytes, time: float) -> None:
        """Port-sink entry point (same shape as a switch port sink)."""
        self.delivered += 1
        if self.store:
            self.arrivals.append((time, frame_bytes))
        if self.on_deliver is not None:
            self.on_deliver(frame_bytes, time)

    # -- source side -----------------------------------------------------------

    def attach(self, port: int, sink: LinkSink) -> None:
        if port in self._egress:
            # A silent overwrite would blackhole the first edge's path.
            raise TopologyError(
                f"host {self.name!r} egress port {port} is already attached"
            )
        self._egress[port] = sink

    def inject(self, frame_bytes: bytes, time: float, port: int = 0) -> None:
        """Transmit one frame into the network via egress ``port``."""
        sink = self._egress.get(port)
        if sink is None:
            raise TopologyError(
                f"host {self.name!r} has no egress attached on port {port}; "
                "add an edge from it before injecting"
            )
        sink(frame_bytes, time)


def _guard_reattach(node: Node, attached: set, port: int) -> None:
    """Refuse to silently replace an already-wired egress port.

    A second edge from the same port would otherwise blackhole the first
    edge's path without any error or counter.
    """
    if port in attached:
        raise TopologyError(
            f"node {node.name!r} egress port {port} is already attached"
        )
    attached.add(port)


class _ZipLineSwitchNode(Node):
    """Shared graph-adapter logic for the two ZipLine switch nodes.

    With ``batch_drain`` enabled (and a simulator-backed switch), frames
    arriving at the same simulated timestamp are queued and handed to the
    switch's :meth:`receive_batch` from a single drain event scheduled at
    the current time, so co-resident packets share one batched CRC /
    parity pass.  Drain telemetry lives in plain attributes
    (``drained_batches`` / ``drained_frames``) rather than
    :meth:`counters` so enabling it never changes a collected report.
    """

    def __init__(self, name: str, switch=None, batch_drain: bool = False, **switch_kwargs):
        super().__init__(name)
        if switch is None:
            switch = self._make_switch(name, **switch_kwargs)
        self.switch = switch
        self._attached_ports: set = set()
        simulator = getattr(switch, "simulator", None)
        self.batch_drain = bool(batch_drain) and simulator is not None
        self.drained_batches = 0
        self.drained_frames = 0
        self._pending: List[Tuple[bytes, int]] = []
        self._drain_scheduled = False

    def _make_switch(self, name: str, **switch_kwargs):
        raise NotImplementedError

    def receive(self, frame_bytes: bytes, port: int, time: float) -> None:
        if not self.batch_drain:
            self.switch.receive(frame_bytes, port)
            return
        self._pending.append((frame_bytes, port))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            # Priority 1 runs the drain after every same-time priority-0
            # delivery, so all frames co-resident at this timestamp land in
            # one batch instead of one drain per frame.
            self.switch.simulator.schedule_now(
                self._drain, priority=1, description=f"{self.name}:drain"
            )

    def _drain(self) -> None:
        self._drain_scheduled = False
        pending, self._pending = self._pending, []
        start = 0
        for index in range(1, len(pending) + 1):
            if index == len(pending) or pending[index][1] != pending[start][1]:
                frames = [frame for frame, _port in pending[start:index]]
                self.switch.receive_batch(frames, pending[start][1])
                self.drained_batches += 1
                self.drained_frames += len(frames)
                start = index

    def attach(self, port: int, sink: LinkSink) -> None:
        _guard_reattach(self, self._attached_ports, port)
        self.switch.switch.attach_port(port, sink)


class ZipLineEncoderNode(_ZipLineSwitchNode):
    """Graph adapter around a :class:`ZipLineEncoderSwitch`.

    Pass a prebuilt ``switch`` (the replay harness does, to keep its public
    ``harness.encoder`` attribute the switch itself) or the keyword
    arguments to build one.
    """

    def _make_switch(self, name: str, **switch_kwargs):
        from repro.zipline.encoder_switch import ZipLineEncoderSwitch

        return ZipLineEncoderSwitch(name=name, **switch_kwargs)


class ZipLineDecoderNode(_ZipLineSwitchNode):
    """Graph adapter around a :class:`ZipLineDecoderSwitch`."""

    def _make_switch(self, name: str, **switch_kwargs):
        from repro.zipline.decoder_switch import ZipLineDecoderSwitch

        return ZipLineDecoderSwitch(name=name, **switch_kwargs)


class ForwardNode(Node):
    """A plain hop: forward frames between ports without modifying them.

    ``forwarding`` maps ingress port to egress port; frames arriving on an
    unmapped port go to ``default_egress_port``.  A frame whose egress port
    has no attached sink is counted as ``no_route`` and dropped — a wiring
    bug surfaces in the counters instead of an exception mid-simulation.
    """

    def __init__(
        self,
        name: str = "forward",
        forwarding: Optional[Dict[int, int]] = None,
        default_egress_port: Optional[int] = None,
    ):
        super().__init__(name)
        self.forwarding = dict(forwarding or {})
        self.default_egress_port = default_egress_port
        self.forwarded = 0
        self.forwarded_bytes = 0
        self.no_route = 0
        self._sinks: Dict[int, LinkSink] = {}

    def attach(self, port: int, sink: LinkSink) -> None:
        if port in self._sinks:
            raise TopologyError(
                f"node {self.name!r} egress port {port} is already attached"
            )
        self._sinks[port] = sink

    def receive(self, frame_bytes: bytes, port: int, time: float) -> None:
        egress = self.forwarding.get(port, self.default_egress_port)
        sink = None if egress is None else self._sinks.get(egress)
        if sink is None:
            self.no_route += 1
            return
        self.forwarded += 1
        self.forwarded_bytes += len(frame_bytes)
        sink(frame_bytes, time)

    def counters(self) -> Dict[str, float]:
        return {
            "forwarded": self.forwarded,
            "forwarded_bytes": self.forwarded_bytes,
            "no_route": self.no_route,
        }
