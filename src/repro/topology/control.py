"""In-network control messages: table writes that travel over links.

The original reproduction's control plane mutated switch tables through
direct method calls (after modelling the write latency).  In a real
deployment the controller talks to a *remote* switch: the install command
crosses the network.  :class:`ControlChannel` models exactly that — it
serialises each table command into a control frame (EtherType
:data:`ETHERTYPE_ZIPLINE_CONTROL`), sends it down an
:class:`~repro.replay.link.EmulatedLink` (so serialisation, propagation,
queueing and even loss apply), and applies the command to the target
switch when the frame arrives.

:class:`~repro.controlplane.manager.ZipLineControlPlane` accepts a channel's
:meth:`ControlChannel.transport` as its ``decoder_transport`` /
``encoder_transport``; with no transport configured it keeps the original
direct-call behaviour, byte for byte.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Mapping

from repro import obs as _obs
from repro.exceptions import TopologyError
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # runtime import stays lazy: repro.replay imports us back
    from repro.replay.link import EmulatedLink

__all__ = [
    "ETHERTYPE_ZIPLINE_CONTROL",
    "apply_switch_command",
    "ControlChannel",
]

#: EtherType of in-network control frames (0x88B4..0x88B6 are taken by the
#: chunk / type-2 / type-3 data-plane formats).
ETHERTYPE_ZIPLINE_CONTROL = 0x88B7

_CONTROL_ETHERTYPE_BYTES = ETHERTYPE_ZIPLINE_CONTROL.to_bytes(2, "big")
#: Locally-administered MACs identifying the controller and the managed switch.
_CONTROLLER_MAC = bytes.fromhex("0200000000f1")
_SWITCH_MAC = bytes.fromhex("0200000000f2")


def _control_trace_args(command: Mapping[str, Any]) -> Dict[str, Any]:
    """The op plus whichever key (identifier/basis) the command carries."""
    args: Dict[str, Any] = {"op": command.get("op")}
    if "identifier" in command:
        args["identifier"] = command["identifier"]
    if "basis" in command:
        args["basis"] = command["basis"]
    return args


def apply_switch_command(switch: Any, command: Mapping[str, Any]) -> None:
    """Apply one deserialised table command to a switch.

    The command vocabulary mirrors the narrow duck-typed interface the
    control plane already used for direct calls.
    """
    operation = command.get("op")
    if operation == "install_identifier":
        switch.install_identifier_mapping(command["identifier"], command["basis"])
    elif operation == "remove_identifier":
        switch.remove_identifier_mapping(command["identifier"])
    elif operation == "install_basis":
        switch.install_basis_mapping(
            command["basis"], command["identifier"], command.get("ttl")
        )
    elif operation == "remove_basis":
        switch.remove_basis_mapping(command["basis"])
    else:
        raise TopologyError(f"unknown control command {operation!r}")


class ControlChannel:
    """Deliver table commands to a switch over an emulated link.

    Parameters
    ----------
    simulator:
        The shared simulator (send times are read from its clock).
    link:
        The emulated hop control frames traverse.  The channel owns the
        link's sink; the link's bandwidth/propagation/queue parameters
        model the controller-to-switch path.
    switch:
        The managed switch commands are applied to on arrival.
    """

    def __init__(self, simulator: Simulator, link: "EmulatedLink", switch: Any):
        self.simulator = simulator
        self.link = link
        self.switch = switch
        self.messages_sent = 0
        self.messages_applied = 0
        self.message_bytes = 0
        link.attach(self._on_frame)

    def transport(self, command: Mapping[str, Any]) -> None:
        """Serialise and transmit one command (the control plane calls this)."""
        payload = json.dumps(command, sort_keys=True).encode("utf-8")
        frame = _SWITCH_MAC + _CONTROLLER_MAC + _CONTROL_ETHERTYPE_BYTES + payload
        self.messages_sent += 1
        self.message_bytes += len(frame)
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.instant(
                "control.send",
                self.link.name,
                args=_control_trace_args(command),
            )
        self.link.send(frame, self.simulator.now)

    def _on_frame(self, frame_bytes: bytes, time: float) -> None:
        if frame_bytes[12:14] != _CONTROL_ETHERTYPE_BYTES:
            raise TopologyError(
                f"control channel {self.link.name!r} received a non-control "
                f"frame (ethertype {frame_bytes[12:14].hex()})"
            )
        command = json.loads(frame_bytes[14:].decode("utf-8"))
        self.messages_applied += 1
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.instant(
                "control.apply",
                self.link.name,
                args=_control_trace_args(command),
                ts=time,
            )
        apply_switch_command(self.switch, command)

    def counters(self) -> Dict[str, float]:
        """Channel counters for the metrics registry."""
        return {
            "messages_sent": self.messages_sent,
            "messages_applied": self.messages_applied,
            "message_bytes": self.message_bytes,
        }
