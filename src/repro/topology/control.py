"""In-network control messages: table writes that travel over links.

The original reproduction's control plane mutated switch tables through
direct method calls (after modelling the write latency).  In a real
deployment the controller talks to a *remote* switch: the install command
crosses the network.  :class:`ControlChannel` models exactly that — it
serialises each table command into a control frame (EtherType
:data:`ETHERTYPE_ZIPLINE_CONTROL`), sends it down an
:class:`~repro.replay.link.EmulatedLink` (so serialisation, propagation,
queueing and even loss apply), and applies the command to the target
switch when the frame arrives.

:class:`~repro.controlplane.manager.ZipLineControlPlane` accepts a channel's
:meth:`ControlChannel.transport` as its ``decoder_transport`` /
``encoder_transport``; with no transport configured it keeps the original
direct-call behaviour, byte for byte.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Mapping, Optional, Tuple

from repro import obs as _obs
from repro.exceptions import TopologyError
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # runtime import stays lazy: repro.replay imports us back
    from repro.replay.link import EmulatedLink

__all__ = [
    "ETHERTYPE_ZIPLINE_CONTROL",
    "apply_switch_command",
    "ControlChannel",
]

#: EtherType of in-network control frames (0x88B4..0x88B6 are taken by the
#: chunk / type-2 / type-3 data-plane formats).
ETHERTYPE_ZIPLINE_CONTROL = 0x88B7

_CONTROL_ETHERTYPE_BYTES = ETHERTYPE_ZIPLINE_CONTROL.to_bytes(2, "big")

#: A send costs one token; the bucket is compared against ``1 - ε`` so the
#: refill after a drain wait of exactly ``(1 - tokens) / rate`` — which
#: lands at 0.999… in floating point — still counts as a full token.
#: Without it the drain reschedules itself with ~1e-14 waits forever.
_TOKEN_EPSILON = 1e-9
#: Locally-administered MACs identifying the controller and the managed switch.
_CONTROLLER_MAC = bytes.fromhex("0200000000f1")
_SWITCH_MAC = bytes.fromhex("0200000000f2")


def _control_trace_args(command: Mapping[str, Any]) -> Dict[str, Any]:
    """The op plus whichever key (identifier/basis) the command carries."""
    args: Dict[str, Any] = {"op": command.get("op")}
    if "identifier" in command:
        args["identifier"] = command["identifier"]
    if "basis" in command:
        args["basis"] = command["basis"]
    return args


def apply_switch_command(switch: Any, command: Mapping[str, Any]) -> None:
    """Apply one deserialised table command to a switch.

    The command vocabulary mirrors the narrow duck-typed interface the
    control plane already used for direct calls.
    """
    operation = command.get("op")
    if operation == "install_identifier":
        switch.install_identifier_mapping(command["identifier"], command["basis"])
    elif operation == "remove_identifier":
        switch.remove_identifier_mapping(command["identifier"])
    elif operation == "install_basis":
        switch.install_basis_mapping(
            command["basis"], command["identifier"], command.get("ttl")
        )
    elif operation == "remove_basis":
        switch.remove_basis_mapping(command["basis"])
    else:
        raise TopologyError(f"unknown control command {operation!r}")


class ControlChannel:
    """Deliver table commands to a switch over an emulated link.

    Parameters
    ----------
    simulator:
        The shared simulator (send times are read from its clock).
    link:
        The emulated hop control frames traverse.  The channel owns the
        link's sink; the link's bandwidth/propagation/queue parameters
        model the controller-to-switch path.
    switch:
        The managed switch commands are applied to on arrival.
    rate:
        Token-bucket pacing of the command stream in commands per second
        (the BfRt write budget of a real controller).  ``None`` (the
        default) sends every command immediately, the original behaviour.
    burst:
        Token-bucket depth: how many back-to-back commands may be sent
        before pacing kicks in.  Only meaningful with ``rate`` set.
    queue_capacity:
        Bound on the install queue that holds commands deferred by the
        rate limiter.  When the queue is full further commands are dropped
        (and counted); ``None`` defers without bound.

    Reordered and duplicated commands are made idempotent by an *epoch*
    stamped on every identifier-carrying command at send time: the receive
    side applies a command only when its epoch is newer than the last one
    applied for that identifier, so a stale install can never displace a
    newer binding (and thereby re-trigger an eviction on the switch).
    """

    def __init__(
        self,
        simulator: Simulator,
        link: "EmulatedLink",
        switch: Any,
        rate: Optional[float] = None,
        burst: int = 8,
        queue_capacity: Optional[int] = None,
    ):
        if rate is not None and rate <= 0:
            raise TopologyError(f"control rate must be positive, got {rate}")
        if burst <= 0:
            raise TopologyError(f"control burst must be positive, got {burst}")
        if queue_capacity is not None and queue_capacity <= 0:
            raise TopologyError(
                f"control queue capacity must be positive or None, got {queue_capacity}"
            )
        self.simulator = simulator
        self.link = link
        self.switch = switch
        self.rate = rate
        self.burst = burst
        self.queue_capacity = queue_capacity
        self.messages_sent = 0
        self.messages_applied = 0
        self.message_bytes = 0
        #: Commands parked behind the rate limiter / dropped at the full queue.
        self.deferred = 0
        self.dropped_backpressure = 0
        self.max_queue_depth = 0
        #: Stale or duplicate commands ignored by the epoch guard.
        self.stale_ignored = 0
        #: Resync (recovery) commands applied after a switch restart.
        self.resync_applied = 0
        self.last_resync_applied_at = 0.0
        self._queue: Deque[
            Tuple[
                Dict[str, Any],
                Optional[Callable[[], None]],
                Optional[Callable[[], None]],
            ]
        ] = deque()
        #: epoch -> acknowledgement callback of an in-flight command.
        self._pending_acks: Dict[int, Callable[[], None]] = {}
        self._tokens = float(burst)
        self._last_refill = simulator.now
        self._drain_scheduled = False
        self._send_epoch = 0
        self._applied_epochs: Dict[Any, int] = {}
        self._drain_label = f"{link.name}:control-drain"
        link.attach(self._on_frame)

    @property
    def queue_depth(self) -> int:
        """Commands currently parked behind the rate limiter."""
        return len(self._queue)

    def transport(
        self,
        command: Mapping[str, Any],
        on_applied: Optional[Callable[[], None]] = None,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        """Accept one command from the control plane (pacing applies here).

        The channel models an *acknowledged* table write (a real BfRt
        write is a synchronous RPC): ``on_applied`` fires when the command
        has been applied on the managed switch — the control plane chains
        the encoder-side install off it, so the decoder-first install
        discipline holds even when commands are delayed by backpressure or
        reordered on the wire.  ``on_drop`` fires instead when the write
        visibly fails: rejected at the full install queue, or lost on the
        wire (the ack never comes back).
        """
        stamped = dict(command)
        self._send_epoch += 1
        stamped["epoch"] = self._send_epoch
        if self.rate is None:
            self._dispatch(stamped, on_applied, on_drop)
            return
        self._refill()
        if not self._queue and self._tokens >= 1.0 - _TOKEN_EPSILON:
            self._tokens = max(0.0, self._tokens - 1.0)
            self._dispatch(stamped, on_applied, on_drop)
            return
        if (
            self.queue_capacity is not None
            and len(self._queue) >= self.queue_capacity
        ):
            self.dropped_backpressure += 1
            tracer = _obs.TRACER
            if tracer.enabled:
                tracer.instant(
                    "control.drop",
                    self.link.name,
                    args=dict(
                        _control_trace_args(stamped),
                        reason="backpressure",
                        depth=len(self._queue),
                    ),
                )
            if on_drop is not None:
                on_drop()
            return
        self._queue.append((stamped, on_applied, on_drop))
        self.deferred += 1
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._schedule_drain()

    # -- token bucket ----------------------------------------------------------

    def _refill(self) -> None:
        now = self.simulator.now
        if now > self._last_refill:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last_refill) * self.rate,
            )
        self._last_refill = now

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        wait = max(0.0, (1.0 - self._tokens) / self.rate)
        self.simulator.schedule_in(wait, self._drain, description=self._drain_label)

    def _drain(self) -> None:
        self._drain_scheduled = False
        self._refill()
        while self._queue and self._tokens >= 1.0 - _TOKEN_EPSILON:
            self._tokens = max(0.0, self._tokens - 1.0)
            command, on_applied, on_drop = self._queue.popleft()
            self._dispatch(command, on_applied, on_drop)
        if self._queue:
            self._schedule_drain()

    def _dispatch(
        self,
        command: Mapping[str, Any],
        on_applied: Optional[Callable[[], None]],
        on_drop: Optional[Callable[[], None]],
    ) -> None:
        """Put one command on the wire and track its acknowledgement.

        Wire loss is detected synchronously (the write RPC fails) and
        reported through ``on_drop``; a delivered command's ``on_applied``
        fires from :meth:`_on_frame` when it reaches the switch, keyed by
        its epoch so reordering cannot confuse acknowledgements.
        """
        if on_applied is not None:
            self._pending_acks[command["epoch"]] = on_applied
        stats = self.link.stats
        dropped_before = stats.dropped_loss + stats.dropped_queue
        self._send_now(command)
        if stats.dropped_loss + stats.dropped_queue > dropped_before:
            self._pending_acks.pop(command["epoch"], None)
            if on_drop is not None:
                on_drop()

    # -- wire format -----------------------------------------------------------

    def _send_now(self, command: Mapping[str, Any]) -> None:
        """Serialise and transmit one command at the current simulated time."""
        payload = json.dumps(command, sort_keys=True).encode("utf-8")
        frame = _SWITCH_MAC + _CONTROLLER_MAC + _CONTROL_ETHERTYPE_BYTES + payload
        self.messages_sent += 1
        self.message_bytes += len(frame)
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.instant(
                "control.send",
                self.link.name,
                args=_control_trace_args(command),
            )
        self.link.send(frame, self.simulator.now)

    def _on_frame(self, frame_bytes: bytes, time: float) -> None:
        if frame_bytes[12:14] != _CONTROL_ETHERTYPE_BYTES:
            raise TopologyError(
                f"control channel {self.link.name!r} received a non-control "
                f"frame (ethertype {frame_bytes[12:14].hex()})"
            )
        command = json.loads(frame_bytes[14:].decode("utf-8"))
        tracer = _obs.TRACER
        epoch = command.get("epoch")
        identifier = command.get("identifier")
        # The write reached the switch: acknowledge it either way.  A
        # stale-ignored command still acks — its issuer re-validates
        # against the pool before acting on the acknowledgement.
        acknowledge = (
            self._pending_acks.pop(epoch, None) if epoch is not None else None
        )
        if epoch is not None and identifier is not None:
            last_applied = self._applied_epochs.get(identifier)
            if last_applied is not None and epoch <= last_applied:
                self.stale_ignored += 1
                if tracer.enabled:
                    tracer.instant(
                        "control.ignore",
                        self.link.name,
                        args=dict(
                            _control_trace_args(command),
                            reason="stale-epoch",
                            epoch=epoch,
                            applied=last_applied,
                        ),
                        ts=time,
                    )
                if acknowledge is not None:
                    acknowledge()
                return
            self._applied_epochs[identifier] = epoch
        self.messages_applied += 1
        if command.get("resync"):
            self.resync_applied += 1
            self.last_resync_applied_at = time
        if tracer.enabled:
            tracer.instant(
                "control.apply",
                self.link.name,
                args=_control_trace_args(command),
                ts=time,
            )
        apply_switch_command(self.switch, command)
        if acknowledge is not None:
            acknowledge()

    def counters(self) -> Dict[str, float]:
        """Channel counters for the metrics registry.

        ``dropped`` is the total number of commands lost anywhere on the
        control path — backpressure drops at the full install queue plus
        frames the link lost or tail-dropped; ``queue_depth`` is the
        high-water mark of the install queue.
        """
        return {
            "messages_sent": self.messages_sent,
            "messages_applied": self.messages_applied,
            "message_bytes": self.message_bytes,
            "deferred": self.deferred,
            "queue_depth": self.max_queue_depth,
            "dropped_backpressure": self.dropped_backpressure,
            "dropped": self.dropped_backpressure + self.link.stats.dropped,
            "stale_ignored": self.stale_ignored,
            "resync_applied": self.resync_applied,
        }
