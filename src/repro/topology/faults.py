"""Declarative, seeded fault injection for topology runs.

A :class:`FaultPlan` describes everything that goes wrong during a run:

* **control-channel impairments** — loss/reorder probabilities applied to
  every in-network control link (through the same seeded
  :class:`~repro.perfmodel.linkmodel.ImpairmentModel` the data links use,
  with a per-encoder seed derived from the spec identity, so the fault
  stream is independent of sharding);
* **node restarts** — at a scheduled simulated time a decoder loses its
  identifier table; the owning control plane then resynchronises it by
  replaying every known binding over the (lossy, rate-limited) control
  channel;
* **eviction storms** — at a scheduled time the control plane of an
  encoder forcibly evicts its N least-recently-used bindings, churning
  both switches' tables.

The plan lives inside :class:`~repro.topology.spec.TopologySpec` (the
``faults`` key of the JSON form), so faulty scenarios are declarative and
travel with the spec through sharding: :func:`FaultPlan.events_for`
restricts the scheduled events to the nodes of one shard while the global
impairment probabilities are kept, which is what makes a fault run
byte-identical at any ``--workers N``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.exceptions import TopologyError

__all__ = [
    "NodeRestart",
    "EvictionStorm",
    "FaultPlan",
    "load_fault_plan",
    "validate_spec_faults",
]


def _require_probability(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TopologyError(f"{where} must be a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise TopologyError(f"{where} must be within [0, 1], got {value}")
    return float(value)


def _require_time(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TopologyError(f"{where} must be a number, got {value!r}")
    if value < 0:
        raise TopologyError(f"{where} cannot be negative, got {value}")
    return float(value)


def _require_node(value: Any, where: str) -> str:
    if not isinstance(value, str) or not value:
        raise TopologyError(f"{where} must be a non-empty node name, got {value!r}")
    return value


def _reject_unknown_keys(
    mapping: Mapping[str, Any], known: Tuple[str, ...], where: str
) -> None:
    unknown = sorted(set(mapping) - set(known))
    if unknown:
        raise TopologyError(
            f"{where} has unknown keys {unknown}; known keys: {sorted(known)}"
        )


@dataclass(frozen=True)
class NodeRestart:
    """Restart of one decoder node at a simulated time.

    The restart wipes the node's identifier table (its crash-volatile
    state); counters and wiring survive, modelling a fast process restart
    on the switch.  The paired control plane immediately begins a resync.
    """

    node: str
    time: float

    def as_dict(self) -> Dict[str, Any]:
        return {"node": self.node, "time": self.time}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str) -> "NodeRestart":
        _reject_unknown_keys(data, ("node", "time"), where)
        if "node" not in data or "time" not in data:
            raise TopologyError(f"{where} requires 'node' and 'time' keys")
        return cls(
            node=_require_node(data["node"], f"{where}.node"),
            time=_require_time(data["time"], f"{where}.time"),
        )


@dataclass(frozen=True)
class EvictionStorm:
    """Forced eviction of ``count`` LRU bindings on one encoder's control plane."""

    node: str
    time: float
    count: int

    def as_dict(self) -> Dict[str, Any]:
        return {"node": self.node, "time": self.time, "count": self.count}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str) -> "EvictionStorm":
        _reject_unknown_keys(data, ("node", "time", "count"), where)
        for key in ("node", "time", "count"):
            if key not in data:
                raise TopologyError(f"{where} requires 'node', 'time' and 'count' keys")
        count = data["count"]
        if isinstance(count, bool) or not isinstance(count, int) or count <= 0:
            raise TopologyError(f"{where}.count must be a positive integer, got {count!r}")
        return cls(
            node=_require_node(data["node"], f"{where}.node"),
            time=_require_time(data["time"], f"{where}.time"),
            count=count,
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that is scheduled to go wrong during one topology run."""

    control_loss: float = 0.0
    control_reorder: float = 0.0
    restarts: Tuple[NodeRestart, ...] = ()
    storms: Tuple[EvictionStorm, ...] = ()

    def __post_init__(self) -> None:
        _require_probability(self.control_loss, "faults.control_loss")
        _require_probability(self.control_reorder, "faults.control_reorder")
        object.__setattr__(self, "restarts", tuple(self.restarts))
        object.__setattr__(self, "storms", tuple(self.storms))

    @property
    def active(self) -> bool:
        """True when the plan injects anything at all."""
        return bool(
            self.control_loss or self.control_reorder or self.restarts or self.storms
        )

    def events_for(self, node_names: Iterable[str]) -> "FaultPlan":
        """The plan restricted to events touching ``node_names``.

        The global control-link impairment probabilities are kept — each
        control link draws from its own derived-seed stream, so keeping
        them in every shard reproduces exactly the monolithic behaviour.
        """
        names = set(node_names)
        return replace(
            self,
            restarts=tuple(r for r in self.restarts if r.node in names),
            storms=tuple(s for s in self.storms if s.node in names),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON form; only non-default fields are emitted."""
        data: Dict[str, Any] = {}
        if self.control_loss:
            data["control_loss"] = self.control_loss
        if self.control_reorder:
            data["control_reorder"] = self.control_reorder
        if self.restarts:
            data["restarts"] = [restart.as_dict() for restart in self.restarts]
        if self.storms:
            data["storms"] = [storm.as_dict() for storm in self.storms]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str = "faults") -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise TopologyError(f"{where} must be an object, got {data!r}")
        _reject_unknown_keys(
            data, ("control_loss", "control_reorder", "restarts", "storms"), where
        )
        restarts = tuple(
            NodeRestart.from_dict(entry, f"{where}.restarts[{index}]")
            for index, entry in enumerate(data.get("restarts", ()))
        )
        storms = tuple(
            EvictionStorm.from_dict(entry, f"{where}.storms[{index}]")
            for index, entry in enumerate(data.get("storms", ()))
        )
        return cls(
            control_loss=_require_probability(
                data.get("control_loss", 0.0), f"{where}.control_loss"
            ),
            control_reorder=_require_probability(
                data.get("control_reorder", 0.0), f"{where}.control_reorder"
            ),
            restarts=restarts,
            storms=storms,
        )


def load_fault_plan(argument: str) -> FaultPlan:
    """Parse the ``--faults`` CLI argument: inline JSON or a file path."""
    import json
    from pathlib import Path

    text = argument.strip()
    if not text.startswith("{"):
        path = Path(argument)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise TopologyError(f"cannot read fault plan {argument!r}: {error}") from None
    try:
        data = json.loads(text)
    except ValueError as error:
        raise TopologyError(f"fault plan is not valid JSON: {error}") from None
    return FaultPlan.from_dict(data)


def validate_spec_faults(spec: Any) -> None:
    """Cross-check a spec's fault plan against its nodes and control mode.

    Called by :class:`~repro.topology.spec.TopologySpec` at construction
    and by the CLI after ``--faults`` / ``--control-rate`` overrides, so a
    typo'd node name fails loudly instead of being silently filtered away
    by sharding.
    """
    nodes = {node.name: node for node in spec.nodes}
    faults: Optional[FaultPlan] = spec.faults
    if faults is not None:
        if (faults.control_loss or faults.control_reorder) and spec.control != "in-network":
            raise TopologyError(
                "faults.control_loss/control_reorder require control='in-network' "
                "(a direct control plane has no channel to impair)"
            )
        for restart in faults.restarts:
            node = nodes.get(restart.node)
            if node is None:
                raise TopologyError(
                    f"faults.restarts references unknown node {restart.node!r}"
                )
            if node.kind != "decoder":
                raise TopologyError(
                    f"faults.restarts node {restart.node!r} is a {node.kind!r} node; "
                    "restarts are modelled for decoder nodes"
                )
        for storm in faults.storms:
            node = nodes.get(storm.node)
            if node is None:
                raise TopologyError(
                    f"faults.storms references unknown node {storm.node!r}"
                )
            if node.kind != "encoder":
                raise TopologyError(
                    f"faults.storms node {storm.node!r} is a {node.kind!r} node; "
                    "storms are triggered on encoder nodes"
                )
    if spec.control_rate is not None and spec.control != "in-network":
        raise TopologyError(
            "control_rate requires control='in-network' (pacing applies to the "
            "control channel, which a direct control plane does not have)"
        )
    if spec.control_queue is not None and spec.control_rate is None:
        raise TopologyError("control_queue requires control_rate to be set")
