"""Execute a :class:`~repro.topology.spec.TopologySpec`: N flows, one graph.

:class:`TopologyEngine` turns a declarative spec into a running system on a
single shared :class:`~repro.sim.simulator.Simulator`:

* every node spec becomes a live node (hosts, ZipLine switches wrapped in
  graph adapters, plain forwarders);
* every link spec becomes a direct attachment or a chain of
  :class:`~repro.replay.link.EmulatedLink` hops (impairments seeded per
  link through :func:`~repro.topology.spec.derive_seed`);
* every flow spec becomes a concurrently-scheduled traffic stream with its
  own :class:`~repro.replay.sources.TraceSource`, pacing, source MAC and
  derived seed, injected at its source host exactly the way the linear
  harness injects (one pending frame per flow, bounded memory);
* each encoder's control plane either writes decoder mappings directly
  (``control: direct``, the harness behaviour) or ships them as
  in-network control messages over a dedicated emulated link with real
  latency (``control: in-network``).

Per-flow end-to-end integrity uses the same FIFO content matching as the
harness; arrivals are attributed to flows by their source MAC, which the
ZipLine encode/decode path preserves.  The resulting
:class:`TopologyReport` carries per-flow, per-link and per-node metrics
and is a deterministic function of (spec, seed): running the same spec
twice yields byte-identical :meth:`TopologyReport.json_text` output.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.controlplane.manager import ZipLineControlPlane
from repro.core.transform import GDTransform
from repro.exceptions import TopologyError
from repro.net.mac import MacAddress
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay.link import EmulatedLink
from repro.replay.metrics import (
    Distribution,
    IntegrityResult,
    MetricsRegistry,
    ReplayReport,
    collect_link_metrics,
    collect_switch_metrics,
    collect_wire_metrics,
)
from repro.replay.sources import (
    Pacing,
    PcapTraceSource,
    TraceSource,
    WorkloadTraceSource,
    pacing_from_name,
)
from repro.sim.simulator import Simulator
from repro.tofino.digest import DigestEngine
from repro.topology.control import ControlChannel
from repro.topology.graph import TopologyGraph, build_link_chain
from repro.topology.nodes import (
    ForwardNode,
    HostNode,
    ZipLineDecoderNode,
    ZipLineEncoderNode,
)
from repro.topology.spec import FlowSpec, LinkSpec, TopologySpec, derive_seed
from repro.zipline.headers import RAW_CHUNK_ETHERTYPE_BYTES, raw_chunk_payload
from repro.zipline.stats import LinkTap
from repro.net.packets import PacketKind

__all__ = ["FlowResult", "TopologyReport", "TopologyEngine"]


def _flow_source_mac(index: int) -> MacAddress:
    """Unique locally-administered source MAC for flow ``index``.

    Flows live under ``02:00:00:01:xx:xx``, hosts under ``02:00:00:00:xx:xx``
    — disjoint ranges, so per-flow arrival attribution by source MAC can
    never collide with a host address.
    """
    return MacAddress(0x02_00_00_01_00_00 + index + 1)


def _host_mac(index: int) -> MacAddress:
    """Unique locally-administered MAC for host ``index``."""
    return MacAddress(0x02_00_00_00_00_00 + index + 1)


class _FlowState:
    """Runtime bookkeeping of one flow (mirrors the harness's accounting)."""

    def __init__(
        self,
        spec: FlowSpec,
        seed: int,
        source: TraceSource,
        pacing: Pacing,
        source_mac: MacAddress,
        sink_mac: MacAddress,
        verify_integrity: bool,
    ):
        self.spec = spec
        self.seed = seed
        self.source = source
        self.pacing = pacing
        self.source_mac_bytes = bytes(source_mac)
        self.verify_integrity = verify_integrity
        # Trace-driven flows carry whatever addresses the capture recorded;
        # rewrite the Ethernet addresses to the flow's own identity so
        # arrival attribution by source MAC works for every source kind.
        # (Workload sources already frame with these addresses.)
        self._mac_rewrite: Optional[bytes] = (
            bytes(sink_mac) + self.source_mac_bytes
            if spec.trace is not None
            else None
        )
        self.frames_sent = 0
        self.chunks_sent = 0
        self.chunk_bytes_sent = 0
        self.delivered = 0
        self.sent_chunks: List[bytes] = []
        self.sent_times: List[float] = []
        self.pending_by_content: Dict[bytes, Deque[int]] = {}
        self.arrivals: List[Tuple[float, bytes]] = []

    def frame_for_injection(self, frame_bytes: bytes) -> bytes:
        """The frame as this flow puts it on the wire (flow-owned MACs)."""
        if self._mac_rewrite is None:
            return frame_bytes
        return self._mac_rewrite + frame_bytes[12:]

    def record_injection(self, frame_bytes: bytes, now: float) -> None:
        self.frames_sent += 1
        if frame_bytes[12:14] == RAW_CHUNK_ETHERTYPE_BYTES:
            self.chunks_sent += 1
            self.chunk_bytes_sent += len(frame_bytes) - 14
            if self.verify_integrity:
                payload = frame_bytes[14:]
                index = len(self.sent_chunks)
                self.sent_chunks.append(payload)
                self.sent_times.append(now)
                self.pending_by_content.setdefault(payload, deque()).append(index)

    def record_arrival(self, frame_bytes: bytes, time: float) -> None:
        self.delivered += 1
        if self.verify_integrity:
            self.arrivals.append((time, frame_bytes))

    def check_integrity(
        self, latency: Distribution
    ) -> Optional[IntegrityResult]:
        """FIFO content matching, identical to the harness's algorithm."""
        if not self.verify_integrity or not self.sent_chunks:
            return None
        pending = {
            content: deque(indices)
            for content, indices in self.pending_by_content.items()
        }
        matched = corrupted = out_of_order = received = 0
        highest_index = -1
        for time, frame_bytes in self.arrivals:
            payload = raw_chunk_payload(frame_bytes)
            if payload is None:
                continue
            received += 1
            queue = pending.get(payload)
            if not queue:
                corrupted += 1
                continue
            index = queue.popleft()
            matched += 1
            if index < highest_index:
                out_of_order += 1
            highest_index = max(highest_index, index)
            latency.add(time - self.sent_times[index])
        return IntegrityResult(
            sent=len(self.sent_chunks),
            received=received,
            matched=matched,
            corrupted=corrupted,
            missing=len(self.sent_chunks) - matched,
            out_of_order=out_of_order,
        )


@dataclass
class FlowResult:
    """One flow's outcome: identity, volumes, integrity, latency."""

    name: str
    source: str
    seed: int
    chunks_sent: int
    payload_bytes_sent: int
    frames_sent: int
    delivered: int
    integrity: Optional[IntegrityResult]
    latency: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (one entry of the report's ``flows`` list)."""
        return {
            "name": self.name,
            "source": self.source,
            "seed": self.seed,
            "chunks_sent": self.chunks_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "frames_sent": self.frames_sent,
            "delivered": self.delivered,
            "integrity": None if self.integrity is None else self.integrity.as_dict(),
            "latency": dict(self.latency),
        }


@dataclass
class TopologyReport:
    """Everything one topology run produced.

    The top-level shape mirrors :class:`~repro.replay.metrics.ReplayReport`
    (``compression_ratio``, ``integrity``, ``metrics.counters...``) so the
    experiment matrix's dotted metric paths resolve on either report kind;
    ``flows`` adds the per-flow breakdown and ``metrics`` carries per-link
    and per-flow attribution (``flow.<name>.*`` counters and latency
    distributions).
    """

    topology: str
    scenario: str
    chunks_sent: int
    payload_bytes_sent: int
    wire_payload_bytes: int
    duration: float
    integrity: Optional[IntegrityResult]
    flows: List[FlowResult] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    learning_time: Optional[float] = None

    @property
    def compression_ratio(self) -> Optional[float]:
        """Measured-link payload bytes over injected payload bytes."""
        if self.payload_bytes_sent == 0:
            return None
        return self.wire_payload_bytes / self.payload_bytes_sent

    @property
    def savings_percent(self) -> Optional[float]:
        """Percentage of payload bytes the compression removed (or ``None``)."""
        ratio = self.compression_ratio
        if ratio is None:
            return None
        return 100.0 * (1.0 - ratio)

    def flow(self, name: str) -> FlowResult:
        """Look up one flow's result by name."""
        for result in self.flows:
            if result.name == name:
                return result
        known = ", ".join(result.name for result in self.flows) or "none"
        raise TopologyError(f"unknown flow {name!r}; flows: {known}")

    def latency_summary(self) -> Dict[str, float]:
        """All-flow end-to-end latency percentiles (empty dict when unknown)."""
        dist = self.metrics.distributions().get("endtoend.latency")
        if dist is None or dist.empty:
            return {}
        return dist.summary()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view of the whole report."""
        return {
            "topology": self.topology,
            "scenario": self.scenario,
            "chunks_sent": self.chunks_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "wire_payload_bytes": self.wire_payload_bytes,
            "compression_ratio": self.compression_ratio,
            "savings_percent": self.savings_percent,
            "duration": self.duration,
            "learning_time": self.learning_time,
            "integrity": None if self.integrity is None else self.integrity.as_dict(),
            "latency": self.latency_summary(),
            "flows": [flow.as_dict() for flow in self.flows],
            "metrics": self.metrics.as_dict(),
        }

    def json_text(self) -> str:
        """Canonical JSON — the determinism witness (same spec ⇒ same bytes)."""
        import json

        return json.dumps(self.as_dict(), indent=2, sort_keys=True, default=str)

    def render(self, include_counters: bool = False) -> str:
        """Human-readable report: headline, per-flow table, counters."""
        from repro.analysis.reporting import format_table

        headline: List[List[object]] = [
            ["topology", self.topology],
            ["scenario", self.scenario],
            ["flows", len(self.flows)],
            ["chunks sent", f"{self.chunks_sent:,}"],
            ["payload bytes sent", f"{self.payload_bytes_sent:,}"],
            ["bytes on the measured link", f"{self.wire_payload_bytes:,}"],
            [
                "compression ratio",
                "n/a"
                if self.compression_ratio is None
                else f"{self.compression_ratio:.4f}",
            ],
            [
                "savings",
                "n/a"
                if self.savings_percent is None
                else f"{self.savings_percent:.1f} %",
            ],
            ["duration", f"{self.duration * 1e3:.3f} ms"],
            [
                "learning delay",
                "n/a"
                if self.learning_time is None
                else f"{self.learning_time * 1e3:.3f} ms",
            ],
        ]
        if self.integrity is not None:
            headline.append(
                ["integrity intact", "yes" if self.integrity.intact else "NO"]
            )
            headline.append(["chunks lost", f"{self.integrity.missing:,}"])
            headline.append(["chunks corrupted", f"{self.integrity.corrupted:,}"])
        parts = [
            format_table(
                ["metric", "value"],
                headline,
                title=f"topology {self.topology} ({self.scenario})",
            )
        ]
        if self.flows:
            rows = []
            for flow in self.flows:
                integrity = flow.integrity
                rows.append(
                    [
                        flow.name,
                        f"{flow.chunks_sent:,}",
                        f"{flow.delivered:,}",
                        "n/a" if integrity is None else f"{integrity.missing:,}",
                        "n/a" if integrity is None else f"{integrity.corrupted:,}",
                        "n/a"
                        if not flow.latency
                        else f"{flow.latency.get('p50', 0.0) * 1e6:.2f}",
                    ]
                )
            parts.append(
                format_table(
                    ["flow", "chunks", "delivered", "lost", "corrupted", "p50_us"],
                    rows,
                    title="per-flow breakdown",
                )
            )
        if include_counters:
            counter_rows = self.metrics.counter_rows()
            if counter_rows:
                parts.append(
                    format_table(
                        ["counter", "value"], counter_rows, title="counter breakdown"
                    )
                )
        return "\n\n".join(parts)


class TopologyEngine:
    """Build and run one :class:`~repro.topology.spec.TopologySpec`.

    Parameters
    ----------
    spec:
        The validated topology description.
    verify_integrity:
        When true (default) every flow retains its injected chunks and
        arrivals for the end-to-end check and latency percentiles —
        O(traffic) memory.  False keeps everything bounded and reports
        ``integrity: None``, like the harness's counters-only mode.
    """

    def __init__(self, spec: TopologySpec, verify_integrity: bool = True):
        self.spec = spec
        self.verify_integrity = verify_integrity
        self.simulator = Simulator()
        self.transform = GDTransform(order=spec.order)
        self.graph = TopologyGraph(self.simulator)
        self.measured_tap: Optional[LinkTap] = None
        self.control_planes: Dict[str, ZipLineControlPlane] = {}
        self.control_channels: Dict[str, ControlChannel] = {}
        self._encoder_nodes: Dict[str, ZipLineEncoderNode] = {}
        self._decoder_nodes: Dict[str, ZipLineDecoderNode] = {}
        self._host_nodes: Dict[str, HostNode] = {}
        self._forward_nodes: Dict[str, ForwardNode] = {}
        self._flows: List[_FlowState] = []
        self._flows_by_mac: Dict[bytes, _FlowState] = {}
        self._unattributed = 0
        self._misdelivered = 0
        self._build_nodes()
        self._build_links()
        self.graph.wire()
        self._build_control_planes()
        self._build_flows()
        if spec.scenario == "static":
            self._preload_static_bases()

    # -- construction ---------------------------------------------------------

    def _switch_port_count(self, node_spec) -> Optional[int]:
        """Size a switch for every port the spec references on it.

        The Tofino model defaults to 32 front-panel ports; a wide fan-in
        (or a hand-written spec addressing a high port) gets a switch big
        enough for its highest referenced port instead of an out-of-range
        failure halfway through the build.
        """
        highest = -1
        for link in self.spec.links:
            if link.source[0] == node_spec.name:
                highest = max(highest, link.source[1])
            if link.target[0] == node_spec.name:
                highest = max(highest, link.target[1])
        for ingress, egress in node_spec.forwarding.items():
            highest = max(highest, ingress, egress)
        if node_spec.default_egress_port is not None:
            highest = max(highest, node_spec.default_egress_port)
        return None if highest < 32 else highest + 1

    def _build_nodes(self) -> None:
        host_index = 0
        self._host_macs: Dict[str, MacAddress] = {}
        for node_spec in self.spec.nodes:
            if node_spec.kind == "host":
                # Frames are retained per flow (for the integrity check),
                # never a second time at the host.
                node = HostNode(node_spec.name, store=False)
                self._host_nodes[node_spec.name] = node
                self._host_macs[node_spec.name] = _host_mac(host_index)
                host_index += 1
            elif node_spec.kind == "encoder":
                digest_engine = DigestEngine(self.simulator)
                node = ZipLineEncoderNode(
                    node_spec.name,
                    transform=self.transform,
                    identifier_bits=self.spec.identifier_bits,
                    simulator=self.simulator,
                    forwarding=dict(node_spec.forwarding),
                    default_egress_port=node_spec.default_egress_port,
                    entry_ttl=self.spec.entry_ttl,
                    digest_engine=digest_engine,
                    port_count=self._switch_port_count(node_spec),
                )
                self._encoder_nodes[node_spec.name] = node
            elif node_spec.kind == "decoder":
                node = ZipLineDecoderNode(
                    node_spec.name,
                    transform=self.transform,
                    identifier_bits=self.spec.identifier_bits,
                    simulator=self.simulator,
                    forwarding=dict(node_spec.forwarding),
                    default_egress_port=node_spec.default_egress_port,
                    port_count=self._switch_port_count(node_spec),
                )
                self._decoder_nodes[node_spec.name] = node
            else:  # forward
                node = ForwardNode(
                    node_spec.name,
                    forwarding=dict(node_spec.forwarding),
                    default_egress_port=node_spec.default_egress_port,
                )
                self._forward_nodes[node_spec.name] = node
            self.graph.add_node(node)

    def _build_one_link(self, link: LinkSpec) -> List[EmulatedLink]:
        impairments = None
        if link.loss or link.reorder:
            seed = link.seed
            if seed is None:
                seed = derive_seed(self.spec.name, self.spec.seed, f"link:{link.name}")
            impairments = ImpairmentModel(
                loss_probability=link.loss,
                reorder_probability=link.reorder,
                seed=seed,
            )
        return build_link_chain(
            self.simulator,
            names=link.hop_names(),
            bandwidth_bps=link.bandwidth_gbps * 1e9,
            propagation_delay=link.propagation_us * 1e-6,
            queue_capacity=link.queue_capacity or None,
            impairments=impairments,
            record_delays=self.verify_integrity,
        )

    def _build_links(self) -> None:
        measured = self.spec.measured_link
        for link in self.spec.links:
            tap = None
            if measured is not None and link.name == measured.name:
                tap = LinkTap(store_records=self.verify_integrity)
                self.measured_tap = tap
            chain: List[EmulatedLink] = []
            if not link.direct:
                chain = self._build_one_link(link)
            self.graph.add_edge(
                link.source[0],
                link.source[1],
                link.target[0],
                link.target[1],
                links=chain,
                tap=tap,
            )

    def _build_control_planes(self) -> None:
        if self.spec.scenario == "no_table":
            return
        paired: Dict[str, str] = {}
        for node_spec in self.spec.nodes:
            if node_spec.kind != "encoder":
                continue
            decoder_name = node_spec.decoder
            if decoder_name is None:
                if len(self._decoder_nodes) == 1:
                    decoder_name = next(iter(self._decoder_nodes))
                elif self._decoder_nodes:
                    raise TopologyError(
                        f"node {node_spec.name!r}: multiple decoder nodes exist; "
                        "set its 'decoder' pairing explicitly"
                    )
            if decoder_name is not None:
                if decoder_name in paired:
                    raise TopologyError(
                        f"node {decoder_name!r}: paired with both "
                        f"{paired[decoder_name]!r} and {node_spec.name!r}; a "
                        "decoder's identifier table serves one encoder"
                    )
                paired[decoder_name] = node_spec.name
            encoder = self._encoder_nodes[node_spec.name].switch
            decoder = (
                None
                if decoder_name is None
                else self._decoder_nodes[decoder_name].switch
            )
            decoder_transport = None
            if self.spec.control == "in-network" and decoder is not None:
                control_link = EmulatedLink(
                    simulator=self.simulator,
                    name=f"control.{node_spec.name}",
                    bandwidth_bps=self.spec.control_bandwidth_gbps * 1e9,
                    propagation_delay=self.spec.control_propagation_us * 1e-6,
                )
                channel = ControlChannel(self.simulator, control_link, decoder)
                self.control_channels[node_spec.name] = channel
                decoder_transport = channel.transport
            self.control_planes[node_spec.name] = ZipLineControlPlane(
                digest_engine=encoder.digest_engine,
                encoder_switch=encoder,
                decoder_switch=decoder,
                simulator=self.simulator,
                identifier_bits=self.spec.identifier_bits,
                entry_ttl=self.spec.entry_ttl,
                seed=self.spec.seed,
                decoder_transport=decoder_transport,
            )

    def _build_flow_source(
        self, flow: FlowSpec, seed: int, source_mac: MacAddress, sink_mac: MacAddress
    ) -> TraceSource:
        if flow.trace is not None:
            return PcapTraceSource(flow.trace)
        if flow.workload == "synthetic":
            from repro.workloads import SyntheticSensorWorkload

            workload = SyntheticSensorWorkload(
                num_chunks=flow.chunks,
                distinct_bases=flow.bases,
                order=self.spec.order,
                seed=seed,
            )
        else:
            from repro.workloads import DnsQueryWorkload

            workload = DnsQueryWorkload(
                num_queries=flow.chunks,
                distinct_names=flow.names,
                seed=seed,
            )
        return WorkloadTraceSource(
            workload, source=source_mac, destination=sink_mac
        )

    def _build_flow_pacing(self, flow: FlowSpec) -> Pacing:
        return pacing_from_name(
            flow.pacing,
            packet_rate=flow.packet_rate,
            speedup=flow.speedup,
            start=flow.start,
        )

    def _build_flows(self) -> None:
        for index, flow in enumerate(self.spec.flows):
            seed = self.spec.flow_seed(flow)
            source_mac = _flow_source_mac(index)
            sink_mac = self._host_macs[flow.sink]
            state = _FlowState(
                spec=flow,
                seed=seed,
                source=self._build_flow_source(flow, seed, source_mac, sink_mac),
                pacing=self._build_flow_pacing(flow),
                source_mac=source_mac,
                sink_mac=sink_mac,
                verify_integrity=self.verify_integrity,
            )
            self._flows.append(state)
            self._flows_by_mac[state.source_mac_bytes] = state
        for name, host in self._host_nodes.items():
            host.on_deliver = partial(self._dispatch_arrival, name)

    def _dispatch_arrival(
        self, host_name: str, frame_bytes: bytes, time: float
    ) -> None:
        flow = self._flows_by_mac.get(frame_bytes[6:12])
        if flow is None:
            self._unattributed += 1
            return
        if flow.spec.sink != host_name:
            # A flow's frame delivered to the wrong host is a routing bug,
            # not a successful arrival: count it, and let the flow's
            # integrity report the chunk as missing.
            self._misdelivered += 1
            return
        flow.record_arrival(frame_bytes, time)

    def _preload_static_bases(self) -> None:
        """Install the union of every flow's bases, in flow order."""
        bases: Dict[int, None] = {}
        for state in self._flows:
            for basis in self._flow_bases(state):
                bases.setdefault(basis, None)
        if not bases:
            return
        if self.control_planes:
            for control_plane in self.control_planes.values():
                control_plane.preload_static_mappings(list(bases))
        else:
            for decoder_node in self._decoder_nodes.values():
                for identifier, basis in enumerate(bases):
                    decoder_node.switch.install_identifier_mapping(identifier, basis)

    def _flow_bases(self, state: _FlowState) -> Iterator[int]:
        flow = state.spec
        if flow.trace is not None:
            from repro.replay.sources import stream_distinct_bases

            yield from stream_distinct_bases(flow.trace, order=self.spec.order)
            return
        if flow.workload == "synthetic":
            from repro.workloads import SyntheticSensorWorkload

            yield from SyntheticSensorWorkload(
                num_chunks=flow.chunks,
                distinct_bases=flow.bases,
                order=self.spec.order,
                seed=state.seed,
            ).bases()
            return
        from repro.workloads import DnsQueryWorkload

        yield from DnsQueryWorkload(
            num_queries=flow.chunks, distinct_names=flow.names, seed=state.seed
        ).bases(order=self.spec.order)

    # -- execution ---------------------------------------------------------------

    def _schedule_flow(self, state: _FlowState) -> None:
        """One-pending-frame streaming injection, as in the harness."""
        state.pacing.reset()
        iterator = state.source.frames()
        host = self._host_nodes[state.spec.source]
        counter = {"index": 0}

        def schedule_next() -> None:
            timed = next(iterator, None)
            if timed is None:
                return
            index = counter["index"]
            counter["index"] = index + 1
            at = state.pacing.inject_at(index, timed.recorded_time, len(timed.data))
            at = max(at, self.simulator.now)

            def fire(data=timed.data) -> None:
                frame = state.frame_for_injection(data)
                state.record_injection(frame, self.simulator.now)
                host.inject(frame, self.simulator.now)
                schedule_next()

            self.simulator.schedule_at(at, fire, description="replay:inject")

        schedule_next()

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> TopologyReport:
        """Schedule every flow, run the simulation, and build the report."""
        for state in self._flows:
            self._schedule_flow(state)
        self.simulator.run(until=until, max_events=max_events)
        return self.report()

    # -- results -----------------------------------------------------------------

    def learning_time(self) -> Optional[float]:
        """Gap between the first type-2 and type-3 frame on the measured link."""
        if self.measured_tap is None:
            return None
        first_uncompressed = self.measured_tap.first_time_of_kind(
            PacketKind.PROCESSED_UNCOMPRESSED
        )
        first_compressed = self.measured_tap.first_time_of_kind(
            PacketKind.PROCESSED_COMPRESSED
        )
        if first_uncompressed is None or first_compressed is None:
            return None
        return max(0.0, first_compressed - first_uncompressed)

    def _collect_metrics(self) -> MetricsRegistry:
        metrics = MetricsRegistry()
        for name, node in self._encoder_nodes.items():
            collect_switch_metrics(metrics, encoder=node.switch, encoder_prefix=name)
        for name, node in self._decoder_nodes.items():
            collect_switch_metrics(metrics, decoder=node.switch, decoder_prefix=name)
        for name, node in self._forward_nodes.items():
            metrics.merge_counters(name, node.counters())
        collect_link_metrics(metrics, self.graph.links)
        single = len(self.control_planes) == 1
        for name, control_plane in self.control_planes.items():
            namespace = "controlplane" if single else f"controlplane.{name}"
            metrics.merge_counters(namespace, control_plane.stats.as_dict())
        for name, channel in self.control_channels.items():
            metrics.merge_counters(f"control.{name}", channel.counters())
            metrics.merge_counters(
                f"control.{name}.link", channel.link.stats.as_dict()
            )
        if self.measured_tap is not None:
            collect_wire_metrics(metrics, self.measured_tap)
        if self._unattributed:
            metrics.increment("flows.unattributed_frames", self._unattributed)
        if self._misdelivered:
            metrics.increment("flows.misdelivered_frames", self._misdelivered)
        return metrics

    def report(self) -> TopologyReport:
        """Fold everything measured so far into a :class:`TopologyReport`."""
        metrics = self._collect_metrics()
        flow_results: List[FlowResult] = []
        totals = {"sent": 0, "received": 0, "matched": 0, "corrupted": 0,
                  "missing": 0, "out_of_order": 0}
        any_integrity = False
        # Same name the linear harness uses, so a one-flow linear topology
        # produces the identical end-to-end latency distribution key.
        endtoend = metrics.distribution("endtoend.latency")
        for state in self._flows:
            latency = metrics.distribution(f"flow.{state.spec.name}.latency")
            integrity = state.check_integrity(latency)
            endtoend.extend(latency.samples)
            metrics.increment(f"flow.{state.spec.name}.chunks_sent", state.chunks_sent)
            metrics.increment(
                f"flow.{state.spec.name}.payload_bytes_sent", state.chunk_bytes_sent
            )
            metrics.increment(f"flow.{state.spec.name}.delivered", state.delivered)
            if integrity is not None:
                any_integrity = True
                for key in totals:
                    totals[key] += getattr(integrity, key)
                metrics.increment(
                    f"flow.{state.spec.name}.missing", integrity.missing
                )
                metrics.increment(
                    f"flow.{state.spec.name}.corrupted", integrity.corrupted
                )
            flow_results.append(
                FlowResult(
                    name=state.spec.name,
                    source=state.source.description,
                    seed=state.seed,
                    chunks_sent=state.chunks_sent,
                    payload_bytes_sent=state.chunk_bytes_sent,
                    frames_sent=state.frames_sent,
                    delivered=state.delivered,
                    integrity=integrity,
                    latency={} if latency.empty else latency.summary(),
                )
            )
        aggregate = IntegrityResult(**totals) if any_integrity else None
        return TopologyReport(
            topology=self.spec.name,
            scenario=self.spec.scenario,
            chunks_sent=sum(state.chunks_sent for state in self._flows),
            payload_bytes_sent=sum(state.chunk_bytes_sent for state in self._flows),
            wire_payload_bytes=(
                0 if self.measured_tap is None
                else self.measured_tap.total_payload_bytes()
            ),
            duration=self.simulator.now,
            integrity=aggregate,
            flows=flow_results,
            metrics=metrics,
            learning_time=self.learning_time(),
        )
