"""Execute a :class:`~repro.topology.spec.TopologySpec`: N flows, one graph.

:class:`TopologyEngine` turns a declarative spec into a running system on a
single shared :class:`~repro.sim.simulator.Simulator`:

* every node spec becomes a live node (hosts, ZipLine switches wrapped in
  graph adapters, plain forwarders);
* every link spec becomes a direct attachment or a chain of
  :class:`~repro.replay.link.EmulatedLink` hops (impairments seeded per
  link through :func:`~repro.topology.spec.derive_seed`);
* every flow spec becomes a concurrently-scheduled traffic stream with its
  own :class:`~repro.replay.sources.TraceSource`, pacing, source MAC and
  derived seed, injected at its source host exactly the way the linear
  harness injects (one pending frame per flow, bounded memory);
* each encoder's control plane either writes decoder mappings directly
  (``control: direct``, the harness behaviour) or ships them as
  in-network control messages over a dedicated emulated link with real
  latency (``control: in-network``).

Per-flow end-to-end integrity uses the same FIFO content matching as the
harness; arrivals are attributed to flows by their source MAC, which the
ZipLine encode/decode path preserves.  The resulting
:class:`TopologyReport` carries per-flow, per-link and per-node metrics
and is a deterministic function of (spec, seed): running the same spec
twice yields byte-identical :meth:`TopologyReport.json_text` output.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro import obs as _obs
from repro.controlplane.manager import ZipLineControlPlane
from repro.core.transform import GDTransform
from repro.obs.snapshot import PeriodicSnapshotter
from repro.exceptions import TopologyError
from repro.net.mac import MacAddress
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay.link import EmulatedLink
from repro.replay.metrics import (
    Distribution,
    IntegrityResult,
    MetricsRegistry,
    ReplayReport,
    collect_link_metrics,
    collect_switch_metrics,
    collect_wire_metrics,
)
from repro.replay.sources import (
    Pacing,
    PcapTraceSource,
    TraceSource,
    WorkloadTraceSource,
    pacing_from_name,
)
from repro.sim.simulator import Simulator
from repro.tofino.digest import DigestEngine
from repro.topology.control import ControlChannel
from repro.topology.graph import TopologyGraph, build_link_chain
from repro.topology.nodes import (
    ForwardNode,
    HostNode,
    ZipLineDecoderNode,
    ZipLineEncoderNode,
)
from repro.topology.spec import FlowSpec, LinkSpec, TopologySpec, derive_seed
from repro.zipline.headers import RAW_CHUNK_ETHERTYPE_BYTES, raw_chunk_payload
from repro.zipline.stats import LinkTap
from repro.net.packets import PacketKind

__all__ = ["FlowResult", "TopologyReport", "TopologyEngine"]


def _flow_source_mac(index: int) -> MacAddress:
    """Unique locally-administered source MAC for flow ``index``.

    Flows live under ``02:00:00:01:xx:xx``, hosts under ``02:00:00:00:xx:xx``
    — disjoint ranges, so per-flow arrival attribution by source MAC can
    never collide with a host address.
    """
    return MacAddress(0x02_00_00_01_00_00 + index + 1)


def _host_mac(index: int) -> MacAddress:
    """Unique locally-administered MAC for host ``index``."""
    return MacAddress(0x02_00_00_00_00_00 + index + 1)


#: How the engine folds per-flow metrics (see :class:`TopologyEngine`).
METRICS_MODES = ("exact", "streaming")


class _NullFlowAccount:
    """No verification, no retention — the counters-only mode."""

    #: Streaming accounts own their latency sketch; batch/null modes get a
    #: registry-created distribution at fold time instead.
    latency: Optional[Distribution] = None

    def record_sent(self, frame_bytes: bytes, now: float) -> None:
        pass

    def record_arrival(self, frame_bytes: bytes, time: float) -> None:
        pass

    def fold_into(self, latency: Distribution) -> Optional[IntegrityResult]:
        return None


class _ExactFlowAccount:
    """Batch FIFO content matching, identical to the harness's algorithm.

    Retains every injected chunk payload and every arrival frame —
    O(traffic) memory, folded into the integrity verdict and the exact
    latency distribution at report time.
    """

    latency: Optional[Distribution] = None

    def __init__(self) -> None:
        self.sent_chunks: List[bytes] = []
        self.sent_times: List[float] = []
        self.pending_by_content: Dict[bytes, Deque[int]] = {}
        self.arrivals: List[Tuple[float, bytes]] = []

    def record_sent(self, frame_bytes: bytes, now: float) -> None:
        payload = frame_bytes[14:]
        index = len(self.sent_chunks)
        self.sent_chunks.append(payload)
        self.sent_times.append(now)
        self.pending_by_content.setdefault(payload, deque()).append(index)

    def record_arrival(self, frame_bytes: bytes, time: float) -> None:
        self.arrivals.append((time, frame_bytes))

    def fold_into(self, latency: Distribution) -> Optional[IntegrityResult]:
        if not self.sent_chunks:
            return None
        pending = {
            content: deque(indices)
            for content, indices in self.pending_by_content.items()
        }
        matched = corrupted = out_of_order = received = 0
        highest_index = -1
        for time, frame_bytes in self.arrivals:
            payload = raw_chunk_payload(frame_bytes)
            if payload is None:
                continue
            received += 1
            queue = pending.get(payload)
            if not queue:
                corrupted += 1
                continue
            index = queue.popleft()
            matched += 1
            if index < highest_index:
                out_of_order += 1
            highest_index = max(highest_index, index)
            latency.add(time - self.sent_times[index])
        return IntegrityResult(
            sent=len(self.sent_chunks),
            received=received,
            matched=matched,
            corrupted=corrupted,
            missing=len(self.sent_chunks) - matched,
            out_of_order=out_of_order,
        )


class _StreamingFlowAccount:
    """Online FIFO content matching with a bounded latency sketch.

    Matches each arrival the moment it happens, so memory holds only the
    chunks currently in flight (plus lost ones), never the whole stream.
    Equivalent to the batch matcher: the link model never duplicates
    frames, so an arrival can never need a copy sent *after* it — eager
    matching pops exactly the index the batch pass would.
    """

    def __init__(self, latency: Distribution) -> None:
        self.latency = latency
        self.sent = 0
        self.received = 0
        self.matched = 0
        self.corrupted = 0
        self.out_of_order = 0
        self.highest_index = -1
        self.pending: Dict[bytes, Deque[Tuple[int, float]]] = {}

    def record_sent(self, frame_bytes: bytes, now: float) -> None:
        self.pending.setdefault(frame_bytes[14:], deque()).append(
            (self.sent, now)
        )
        self.sent += 1

    def record_arrival(self, frame_bytes: bytes, time: float) -> None:
        payload = raw_chunk_payload(frame_bytes)
        if payload is None:
            return
        self.received += 1
        queue = self.pending.get(payload)
        if not queue:
            self.corrupted += 1
            return
        index, sent_time = queue.popleft()
        if not queue:
            del self.pending[payload]
        self.matched += 1
        if index < self.highest_index:
            self.out_of_order += 1
        self.highest_index = max(self.highest_index, index)
        self.latency.add(time - sent_time)

    def fold_into(self, latency: Distribution) -> Optional[IntegrityResult]:
        if not self.sent:
            return None
        return IntegrityResult(
            sent=self.sent,
            received=self.received,
            matched=self.matched,
            corrupted=self.corrupted,
            missing=self.sent - self.matched,
            out_of_order=self.out_of_order,
        )


class _FlowState:
    """Runtime bookkeeping of one flow: scheduling identity plus volume
    counters, with verification delegated to a pluggable account."""

    def __init__(
        self,
        spec: FlowSpec,
        seed: int,
        source: TraceSource,
        pacing: Pacing,
        source_mac: MacAddress,
        sink_mac: MacAddress,
        account,
    ):
        self.spec = spec
        self.seed = seed
        self.source = source
        self.pacing = pacing
        self.source_mac_bytes = bytes(source_mac)
        self.account = account
        # Trace-driven flows carry whatever addresses the capture recorded;
        # rewrite the Ethernet addresses to the flow's own identity so
        # arrival attribution by source MAC works for every source kind.
        # (Workload sources already frame with these addresses.)
        self._mac_rewrite: Optional[bytes] = (
            bytes(sink_mac) + self.source_mac_bytes
            if spec.trace is not None
            else None
        )
        self.frames_sent = 0
        self.chunks_sent = 0
        self.chunk_bytes_sent = 0
        self.delivered = 0

    @property
    def sent_chunks(self) -> List[bytes]:
        """Retained chunk payloads (empty outside the exact account)."""
        return getattr(self.account, "sent_chunks", [])

    @property
    def arrivals(self) -> List[Tuple[float, bytes]]:
        """Retained arrival frames (empty outside the exact account)."""
        return getattr(self.account, "arrivals", [])

    def frame_for_injection(self, frame_bytes: bytes) -> bytes:
        """The frame as this flow puts it on the wire (flow-owned MACs)."""
        if self._mac_rewrite is None:
            return frame_bytes
        return self._mac_rewrite + frame_bytes[12:]

    def record_injection(self, frame_bytes: bytes, now: float) -> None:
        self.frames_sent += 1
        if frame_bytes[12:14] == RAW_CHUNK_ETHERTYPE_BYTES:
            self.chunks_sent += 1
            self.chunk_bytes_sent += len(frame_bytes) - 14
            self.account.record_sent(frame_bytes, now)

    def record_arrival(self, frame_bytes: bytes, time: float) -> None:
        self.delivered += 1
        self.account.record_arrival(frame_bytes, time)


@dataclass
class FlowResult:
    """One flow's outcome: identity, volumes, integrity, latency."""

    name: str
    source: str
    seed: int
    chunks_sent: int
    payload_bytes_sent: int
    frames_sent: int
    delivered: int
    integrity: Optional[IntegrityResult]
    latency: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (one entry of the report's ``flows`` list)."""
        return {
            "name": self.name,
            "source": self.source,
            "seed": self.seed,
            "chunks_sent": self.chunks_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "frames_sent": self.frames_sent,
            "delivered": self.delivered,
            "integrity": None if self.integrity is None else self.integrity.as_dict(),
            "latency": dict(self.latency),
        }


@dataclass
class TopologyReport:
    """Everything one topology run produced.

    The top-level shape mirrors :class:`~repro.replay.metrics.ReplayReport`
    (``compression_ratio``, ``integrity``, ``metrics.counters...``) so the
    experiment matrix's dotted metric paths resolve on either report kind;
    ``flows`` adds the per-flow breakdown and ``metrics`` carries per-link
    and per-flow attribution (``flow.<name>.*`` counters and latency
    distributions).
    """

    topology: str
    scenario: str
    chunks_sent: int
    payload_bytes_sent: int
    wire_payload_bytes: int
    duration: float
    integrity: Optional[IntegrityResult]
    flows: List[FlowResult] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    learning_time: Optional[float] = None

    @property
    def compression_ratio(self) -> Optional[float]:
        """Measured-link payload bytes over injected payload bytes."""
        if self.payload_bytes_sent == 0:
            return None
        return self.wire_payload_bytes / self.payload_bytes_sent

    @property
    def savings_percent(self) -> Optional[float]:
        """Percentage of payload bytes the compression removed (or ``None``)."""
        ratio = self.compression_ratio
        if ratio is None:
            return None
        return 100.0 * (1.0 - ratio)

    def flow(self, name: str) -> FlowResult:
        """Look up one flow's result by name."""
        for result in self.flows:
            if result.name == name:
                return result
        known = ", ".join(result.name for result in self.flows) or "none"
        raise TopologyError(f"unknown flow {name!r}; flows: {known}")

    def latency_summary(self) -> Dict[str, float]:
        """All-flow end-to-end latency percentiles (empty dict when unknown)."""
        dist = self.metrics.distributions().get("endtoend.latency")
        if dist is None or dist.empty:
            return {}
        return dist.summary()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view of the whole report."""
        return {
            "topology": self.topology,
            "scenario": self.scenario,
            "chunks_sent": self.chunks_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "wire_payload_bytes": self.wire_payload_bytes,
            "compression_ratio": self.compression_ratio,
            "savings_percent": self.savings_percent,
            "duration": self.duration,
            "learning_time": self.learning_time,
            "integrity": None if self.integrity is None else self.integrity.as_dict(),
            "latency": self.latency_summary(),
            "flows": [flow.as_dict() for flow in self.flows],
            "metrics": self.metrics.as_dict(),
        }

    def json_text(self) -> str:
        """Canonical JSON — the determinism witness (same spec ⇒ same bytes)."""
        import json

        return json.dumps(self.as_dict(), indent=2, sort_keys=True, default=str)

    def render(self, include_counters: bool = False) -> str:
        """Human-readable report: headline, per-flow table, counters."""
        from repro.analysis.reporting import format_table

        headline: List[List[object]] = [
            ["topology", self.topology],
            ["scenario", self.scenario],
            ["flows", len(self.flows)],
            ["chunks sent", f"{self.chunks_sent:,}"],
            ["payload bytes sent", f"{self.payload_bytes_sent:,}"],
            ["bytes on the measured link", f"{self.wire_payload_bytes:,}"],
            [
                "compression ratio",
                "n/a"
                if self.compression_ratio is None
                else f"{self.compression_ratio:.4f}",
            ],
            [
                "savings",
                "n/a"
                if self.savings_percent is None
                else f"{self.savings_percent:.1f} %",
            ],
            ["duration", f"{self.duration * 1e3:.3f} ms"],
            [
                "learning delay",
                "n/a"
                if self.learning_time is None
                else f"{self.learning_time * 1e3:.3f} ms",
            ],
        ]
        if self.integrity is not None:
            headline.append(
                ["integrity intact", "yes" if self.integrity.intact else "NO"]
            )
            headline.append(["chunks lost", f"{self.integrity.missing:,}"])
            headline.append(["chunks corrupted", f"{self.integrity.corrupted:,}"])
        parts = [
            format_table(
                ["metric", "value"],
                headline,
                title=f"topology {self.topology} ({self.scenario})",
            )
        ]
        if self.flows:
            rows = []
            for flow in self.flows:
                integrity = flow.integrity
                rows.append(
                    [
                        flow.name,
                        f"{flow.chunks_sent:,}",
                        f"{flow.delivered:,}",
                        "n/a" if integrity is None else f"{integrity.missing:,}",
                        "n/a" if integrity is None else f"{integrity.corrupted:,}",
                        "n/a"
                        if not flow.latency
                        else f"{flow.latency.get('p50', 0.0) * 1e6:.2f}",
                    ]
                )
            parts.append(
                format_table(
                    ["flow", "chunks", "delivered", "lost", "corrupted", "p50_us"],
                    rows,
                    title="per-flow breakdown",
                )
            )
        if include_counters:
            counter_rows = self.metrics.counter_rows()
            if counter_rows:
                parts.append(
                    format_table(
                        ["counter", "value"], counter_rows, title="counter breakdown"
                    )
                )
        return "\n\n".join(parts)


class TopologyEngine:
    """Build and run one :class:`~repro.topology.spec.TopologySpec`.

    Parameters
    ----------
    spec:
        The validated topology description.
    verify_integrity:
        When true (default) every flow is checked end to end and gets
        latency percentiles.  False skips verification entirely and
        reports ``integrity: None``, like the harness's counters-only
        mode.
    metrics_mode:
        How per-flow metrics are kept.  ``"exact"`` (default) retains
        every chunk, arrival and latency sample — O(traffic) memory, the
        historical behaviour.  ``"streaming"`` matches arrivals online and
        folds latencies into fixed-size sketches
        (:class:`~repro.replay.metrics.Distribution` bounded mode), keeps
        link taps counters-only and skips per-sample queueing-delay
        retention — bounded memory at any scale, with identical counters,
        gauges and integrity verdicts; only latency percentiles become
        sketch estimates (and per-link queueing-delay distributions are
        empty).  The mode never changes what the simulation *does*, so a
        run's counters are byte-identical across modes.
    tap_fallback:
        When no link is explicitly ``measured: true``, whether to tap the
        spec's fallback measured link (default true).  Sharded sub-spec
        runs disable this: the partitioner resolves the fallback against
        the *full* spec and marks it explicitly, so a shard can never
        invent a tap the monolithic run would not have.
    qualify_controlplane:
        Controls whether control-plane counters are namespaced as
        ``controlplane.<encoder>`` (true) or plain ``controlplane``
        (false).  ``None`` (default) qualifies exactly when the engine
        builds more than one control plane; shard workers receive the
        full-spec answer so shard-local reports merge without colliding.
    batch_drain:
        Whether ZipLine nodes defer frames arriving at the same simulated
        timestamp into one drain event and hand them to the switch's
        ``receive_batch`` (sharing a single batched CRC/parity pass).
        ``None`` (default) follows the spec's ``batch_drain`` field.
        Emitted frames, counters and reports are identical either way;
        only the wall-clock cost of the run changes.
    """

    def __init__(
        self,
        spec: TopologySpec,
        verify_integrity: bool = True,
        metrics_mode: str = "exact",
        tap_fallback: bool = True,
        qualify_controlplane: Optional[bool] = None,
        batch_drain: Optional[bool] = None,
    ):
        if metrics_mode not in METRICS_MODES:
            raise TopologyError(
                f"metrics_mode must be one of {', '.join(METRICS_MODES)}; "
                f"got {metrics_mode!r}"
            )
        self.spec = spec
        self.verify_integrity = verify_integrity
        self.metrics_mode = metrics_mode
        self._streaming = metrics_mode == "streaming"
        self.tap_fallback = tap_fallback
        self._qualify_controlplane = qualify_controlplane
        self.batch_drain = (
            getattr(spec, "batch_drain", False) if batch_drain is None else batch_drain
        )
        self.simulator = Simulator()
        self.transform = GDTransform(order=spec.order)
        self.graph = TopologyGraph(self.simulator)
        self.measured_tap: Optional[LinkTap] = None
        self.measured_taps: List[Tuple[str, LinkTap]] = []
        self.control_planes: Dict[str, ZipLineControlPlane] = {}
        self.control_channels: Dict[str, ControlChannel] = {}
        self._decoder_owner: Dict[str, str] = {}
        self._fault_restarts = 0
        self._fault_storm_evicted = 0
        self._fault_resync_installs = 0
        self._encoder_nodes: Dict[str, ZipLineEncoderNode] = {}
        self._decoder_nodes: Dict[str, ZipLineDecoderNode] = {}
        self._host_nodes: Dict[str, HostNode] = {}
        self._forward_nodes: Dict[str, ForwardNode] = {}
        self._flows: List[_FlowState] = []
        self._flows_by_mac: Dict[bytes, _FlowState] = {}
        self._unattributed = 0
        self._misdelivered = 0
        self._build_nodes()
        self._build_links()
        self.graph.wire()
        self._build_control_planes()
        self._build_flows()
        if spec.scenario == "static":
            self._preload_static_bases()
        self._snapshotter = None
        tracer = _obs.TRACER
        if tracer.enabled:
            # Bind the tracer's clock to this engine's simulator so every
            # event downstream is stamped with simulated time, and attach
            # the periodic snapshotter when one was requested.
            tracer.clock = lambda: self.simulator.now
            if tracer.snapshot_interval:
                self._snapshotter = PeriodicSnapshotter(
                    tracer.snapshot_interval, tracer, self._snapshot_sample
                )
                self.simulator.add_observer(self._snapshotter.on_event)

    # -- construction ---------------------------------------------------------

    def _switch_port_count(self, node_spec) -> Optional[int]:
        """Size a switch for every port the spec references on it.

        The Tofino model defaults to 32 front-panel ports; a wide fan-in
        (or a hand-written spec addressing a high port) gets a switch big
        enough for its highest referenced port instead of an out-of-range
        failure halfway through the build.
        """
        highest = -1
        for link in self.spec.links:
            if link.source[0] == node_spec.name:
                highest = max(highest, link.source[1])
            if link.target[0] == node_spec.name:
                highest = max(highest, link.target[1])
        for ingress, egress in node_spec.forwarding.items():
            highest = max(highest, ingress, egress)
        if node_spec.default_egress_port is not None:
            highest = max(highest, node_spec.default_egress_port)
        return None if highest < 32 else highest + 1

    def _build_nodes(self) -> None:
        host_index = 0
        self._host_macs: Dict[str, MacAddress] = {}
        for node_spec in self.spec.nodes:
            if node_spec.kind == "host":
                # Frames are retained per flow (for the integrity check),
                # never a second time at the host.
                node = HostNode(node_spec.name, store=False)
                self._host_nodes[node_spec.name] = node
                self._host_macs[node_spec.name] = _host_mac(host_index)
                host_index += 1
            elif node_spec.kind == "encoder":
                digest_engine = DigestEngine(self.simulator)
                node = ZipLineEncoderNode(
                    node_spec.name,
                    batch_drain=self.batch_drain,
                    transform=self.transform,
                    identifier_bits=self.spec.identifier_bits,
                    simulator=self.simulator,
                    forwarding=dict(node_spec.forwarding),
                    default_egress_port=node_spec.default_egress_port,
                    entry_ttl=self.spec.entry_ttl,
                    digest_engine=digest_engine,
                    port_count=self._switch_port_count(node_spec),
                )
                self._encoder_nodes[node_spec.name] = node
            elif node_spec.kind == "decoder":
                node = ZipLineDecoderNode(
                    node_spec.name,
                    batch_drain=self.batch_drain,
                    transform=self.transform,
                    identifier_bits=self.spec.identifier_bits,
                    simulator=self.simulator,
                    forwarding=dict(node_spec.forwarding),
                    default_egress_port=node_spec.default_egress_port,
                    port_count=self._switch_port_count(node_spec),
                )
                self._decoder_nodes[node_spec.name] = node
            else:  # forward
                node = ForwardNode(
                    node_spec.name,
                    forwarding=dict(node_spec.forwarding),
                    default_egress_port=node_spec.default_egress_port,
                )
                self._forward_nodes[node_spec.name] = node
            self.graph.add_node(node)

    def _build_one_link(self, link: LinkSpec) -> List[EmulatedLink]:
        impairments = None
        if link.loss or link.reorder:
            seed = link.seed
            if seed is None:
                seed = derive_seed(self.spec.name, self.spec.seed, f"link:{link.name}")
            impairments = ImpairmentModel(
                loss_probability=link.loss,
                reorder_probability=link.reorder,
                seed=seed,
            )
        return build_link_chain(
            self.simulator,
            names=link.hop_names(),
            bandwidth_bps=link.bandwidth_gbps * 1e9,
            propagation_delay=link.propagation_us * 1e-6,
            queue_capacity=link.queue_capacity or None,
            impairments=impairments,
            record_delays=self.verify_integrity and not self._streaming,
        )

    def _build_links(self) -> None:
        measured_names = {link.name for link in self.spec.links if link.measured}
        if not measured_names and self.tap_fallback:
            fallback = self.spec.measured_link
            if fallback is not None:
                measured_names = {fallback.name}
        for link in self.spec.links:
            tap = None
            if link.name in measured_names:
                tap = LinkTap(
                    store_records=self.verify_integrity and not self._streaming
                )
                self.measured_taps.append((link.name, tap))
                if self.measured_tap is None:
                    self.measured_tap = tap
            chain: List[EmulatedLink] = []
            if not link.direct:
                chain = self._build_one_link(link)
            self.graph.add_edge(
                link.source[0],
                link.source[1],
                link.target[0],
                link.target[1],
                links=chain,
                tap=tap,
            )

    def _build_control_planes(self) -> None:
        if self.spec.scenario == "no_table":
            return
        paired: Dict[str, str] = {}
        for node_spec in self.spec.nodes:
            if node_spec.kind != "encoder":
                continue
            decoder_name = node_spec.decoder
            if decoder_name is None:
                if len(self._decoder_nodes) == 1:
                    decoder_name = next(iter(self._decoder_nodes))
                elif self._decoder_nodes:
                    raise TopologyError(
                        f"node {node_spec.name!r}: multiple decoder nodes exist; "
                        "set its 'decoder' pairing explicitly"
                    )
            if decoder_name is not None:
                if decoder_name in paired:
                    raise TopologyError(
                        f"node {decoder_name!r}: paired with both "
                        f"{paired[decoder_name]!r} and {node_spec.name!r}; a "
                        "decoder's identifier table serves one encoder"
                    )
                paired[decoder_name] = node_spec.name
            encoder = self._encoder_nodes[node_spec.name].switch
            decoder = (
                None
                if decoder_name is None
                else self._decoder_nodes[decoder_name].switch
            )
            decoder_transport = None
            if self.spec.control == "in-network" and decoder is not None:
                impairments = None
                faults = self.spec.faults
                if faults is not None and (
                    faults.control_loss or faults.control_reorder
                ):
                    # Seeded from the spec identity + the encoder name, so
                    # the control-link fault stream is independent of which
                    # shard the encoder lands in.
                    impairments = ImpairmentModel(
                        loss_probability=faults.control_loss,
                        reorder_probability=faults.control_reorder,
                        seed=derive_seed(
                            self.spec.name,
                            self.spec.seed,
                            f"control:{node_spec.name}",
                        ),
                    )
                control_link = EmulatedLink(
                    simulator=self.simulator,
                    name=f"control.{node_spec.name}",
                    bandwidth_bps=self.spec.control_bandwidth_gbps * 1e9,
                    propagation_delay=self.spec.control_propagation_us * 1e-6,
                    impairments=impairments,
                )
                channel = ControlChannel(
                    self.simulator,
                    control_link,
                    decoder,
                    rate=self.spec.control_rate,
                    queue_capacity=self.spec.control_queue,
                )
                self.control_channels[node_spec.name] = channel
                decoder_transport = channel.transport
            self.control_planes[node_spec.name] = ZipLineControlPlane(
                digest_engine=encoder.digest_engine,
                encoder_switch=encoder,
                decoder_switch=decoder,
                simulator=self.simulator,
                identifier_bits=self.spec.identifier_bits,
                entry_ttl=self.spec.entry_ttl,
                seed=self.spec.seed,
                decoder_transport=decoder_transport,
            )
        # Restart/storm fault events resolve their control plane through
        # this pairing (decoder name -> owning encoder name).
        self._decoder_owner = paired

    def _build_flow_source(
        self, flow: FlowSpec, seed: int, source_mac: MacAddress, sink_mac: MacAddress
    ) -> TraceSource:
        if flow.trace is not None:
            return PcapTraceSource(flow.trace)
        if flow.workload == "synthetic":
            from repro.workloads import SyntheticSensorWorkload

            workload = SyntheticSensorWorkload(
                num_chunks=flow.chunks,
                distinct_bases=flow.bases,
                order=self.spec.order,
                seed=seed,
            )
        elif flow.workload == "thrash":
            from repro.workloads import DictionaryThrashWorkload

            workload = DictionaryThrashWorkload(
                num_chunks=flow.chunks,
                distinct_bases=flow.bases,
                order=self.spec.order,
                # A quarter-trace phase with a working-set migration keeps
                # the control plane installing for the whole run.
                phase_chunks=max(1, flow.chunks // 4),
                phase_shift=max(1, flow.bases // 4),
                seed=seed,
            )
        else:
            from repro.workloads import DnsQueryWorkload

            workload = DnsQueryWorkload(
                num_queries=flow.chunks,
                distinct_names=flow.names,
                seed=seed,
            )
        return WorkloadTraceSource(
            workload, source=source_mac, destination=sink_mac
        )

    def _build_flow_pacing(self, flow: FlowSpec) -> Pacing:
        return pacing_from_name(
            flow.pacing,
            packet_rate=flow.packet_rate,
            speedup=flow.speedup,
            start=flow.start,
        )

    def _make_account(self, flow: FlowSpec):
        if not self.verify_integrity:
            return _NullFlowAccount()
        if self._streaming:
            return _StreamingFlowAccount(
                Distribution(f"flow.{flow.name}.latency", bounded=True)
            )
        return _ExactFlowAccount()

    def _build_flows(self) -> None:
        for index, flow in enumerate(self.spec.flows):
            seed = self.spec.flow_seed(flow)
            source_mac = _flow_source_mac(index)
            sink_mac = self._host_macs[flow.sink]
            state = _FlowState(
                spec=flow,
                seed=seed,
                source=self._build_flow_source(flow, seed, source_mac, sink_mac),
                pacing=self._build_flow_pacing(flow),
                source_mac=source_mac,
                sink_mac=sink_mac,
                account=self._make_account(flow),
            )
            self._flows.append(state)
            self._flows_by_mac[state.source_mac_bytes] = state
        for name, host in self._host_nodes.items():
            host.on_deliver = partial(self._dispatch_arrival, name)

    def _dispatch_arrival(
        self, host_name: str, frame_bytes: bytes, time: float
    ) -> None:
        flow = self._flows_by_mac.get(frame_bytes[6:12])
        tracer = _obs.TRACER
        if flow is None:
            self._unattributed += 1
            if tracer.enabled:
                tracer.instant(
                    "flow.arrive",
                    host_name,
                    args={"outcome": "unattributed"},
                    ts=time,
                )
            return
        if flow.spec.sink != host_name:
            # A flow's frame delivered to the wrong host is a routing bug,
            # not a successful arrival: count it, and let the flow's
            # integrity report the chunk as missing.
            self._misdelivered += 1
            if tracer.enabled:
                tracer.instant(
                    "flow.arrive",
                    host_name,
                    args={"outcome": "misdelivered", "flow": flow.spec.name},
                    ts=time,
                )
            return
        flow.record_arrival(frame_bytes, time)
        if tracer.enabled:
            tracer.instant(
                "flow.arrive", host_name, args={"outcome": "delivered"}, ts=time
            )

    def _preload_static_bases(self) -> None:
        """Install each component's flows' bases into that component's
        tables, in flow-declaration order.

        Scoping the preload per connected component keeps a multi-encoder
        spec's dictionaries identical whether the spec runs monolithically
        or partitioned into per-encoder shards; on a single-component spec
        this is exactly the historical global union.
        """
        component_of = self.spec.node_components()
        bases_by_component: Dict[int, Dict[int, None]] = {}
        for state in self._flows:
            bucket = bases_by_component.setdefault(
                component_of[state.spec.source], {}
            )
            for basis in self._flow_bases(state):
                bucket.setdefault(basis, None)
        if self.control_planes:
            for name, control_plane in self.control_planes.items():
                bucket = bases_by_component.get(component_of[name])
                if bucket:
                    control_plane.preload_static_mappings(list(bucket))
        else:
            for name, decoder_node in self._decoder_nodes.items():
                bucket = bases_by_component.get(component_of[name])
                if not bucket:
                    continue
                for identifier, basis in enumerate(bucket):
                    decoder_node.switch.install_identifier_mapping(identifier, basis)

    def _flow_bases(self, state: _FlowState) -> Iterator[int]:
        flow = state.spec
        if flow.trace is not None:
            from repro.replay.sources import stream_distinct_bases

            yield from stream_distinct_bases(flow.trace, order=self.spec.order)
            return
        if flow.workload == "synthetic":
            from repro.workloads import SyntheticSensorWorkload

            yield from SyntheticSensorWorkload(
                num_chunks=flow.chunks,
                distinct_bases=flow.bases,
                order=self.spec.order,
                seed=state.seed,
            ).bases()
            return
        if flow.workload == "thrash":
            from repro.workloads import DictionaryThrashWorkload

            yield from DictionaryThrashWorkload(
                num_chunks=flow.chunks,
                distinct_bases=flow.bases,
                order=self.spec.order,
                phase_chunks=max(1, flow.chunks // 4),
                phase_shift=max(1, flow.bases // 4),
                seed=state.seed,
            ).bases()
            return
        from repro.workloads import DnsQueryWorkload

        yield from DnsQueryWorkload(
            num_queries=flow.chunks, distinct_names=flow.names, seed=state.seed
        ).bases(order=self.spec.order)

    # -- execution ---------------------------------------------------------------

    def _schedule_flow(self, state: _FlowState) -> None:
        """One-pending-frame streaming injection, as in the harness."""
        state.pacing.reset()
        iterator = state.source.frames()
        host = self._host_nodes[state.spec.source]
        counter = {"index": 0}

        def schedule_next() -> None:
            timed = next(iterator, None)
            if timed is None:
                return
            index = counter["index"]
            counter["index"] = index + 1
            at = state.pacing.inject_at(index, timed.recorded_time, len(timed.data))
            at = max(at, self.simulator.now)

            def fire(data=timed.data, idx=index) -> None:
                frame = state.frame_for_injection(data)
                state.record_injection(frame, self.simulator.now)
                tracer = _obs.TRACER
                if tracer.enabled:
                    # Everything the injection triggers synchronously —
                    # switch encode, link admission — inherits this chunk's
                    # identity; the link re-establishes it for the delivery
                    # side of the wire.
                    tracer.set_context(state.spec.name, idx)
                    tracer.instant("flow.inject", state.spec.source)
                    try:
                        host.inject(frame, self.simulator.now)
                    finally:
                        tracer.clear_context()
                else:
                    host.inject(frame, self.simulator.now)
                schedule_next()

            self.simulator.schedule_at(at, fire, description="replay:inject")

        schedule_next()

    def _restart_decoder(self, node_name: str) -> None:
        """Crash-restart one decoder: wipe its table, then resynchronise.

        The identifier table is the decoder's crash-volatile state; wiring
        and counters survive (a fast process restart).  Until the owning
        control plane's resync installs land, type-3 frames for wiped
        identifiers count as ``unknown_identifier`` drops — loss, never
        corruption.
        """
        decoder_node = self._decoder_nodes[node_name]
        decoder_node.switch.identifier_table.clear()
        self._fault_restarts += 1
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.instant("fault.restart", node_name)
        owner = self._decoder_owner.get(node_name)
        plane = self.control_planes.get(owner) if owner is not None else None
        if plane is not None:
            self._fault_resync_installs += plane.resync_decoder()

    def _trigger_storm(self, node_name: str, count: int) -> None:
        plane = self.control_planes.get(node_name)
        if plane is None:
            return
        evicted = plane.force_evict(count)
        self._fault_storm_evicted += evicted
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.instant(
                "fault.storm", node_name, args={"requested": count, "evicted": evicted}
            )

    def _schedule_faults(self) -> None:
        faults = self.spec.faults
        if faults is None or not faults.active:
            return
        for restart in faults.restarts:
            if restart.node not in self._decoder_nodes:
                continue  # filtered shard: event belongs to another worker
            self.simulator.schedule_at(
                restart.time,
                partial(self._restart_decoder, restart.node),
                description=f"fault:restart:{restart.node}",
            )
        for storm in faults.storms:
            if storm.node not in self._encoder_nodes:
                continue
            self.simulator.schedule_at(
                storm.time,
                partial(self._trigger_storm, storm.node, storm.count),
                description=f"fault:storm:{storm.node}",
            )

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> TopologyReport:
        """Schedule every flow, run the simulation, and build the report."""
        self._schedule_faults()
        for state in self._flows:
            self._schedule_flow(state)
        self.simulator.run(until=until, max_events=max_events)
        if self._snapshotter is not None:
            self._snapshotter.flush()
            self.simulator.remove_observer(self._snapshotter.on_event)
            self._snapshotter = None
        return self.report()

    def _snapshot_sample(self) -> Dict[str, float]:
        """The live series the periodic snapshotter records.

        All values come from counters the run maintains anyway, so
        sampling is O(nodes + links) and never touches the event queue.
        """
        now = self.simulator.now
        sent_bytes = sum(state.chunk_bytes_sent for state in self._flows)
        wire_bytes = sum(
            tap.total_payload_bytes() for _name, tap in self.measured_taps
        )
        wire_frames = sum(tap.total_frames() for _name, tap in self.measured_taps)
        sample = {
            "chunks_sent": float(
                sum(state.chunks_sent for state in self._flows)
            ),
            "payload_bytes_sent": float(sent_bytes),
            "wire_payload_bytes": float(wire_bytes),
            "ratio": (sent_bytes / wire_bytes) if wire_bytes else 0.0,
            "queue_depth": float(
                sum(link.queue_depth for link in self.graph.links)
            ),
            "pkt_per_s": (wire_frames / now) if now > 0 else 0.0,
            "dictionary_entries": float(
                sum(
                    len(node.switch.known_bases())
                    for node in self._encoder_nodes.values()
                )
            ),
        }
        return sample

    # -- results -----------------------------------------------------------------

    def wire_first_times(self) -> Tuple[Optional[float], Optional[float]]:
        """Earliest type-2 and type-3 frame times across every measured tap."""
        first_uncompressed: Optional[float] = None
        first_compressed: Optional[float] = None
        for _name, tap in self.measured_taps:
            uncompressed = tap.first_time_of_kind(
                PacketKind.PROCESSED_UNCOMPRESSED
            )
            compressed = tap.first_time_of_kind(PacketKind.PROCESSED_COMPRESSED)
            if uncompressed is not None and (
                first_uncompressed is None or uncompressed < first_uncompressed
            ):
                first_uncompressed = uncompressed
            if compressed is not None and (
                first_compressed is None or compressed < first_compressed
            ):
                first_compressed = compressed
        return first_uncompressed, first_compressed

    def learning_time(self) -> Optional[float]:
        """Gap between the first type-2 and type-3 frame on the measured links."""
        first_uncompressed, first_compressed = self.wire_first_times()
        if first_uncompressed is None or first_compressed is None:
            return None
        return max(0.0, first_compressed - first_uncompressed)

    def _collect_metrics(self) -> MetricsRegistry:
        metrics = MetricsRegistry(bounded_distributions=self._streaming)
        for name, node in self._encoder_nodes.items():
            collect_switch_metrics(metrics, encoder=node.switch, encoder_prefix=name)
        for name, node in self._decoder_nodes.items():
            collect_switch_metrics(metrics, decoder=node.switch, decoder_prefix=name)
        for name, node in self._forward_nodes.items():
            metrics.merge_counters(name, node.counters())
        collect_link_metrics(metrics, self.graph.links)
        if self._qualify_controlplane is None:
            single = len(self.control_planes) == 1
        else:
            single = not self._qualify_controlplane
        for name, control_plane in self.control_planes.items():
            namespace = "controlplane" if single else f"controlplane.{name}"
            metrics.merge_counters(namespace, control_plane.stats.as_dict())
        for name, channel in self.control_channels.items():
            metrics.merge_counters(f"control.{name}", channel.counters())
            metrics.merge_counters(
                f"control.{name}.link", channel.link.stats.as_dict()
            )
        faults = self.spec.faults
        if faults is not None and faults.active:
            # Only fault runs carry this namespace, so fault-free reports
            # stay byte-identical to pre-fault-layer ones.
            metrics.merge_counters(
                "faults",
                {
                    "restarts": self._fault_restarts,
                    "storm_evicted": self._fault_storm_evicted,
                    "resync_installs": self._fault_resync_installs,
                },
            )
        for _name, tap in self.measured_taps:
            collect_wire_metrics(metrics, tap)
        if self._unattributed:
            metrics.increment("flows.unattributed_frames", self._unattributed)
        if self._misdelivered:
            metrics.increment("flows.misdelivered_frames", self._misdelivered)
        return metrics

    def report(self) -> TopologyReport:
        """Fold everything measured so far into a :class:`TopologyReport`."""
        metrics = self._collect_metrics()
        flow_results: List[FlowResult] = []
        totals = {"sent": 0, "received": 0, "matched": 0, "corrupted": 0,
                  "missing": 0, "out_of_order": 0}
        any_integrity = False
        # Same name the linear harness uses, so a one-flow linear topology
        # produces the identical end-to-end latency distribution key.
        endtoend = metrics.distribution("endtoend.latency")
        for state in self._flows:
            if state.account.latency is not None:
                # Streaming accounts own their (bounded) latency sketch;
                # adopt it so the registry reports it under the flow key.
                latency = metrics.add_distribution(state.account.latency)
            else:
                latency = metrics.distribution(f"flow.{state.spec.name}.latency")
            integrity = state.account.fold_into(latency)
            # Fold per-flow latencies into the all-flow distribution in
            # flow-declaration order — the exact order the shard merge
            # replays, so the float fold is byte-identical either way.
            if self._streaming:
                endtoend.merge(latency)
            else:
                endtoend.extend(latency.samples)
            metrics.increment(f"flow.{state.spec.name}.chunks_sent", state.chunks_sent)
            metrics.increment(
                f"flow.{state.spec.name}.payload_bytes_sent", state.chunk_bytes_sent
            )
            metrics.increment(f"flow.{state.spec.name}.delivered", state.delivered)
            if integrity is not None:
                any_integrity = True
                for key in totals:
                    totals[key] += getattr(integrity, key)
                metrics.increment(
                    f"flow.{state.spec.name}.missing", integrity.missing
                )
                metrics.increment(
                    f"flow.{state.spec.name}.corrupted", integrity.corrupted
                )
            flow_results.append(
                FlowResult(
                    name=state.spec.name,
                    source=state.source.description,
                    seed=state.seed,
                    chunks_sent=state.chunks_sent,
                    payload_bytes_sent=state.chunk_bytes_sent,
                    frames_sent=state.frames_sent,
                    delivered=state.delivered,
                    integrity=integrity,
                    latency={} if latency.empty else latency.summary(),
                )
            )
        aggregate = IntegrityResult(**totals) if any_integrity else None
        return TopologyReport(
            topology=self.spec.name,
            scenario=self.spec.scenario,
            chunks_sent=sum(state.chunks_sent for state in self._flows),
            payload_bytes_sent=sum(state.chunk_bytes_sent for state in self._flows),
            wire_payload_bytes=sum(
                tap.total_payload_bytes() for _name, tap in self.measured_taps
            ),
            duration=self.simulator.now,
            integrity=aggregate,
            flows=flow_results,
            metrics=metrics,
            learning_time=self.learning_time(),
        )
