"""A small, deterministic discrete-event simulator.

:class:`Simulator` is the time base shared by the Tofino switch model, the
control plane and the traffic generators.  It is intentionally minimal: a
monotonic clock, a binary-heap event queue, and run/step primitives.  All
components that need time accept a ``Simulator`` (or share one through
:class:`repro.zipline.deployment.Deployment`), so experiments are exactly
reproducible and independent of wall-clock speed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro import obs as _obs
from repro.exceptions import SimulationError
from repro.sim.events import Event, EventHandle

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulator with a seconds-based clock.

    Typical usage::

        sim = Simulator()
        sim.schedule_in(1.77e-3, lambda: install_mapping(...))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0):
        if start_time < 0:
            raise SimulationError(f"start time must be non-negative, got {start_time}")
        self._now = start_time
        self._queue: List[Event] = []
        self._executed_events = 0
        self._running = False
        self._observers: List[Callable[[Event], Any]] = []

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed_events

    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue (including cancelled ones)."""
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        description: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.9f}s, which is before the "
                f"current time {self._now:.9f}s"
            )
        event = Event.create(time, callback, priority=priority, description=description)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        description: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, description=description
        )

    def schedule_now(
        self, callback: Callable[[], Any], priority: int = 0, description: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at the current time (runs after current event)."""
        return self.schedule_at(
            self._now, callback, priority=priority, description=description
        )

    # -- observers ----------------------------------------------------------

    def add_observer(self, observer: Callable[[Event], Any]) -> None:
        """Register a callable invoked after each executed event.

        Observers run *after* the event's callback and must not schedule
        events or mutate simulation state — they exist for telemetry
        (:class:`repro.obs.snapshot.PeriodicSnapshotter`) and leave the
        event schedule, and therefore run reports, untouched.
        """
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[Event], Any]) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event {event.description!r} scheduled in the past "
                    f"({event.time:.9f}s < {self._now:.9f}s)"
                )
            self._now = event.time
            event.callback()
            self._executed_events += 1
            tracer = _obs.TRACER
            if tracer.enabled:
                tracer.instant(
                    "sim.event",
                    "sim",
                    args={"desc": event.description} if event.description else None,
                    ts=event.time,
                )
            if self._observers:
                for observer in self._observers:
                    observer(event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or a cap.

        Returns the number of events executed by this call.  ``until`` is an
        absolute simulated time; events scheduled exactly at ``until`` still
        run.  ``max_events`` guards against runaway self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if self.step():
                    executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        return self.run(until=self._now + duration, max_events=max_events)

    def _peek(self) -> Optional[Event]:
        """The next non-cancelled event without removing it, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def advance_to(self, time: float) -> None:
        """Move the clock forward without executing events (testing helper)."""
        if time < self._now:
            raise SimulationError(
                f"cannot move the clock backwards ({time:.9f}s < {self._now:.9f}s)"
            )
        next_event = self._peek()
        if next_event is not None and next_event.time < time:
            raise SimulationError(
                "cannot advance past pending events; run() them instead"
            )
        self._now = time

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._executed_events = 0
