"""Discrete-event simulation substrate shared by the switch and control plane."""

from repro.sim.events import (
    Event,
    EventHandle,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    SECONDS,
)
from repro.sim.simulator import Simulator

__all__ = [
    "Event",
    "EventHandle",
    "MICROSECONDS",
    "MILLISECONDS",
    "NANOSECONDS",
    "SECONDS",
    "Simulator",
]
