"""Event primitives for the discrete-event simulator.

The control-plane latency experiment (the paper's 1.77 ms dynamic-learning
measurement) and the trace-replay machinery need a notion of simulated time:
packets arrive at a given rate, digests reach the control plane after a
delay, table writes complete after another delay.  A small discrete-event
simulator keeps this deterministic and fast; wall-clock time never enters
the model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError

__all__ = ["Event", "EventHandle", "SECONDS", "MILLISECONDS", "MICROSECONDS", "NANOSECONDS"]

#: Canonical time units, expressed in seconds.  All simulator timestamps are
#: floats in seconds; these constants keep call sites readable
#: (``clock.now + 1.77 * MILLISECONDS``).
SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, priority, sequence)`` so that simultaneous
    events run in a deterministic order: lower priority value first, then
    insertion order.  The callback and its description are excluded from the
    ordering comparison.
    """

    time: float
    priority: int
    sequence: int = field(compare=True)
    callback: Callable[[], Any] = field(compare=False)
    description: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    @classmethod
    def create(
        cls,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        description: str = "",
    ) -> "Event":
        """Build an event with an automatically assigned sequence number."""
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        if not callable(callback):
            raise SimulationError("event callback must be callable")
        return cls(
            time=time,
            priority=priority,
            sequence=next(_sequence),
            callback=callback,
            description=description,
        )


class EventHandle:
    """Handle returned by the simulator's ``schedule`` methods.

    Allows cancelling a pending event without digging into the event queue.
    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front.
    """

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time in seconds."""
        return self._event.time

    @property
    def description(self) -> str:
        """Human-readable description of the event."""
        return self._event.description

    @property
    def cancelled(self) -> bool:
        """True when the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from running (idempotent)."""
        self._event.cancelled = True
