"""Traffic sources for the replay subsystem: where the packets come from.

A :class:`TraceSource` streams :class:`TimedFrame` objects — raw Ethernet
frame bytes plus the timestamp *recorded* with them — from a pcap file, a
:class:`~repro.workloads.traces.ChunkTrace`, or a workload generator,
without ever materialising the whole trace in memory.  A :class:`Pacing`
policy then turns recorded timestamps into *injection* times on the
simulator clock:

* :class:`RecordedPacing` — replay with the inter-packet gaps of the
  capture (optionally sped up / slowed down), the way the paper replays
  its converted dataset pcaps;
* :class:`FixedRatePacing` — a constant rate in packets per second or in
  offered bits per second of wire occupancy;
* :class:`BackToBackPacing` — every frame at t = 0, leaving the emulated
  link's serialisation delay as the only spacing (a line-rate stress test).

The split keeps the two concerns orthogonal: any source combines with any
pacing, and the harness only ever sees ``(inject_at, frame_bytes)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.exceptions import ReplayError
from repro.net.ethernet import EthernetFrame, frame_wire_bytes
from repro.net.mac import MacAddress
from repro.net.pcap import PcapReader
from repro.workloads.traces import ChunkTrace
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

__all__ = [
    "TimedFrame",
    "Pacing",
    "RecordedPacing",
    "FixedRatePacing",
    "BackToBackPacing",
    "TraceSource",
    "PcapTraceSource",
    "ChunkTraceSource",
    "WorkloadTraceSource",
    "pacing_from_name",
    "stream_distinct_bases",
]

_DEFAULT_SOURCE_MAC = MacAddress("02:00:00:00:00:01")
_DEFAULT_DESTINATION_MAC = MacAddress("02:00:00:00:00:02")


@dataclass(frozen=True)
class TimedFrame:
    """One frame of a trace: raw bytes plus its recorded timestamp."""

    recorded_time: float
    data: bytes

    @property
    def frame_bytes(self) -> int:
        """Frame length in bytes (header + payload, no FCS)."""
        return len(self.data)


# ---------------------------------------------------------------------------
# pacing policies
# ---------------------------------------------------------------------------


class Pacing:
    """Map a frame's position in the trace to its injection time.

    ``inject_at(index, recorded_time, frame_bytes)`` is called once per
    frame, in trace order, and must return a non-decreasing absolute time
    in seconds.  Implementations may keep state (the fixed-rate policies
    do), so one policy instance drives one replay.
    """

    def inject_at(self, index: int, recorded_time: float, frame_bytes: int) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any accumulated state so the policy can drive a new run."""


class RecordedPacing(Pacing):
    """Replay with the capture's own inter-packet gaps.

    The first frame is injected at ``start``; every later frame keeps its
    recorded offset from the first, divided by ``speedup`` (2.0 = twice as
    fast as recorded).
    """

    def __init__(self, speedup: float = 1.0, start: float = 0.0):
        if speedup <= 0:
            raise ReplayError(f"speedup must be positive, got {speedup}")
        if start < 0:
            raise ReplayError(f"start time must be non-negative, got {start}")
        self.speedup = speedup
        self.start = start
        self._first_recorded: Optional[float] = None
        self._last_injected = start

    def inject_at(self, index: int, recorded_time: float, frame_bytes: int) -> float:
        if self._first_recorded is None:
            self._first_recorded = recorded_time
        offset = (recorded_time - self._first_recorded) / self.speedup
        # Captures occasionally carry non-monotonic timestamps; clamp so the
        # simulator never sees time going backwards.
        injected = max(self.start + offset, self._last_injected)
        self._last_injected = injected
        return injected

    def reset(self) -> None:
        self._first_recorded = None
        self._last_injected = self.start


class FixedRatePacing(Pacing):
    """Constant-rate injection, in packets per second or bits per second.

    Exactly one of ``packet_rate`` (packets per second) and
    ``bandwidth_bps`` (offered load as wire bits per second, so frame sizes
    matter) must be given.

    >>> pacing = FixedRatePacing(packet_rate=2.0)
    >>> [pacing.inject_at(i, 0.0, 64) for i in range(3)]
    [0.0, 0.5, 1.0]
    """

    def __init__(
        self,
        packet_rate: Optional[float] = None,
        bandwidth_bps: Optional[float] = None,
        start: float = 0.0,
    ):
        if (packet_rate is None) == (bandwidth_bps is None):
            raise ReplayError(
                "exactly one of packet_rate and bandwidth_bps must be given"
            )
        if packet_rate is not None and packet_rate <= 0:
            raise ReplayError(f"packet rate must be positive, got {packet_rate}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ReplayError(f"bandwidth must be positive, got {bandwidth_bps}")
        if start < 0:
            raise ReplayError(f"start time must be non-negative, got {start}")
        self.packet_rate = packet_rate
        self.bandwidth_bps = bandwidth_bps
        self.start = start
        self._next_time = start

    def inject_at(self, index: int, recorded_time: float, frame_bytes: int) -> float:
        injected = self._next_time
        if self.packet_rate is not None:
            self._next_time = injected + 1.0 / self.packet_rate
        else:
            wire_bits = frame_wire_bytes(frame_bytes) * 8
            self._next_time = injected + wire_bits / self.bandwidth_bps
        return injected

    def reset(self) -> None:
        self._next_time = self.start


class BackToBackPacing(Pacing):
    """Inject every frame at ``start``; the link's queue does the spacing."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ReplayError(f"start time must be non-negative, got {start}")
        self.start = start

    def inject_at(self, index: int, recorded_time: float, frame_bytes: int) -> float:
        return self.start


def pacing_from_name(
    name: str,
    packet_rate: float = 1_000_000.0,
    speedup: float = 1.0,
    start: float = 0.0,
) -> Pacing:
    """Build a pacing policy from its CLI name.

    ``recorded`` → :class:`RecordedPacing`, ``rate`` →
    :class:`FixedRatePacing` at ``packet_rate``, ``back-to-back`` →
    :class:`BackToBackPacing`; every policy begins injecting at ``start``.
    """
    if name == "recorded":
        return RecordedPacing(speedup=speedup, start=start)
    if name == "rate":
        return FixedRatePacing(packet_rate=packet_rate, start=start)
    if name == "back-to-back":
        return BackToBackPacing(start=start)
    raise ReplayError(
        f"unknown pacing {name!r}; valid: recorded, rate, back-to-back"
    )


# ---------------------------------------------------------------------------
# trace sources
# ---------------------------------------------------------------------------


class TraceSource:
    """A stream of :class:`TimedFrame` objects.

    Sources are restartable: every call to :meth:`frames` yields the trace
    from the beginning.  Implementations stream lazily where the backing
    store allows it (pcap files, workload generators), so paper-scale
    traces never have to fit in memory.
    """

    #: Human-readable description for reports.
    description: str = "trace"

    def frames(self) -> Iterator[TimedFrame]:
        raise NotImplementedError


class PcapTraceSource(TraceSource):
    """Stream Ethernet frames from a pcap file (either resolution/endianness)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not self.path.exists():
            raise ReplayError(f"pcap file {self.path} does not exist")
        self.description = f"pcap:{self.path.name}"

    def frames(self) -> Iterator[TimedFrame]:
        with PcapReader(self.path) as reader:
            for packet in reader:
                yield TimedFrame(recorded_time=packet.timestamp, data=packet.data)


class ChunkTraceSource(TraceSource):
    """Wrap an in-memory :class:`ChunkTrace` into raw-chunk frames.

    Recorded timestamps are synthesised at ``recorded_rate`` packets per
    second (they only matter under :class:`RecordedPacing`).
    """

    def __init__(
        self,
        trace: ChunkTrace,
        recorded_rate: float = 1_000_000.0,
        source: MacAddress = _DEFAULT_SOURCE_MAC,
        destination: MacAddress = _DEFAULT_DESTINATION_MAC,
    ):
        if recorded_rate <= 0:
            raise ReplayError(f"recorded rate must be positive, got {recorded_rate}")
        self.trace = trace
        self.recorded_rate = recorded_rate
        self._source = source
        self._destination = destination
        self.description = f"chunks:{trace.name}"

    def frames(self) -> Iterator[TimedFrame]:
        interval = 1.0 / self.recorded_rate
        # The trace is already in memory; reuse its framing so the wire
        # format cannot diverge from what ChunkTrace.to_pcap writes.
        for index, frame in enumerate(
            self.trace.to_frames(self._source, self._destination)
        ):
            yield TimedFrame(recorded_time=index * interval, data=frame.to_bytes())


class WorkloadTraceSource(TraceSource):
    """Stream chunks straight out of a workload generator (no trace list).

    Any object with an ``iter_chunks()`` method (both workload generators
    provide one) works; chunks are framed lazily, so the source scales to
    paper-sized runs.
    """

    def __init__(
        self,
        workload,
        num_chunks: Optional[int] = None,
        recorded_rate: float = 1_000_000.0,
        source: MacAddress = _DEFAULT_SOURCE_MAC,
        destination: MacAddress = _DEFAULT_DESTINATION_MAC,
    ):
        if not hasattr(workload, "iter_chunks"):
            raise ReplayError(
                f"workload {type(workload).__name__} has no iter_chunks() method"
            )
        if recorded_rate <= 0:
            raise ReplayError(f"recorded rate must be positive, got {recorded_rate}")
        self.workload = workload
        self.num_chunks = num_chunks
        self.recorded_rate = recorded_rate
        self._source = source
        self._destination = destination
        self.description = f"workload:{type(workload).__name__}"

    def frames(self) -> Iterator[TimedFrame]:
        interval = 1.0 / self.recorded_rate
        chunks: Iterable[bytes] = (
            self.workload.iter_chunks()
            if self.num_chunks is None
            else self.workload.iter_chunks(self.num_chunks)
        )
        for index, chunk in enumerate(chunks):
            frame = EthernetFrame(
                destination=self._destination,
                source=self._source,
                ethertype=ETHERTYPE_RAW_CHUNK,
                payload=chunk,
            )
            yield TimedFrame(recorded_time=index * interval, data=frame.to_bytes())


# ---------------------------------------------------------------------------
# trace inspection
# ---------------------------------------------------------------------------


def stream_distinct_bases(trace_path: Union[str, Path], order: int = 8) -> list:
    """Bases of every chunk-carrying frame in a pcap, in one streaming pass.

    Handles raw-chunk (type-1) frames and processed type-2 frames (whose
    payload carries the basis explicitly, so a decoder-only replay of a
    processed trace can preinstall its mappings).  Type-3 frames carry only
    an identifier, so their bases cannot be recovered from the wire.
    Unlike ``ChunkTrace.from_pcap(...).distinct_bases(...)`` this never
    materialises the trace, so large pcaps stay in bounded memory.  Bases
    are returned in first-appearance order — the order the control plane's
    identifier pool would assign them in, which static preloading must
    reproduce exactly.
    """
    from repro.core.transform import GDTransform
    from repro.exceptions import ReproError
    from repro.net.ethernet import EtherType
    from repro.net.packets import ZipLinePacketCodec
    from repro.zipline.headers import raw_chunk_payload

    transform = GDTransform(order=order)
    codec = ZipLinePacketCodec(transform)
    type2_ethertype = EtherType.ZIPLINE_UNCOMPRESSED.to_bytes(2, "big")
    bases: dict = {}
    chunks = 0
    for frame in PcapTraceSource(trace_path).frames():
        payload = raw_chunk_payload(frame.data)
        if payload is not None and len(payload) == transform.chunk_bytes:
            chunks += 1
            bases.setdefault(transform.split(payload).basis, None)
            continue
        if frame.data[12:14] == type2_ethertype:
            record = codec.unpack_uncompressed(frame.data[14:])
            chunks += 1
            bases.setdefault(record.basis, None)
    if not chunks:
        raise ReproError(
            f"pcap {trace_path} contains no ZipLine chunk or type-2 frames"
        )
    return list(bases)
