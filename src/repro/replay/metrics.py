"""Metrics collection for replay runs: one registry, one report.

Every component of a replayed topology already counts things — switch
counter sets, link taps, link stats, control-plane stats, match-action
table occupancy.  :class:`MetricsRegistry` is the funnel that collects all
of them under namespaced keys (``encoder.raw_to_compressed``,
``link0.dropped_loss``, …) together with value *distributions* (end-to-end
latency, queueing delay) whose percentiles the report prints.

:class:`ReplayReport` is the single result object a replay run returns:
compression accounting (the Figure 3 numbers), latency percentiles, the
integrity verdict, and the full counter breakdown — renderable as text via
:func:`repro.analysis.reporting.format_table` and serialisable as JSON via
:func:`repro.analysis.reporting.save_results_json`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.reporting import format_table
from repro.exceptions import ReplayError

__all__ = [
    "Distribution",
    "MetricsRegistry",
    "IntegrityResult",
    "ReplayReport",
    "collect_switch_metrics",
    "collect_link_metrics",
    "collect_wire_metrics",
]

Number = Union[int, float]

#: Percentiles every distribution summary reports.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


#: Default relative error of a bounded distribution's percentile estimates.
DEFAULT_RELATIVE_ERROR = 0.01

#: Default cap on log-spaced buckets per sign.  At the default relative
#: error this covers an astronomically wide dynamic range, so the
#: lowest-bucket collapse below is a safety valve, not a working mode.
DEFAULT_MAX_BUCKETS = 4096


class Distribution:
    """A sample collection with percentile summaries.

    Two storage modes share one interface:

    * **exact** (the default) retains every sample.  Percentiles use linear
      interpolation between closest ranks (the same convention as
      ``numpy.percentile``'s default), computed lazily over a cached sort.
    * **bounded** (``bounded=True``) keeps a fixed-size log-bucketed sketch
      (the DDSketch construction): ``count``, ``sum``, ``min`` and ``max``
      are tracked exactly — so ``mean()`` and the summary extremes match
      the exact mode bit for bit — while each sample lands in the bucket
      ``ceil(log_gamma |v|)`` with ``gamma = (1+a)/(1-a)`` for relative
      error ``a``.  ``percentile(p)`` returns the bucket midpoint of the
      nearest-rank sample, clamped to ``[min, max]``; the estimate is
      guaranteed within ``relative_error`` of the exact nearest-rank value
      (as long as the ``max_buckets`` collapse valve never fires, which at
      the defaults needs a dynamic range beyond any simulated latency).
      Memory is O(max_buckets), independent of the stream length.

    >>> latency = Distribution("endtoend.latency")
    >>> latency.extend([1.0, 2.0, 3.0, 4.0])
    >>> latency.percentile(50)
    2.5
    >>> latency.summary()["max"]
    4.0
    """

    def __init__(
        self,
        name: str = "",
        bounded: bool = False,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ):
        self.name = name
        self._bounded = bounded
        if bounded:
            if not 0.0 < relative_error < 1.0:
                raise ReplayError(
                    f"distribution {name!r}: relative_error must be in (0, 1), "
                    f"got {relative_error!r}"
                )
            if max_buckets < 2:
                raise ReplayError(
                    f"distribution {name!r}: max_buckets must be at least 2, "
                    f"got {max_buckets!r}"
                )
            self._relative_error = float(relative_error)
            self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
            self._log_gamma = math.log(self._gamma)
            self._max_buckets = max_buckets
            self._count = 0
            self._sum = 0.0
            self._min: Optional[float] = None
            self._max: Optional[float] = None
            self._zero = 0
            self._positive: Dict[int, int] = {}
            self._negative: Dict[int, int] = {}
        else:
            self._samples: List[float] = []
            self._sorted: Optional[List[float]] = None

    @property
    def bounded(self) -> bool:
        """True when this distribution is a fixed-size sketch."""
        return self._bounded

    # -- recording -----------------------------------------------------------

    def _bucket_index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_value(self, index: int) -> float:
        # Midpoint of (gamma^(i-1), gamma^i]: within relative_error of every
        # value the bucket can hold (exactly +/-a at the bucket edges).
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    @staticmethod
    def _collapse(buckets: Dict[int, int], limit: int) -> None:
        # Safety valve: fold the lowest bucket into its neighbour so the
        # sketch never exceeds the cap (degrading accuracy only at the far
        # low tail of an extreme dynamic range).
        while len(buckets) > limit:
            ordered = sorted(buckets)
            buckets[ordered[1]] += buckets.pop(ordered[0])

    def _add_bounded(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value > 0.0:
            index = self._bucket_index(value)
            self._positive[index] = self._positive.get(index, 0) + 1
            if len(self._positive) > self._max_buckets:
                self._collapse(self._positive, self._max_buckets)
        elif value < 0.0:
            index = self._bucket_index(-value)
            self._negative[index] = self._negative.get(index, 0) + 1
            if len(self._negative) > self._max_buckets:
                self._collapse(self._negative, self._max_buckets)
        else:
            self._zero += 1

    def add(self, value: Number) -> None:
        """Record one sample."""
        if self._bounded:
            self._add_bounded(float(value))
            return
        self._samples.append(float(value))
        self._sorted = None

    def extend(self, values: Sequence[Number]) -> None:
        """Record many samples."""
        if self._bounded:
            for value in values:
                self._add_bounded(float(value))
            return
        self._samples.extend(float(value) for value in values)
        if values:
            self._sorted = None

    def merge(self, other: "Distribution") -> None:
        """Fold another distribution of the same mode into this one.

        Exact mode appends the other's samples in their insertion order;
        bounded mode adds the sketches bucket-wise (integer counts, so a
        merge of merges is associative and order-independent except for
        the floating-point ``sum``, which follows merge order exactly like
        sequential :meth:`add` calls would).
        """
        if self._bounded != other._bounded:
            raise ReplayError(
                f"cannot merge {'bounded' if other._bounded else 'exact'} "
                f"distribution {other.name!r} into "
                f"{'bounded' if self._bounded else 'exact'} {self.name!r}"
            )
        if not self._bounded:
            self.extend(other._samples)
            return
        if other._relative_error != self._relative_error:
            raise ReplayError(
                f"cannot merge distribution {other.name!r} "
                f"(relative_error {other._relative_error}) into {self.name!r} "
                f"(relative_error {self._relative_error})"
            )
        if other._count == 0:
            return
        self._count += other._count
        self._sum += other._sum
        if self._min is None or other._min < self._min:
            self._min = other._min
        if self._max is None or other._max > self._max:
            self._max = other._max
        self._zero += other._zero
        for index, count in other._positive.items():
            self._positive[index] = self._positive.get(index, 0) + count
        for index, count in other._negative.items():
            self._negative[index] = self._negative.get(index, 0) + count
        self._collapse(self._positive, self._max_buckets)
        self._collapse(self._negative, self._max_buckets)

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        if self._bounded:
            return self._count
        return len(self._samples)

    @property
    def empty(self) -> bool:
        """True when no sample has been recorded."""
        return len(self) == 0

    @property
    def samples(self) -> List[float]:
        """A copy of the recorded samples, in insertion order."""
        if self._bounded:
            raise ReplayError(
                f"bounded distribution {self.name!r} retains no samples"
            )
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean of the samples (exact in both modes)."""
        if self.empty:
            raise ReplayError(f"distribution {self.name!r} has no samples")
        if self._bounded:
            return self._sum / self._count
        return sum(self._samples) / len(self._samples)

    def _clamp(self, value: float) -> float:
        return max(self._min, min(value, self._max))

    def _bounded_percentile(self, p: float) -> float:
        rank = (p / 100.0) * (self._count - 1)
        target = min(int(rank + 0.5), self._count - 1)  # nearest rank
        cumulative = 0
        for index in sorted(self._negative, reverse=True):
            cumulative += self._negative[index]
            if cumulative > target:
                return self._clamp(-self._bucket_value(index))
        cumulative += self._zero
        if cumulative > target:
            return self._clamp(0.0)
        for index in sorted(self._positive):
            cumulative += self._positive[index]
            if cumulative > target:
                return self._clamp(self._bucket_value(index))
        return self._max

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100) of the samples.

        In bounded mode this is the sketch estimate: within
        ``relative_error`` of the exact nearest-rank percentile.
        """
        if self.empty:
            raise ReplayError(f"distribution {self.name!r} has no samples")
        if not 0.0 <= p <= 100.0:
            raise ReplayError(f"percentile must be within [0, 100], got {p}")
        if self._bounded:
            return self._bounded_percentile(p)
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def summary(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """Count, mean, min/max and the requested percentiles."""
        if self.empty:
            return {"count": 0}
        if self._bounded:
            result: Dict[str, float] = {
                "count": self._count,
                "mean": self.mean(),
                "min": self._min,
                "max": self._max,
            }
        else:
            result = {
                "count": len(self._samples),
                "mean": self.mean(),
                "min": min(self._samples),
                "max": max(self._samples),
            }
        for p in percentiles:
            key = f"p{p:g}"
            result[key] = self.percentile(p)
        return result

    # -- state transport -------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """A picklable snapshot that :meth:`from_state` restores exactly.

        This is how sharded topology workers ship their distributions back
        to the parent: exact mode carries the sample list (insertion
        order preserved, so downstream folds are byte-identical to an
        in-process run), bounded mode carries the sketch.
        """
        if not self._bounded:
            return {"mode": "exact", "samples": list(self._samples)}
        return {
            "mode": "bounded",
            "relative_error": self._relative_error,
            "max_buckets": self._max_buckets,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "zero": self._zero,
            "positive": dict(self._positive),
            "negative": dict(self._negative),
        }

    @classmethod
    def from_state(cls, name: str, state: Mapping[str, Any]) -> "Distribution":
        """Rebuild a distribution from a :meth:`to_state` snapshot."""
        mode = state.get("mode")
        if mode == "exact":
            dist = cls(name)
            dist._samples = list(state["samples"])
            return dist
        if mode != "bounded":
            raise ReplayError(
                f"distribution {name!r}: unknown state mode {mode!r}"
            )
        dist = cls(
            name,
            bounded=True,
            relative_error=state["relative_error"],
            max_buckets=state["max_buckets"],
        )
        dist._count = state["count"]
        dist._sum = state["sum"]
        dist._min = state["min"]
        dist._max = state["max"]
        dist._zero = state["zero"]
        dist._positive = dict(state["positive"])
        dist._negative = dict(state["negative"])
        return dist


class MetricsRegistry:
    """Namespaced counters, gauges and distributions from many components.

    Counter keys are ``component.metric`` strings; :meth:`merge_counters`
    bulk-imports a component's counter dict under its namespace, which is
    how switch counter sets, link stats and control-plane stats land here
    without those components knowing about the registry.

    ``bounded_distributions=True`` makes every distribution created through
    :meth:`distribution` a fixed-size sketch (see :class:`Distribution`) —
    the registry mode the topology engine's streaming metrics use so scale
    runs never retain per-sample state.
    """

    def __init__(
        self,
        bounded_distributions: bool = False,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
    ) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._bounded_distributions = bounded_distributions
        self._relative_error = relative_error

    # -- counters ------------------------------------------------------------

    def increment(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to a counter (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def merge_counters(self, namespace: str, counters: Mapping[str, Number]) -> None:
        """Import a component's counters under ``namespace.*`` (additive)."""
        for key, value in counters.items():
            if value is None:
                continue
            self.increment(f"{namespace}.{key}", value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never touched)."""
        return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------------

    def set_gauge(self, name: str, value: Number) -> None:
        """Record a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of a gauge, or ``None``."""
        return self._gauges.get(name)

    # -- distributions ----------------------------------------------------------

    def distribution(self, name: str) -> Distribution:
        """The named distribution, created on first use."""
        if name not in self._distributions:
            self._distributions[name] = Distribution(
                name,
                bounded=self._bounded_distributions,
                relative_error=self._relative_error,
            )
        return self._distributions[name]

    def add_distribution(self, dist: Distribution) -> Distribution:
        """Adopt an externally-built distribution under its own name."""
        if dist.name in self._distributions:
            raise ReplayError(
                f"distribution {dist.name!r} is already registered"
            )
        self._distributions[dist.name] = dist
        return dist

    def distributions(self) -> Dict[str, Distribution]:
        """All registered distributions by name."""
        return dict(self._distributions)

    # -- export -----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Everything the registry holds, as plain JSON-friendly data."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "distributions": {
                name: dist.summary()
                for name, dist in sorted(self._distributions.items())
            },
        }

    def export_state(self) -> Dict[str, object]:
        """A picklable snapshot (insertion order preserved) for shard merge.

        Unlike :meth:`as_dict`, distributions are carried as full
        :meth:`Distribution.to_state` snapshots, not summaries, so the
        parent process can fold them exactly.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "distributions": {
                name: dist.to_state()
                for name, dist in self._distributions.items()
            },
        }

    def counter_rows(self, prefix: str = "") -> List[List[object]]:
        """``[name, value]`` rows (optionally filtered by prefix) for tables."""
        return [
            [name, int(value) if float(value).is_integer() else value]
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        ]

    def render(self, title: str = "metrics") -> str:
        """Counters and gauges as one fixed-width table."""
        rows: List[List[object]] = self.counter_rows()
        rows.extend(
            [name, value] for name, value in sorted(self._gauges.items())
        )
        return format_table(["metric", "value"], rows, title=title)


# ---------------------------------------------------------------------------
# component collectors
# ---------------------------------------------------------------------------
#
# Every replayed topology folds the same component families into a registry:
# ZipLine switches, emulated links, the measured-link tap.  These collectors
# are the one implementation both the linear ReplayHarness and the topology
# engine use, so per-link and per-flow attribution cannot drift between the
# two.  All arguments are duck-typed — the collectors only touch the narrow
# counter interfaces the components already expose.


def collect_switch_metrics(
    metrics: "MetricsRegistry",
    encoder=None,
    decoder=None,
    encoder_prefix: str = "encoder",
    decoder_prefix: str = "decoder",
) -> None:
    """Fold ZipLine encoder/decoder switch counters into the registry."""
    if encoder is not None:
        for label, sample in encoder.counters.as_dict().items():
            metrics.increment(f"{encoder_prefix}.{label}", sample.packets)
            metrics.increment(f"{encoder_prefix}.{label}_bytes", sample.bytes)
        hits = encoder.counters.read("raw_to_compressed").packets
        misses = encoder.counters.read("raw_to_uncompressed").packets
        if hits + misses:
            metrics.set_gauge(
                f"{encoder_prefix}.dictionary_hit_rate", hits / (hits + misses)
            )
        metrics.set_gauge(
            f"{encoder_prefix}.dictionary_entries", len(encoder.known_bases())
        )
        engine = encoder.digest_engine
        metrics.increment(f"{encoder_prefix}.digests_emitted", engine.emitted)
        metrics.increment(f"{encoder_prefix}.digests_dropped", engine.dropped)
    if decoder is not None:
        for label, sample in decoder.counters.as_dict().items():
            metrics.increment(f"{decoder_prefix}.{label}", sample.packets)
            metrics.increment(f"{decoder_prefix}.{label}_bytes", sample.bytes)
        metrics.set_gauge(
            f"{decoder_prefix}.dictionary_entries",
            sum(1 for _ in decoder.identifier_table.entries()),
        )


def collect_link_metrics(metrics: "MetricsRegistry", links) -> None:
    """Fold per-link counters and queueing-delay samples into the registry."""
    for link in links:
        metrics.merge_counters(link.name, link.stats.as_dict())
        metrics.distribution(f"{link.name}.queueing_delay").extend(
            link.stats.queueing_delays
        )


def collect_wire_metrics(metrics: "MetricsRegistry", tap, prefix: str = "wire") -> None:
    """Fold the measured link tap's per-type accounting into the registry."""
    from repro.net.packets import PacketKind

    counts = tap.count_by_kind()
    payload = tap.payload_bytes_by_kind()
    metrics.increment(f"{prefix}.raw_packets", counts[PacketKind.RAW])
    metrics.increment(
        f"{prefix}.uncompressed_packets", counts[PacketKind.PROCESSED_UNCOMPRESSED]
    )
    metrics.increment(
        f"{prefix}.compressed_packets", counts[PacketKind.PROCESSED_COMPRESSED]
    )
    metrics.increment(f"{prefix}.raw_payload_bytes", payload[PacketKind.RAW])
    metrics.increment(
        f"{prefix}.uncompressed_payload_bytes",
        payload[PacketKind.PROCESSED_UNCOMPRESSED],
    )
    metrics.increment(
        f"{prefix}.compressed_payload_bytes", payload[PacketKind.PROCESSED_COMPRESSED]
    )


@dataclass(frozen=True)
class IntegrityResult:
    """Outcome of the end-to-end payload verification.

    ``matched`` received chunks were byte-identical to a sent chunk;
    ``corrupted`` received chunks matched nothing that was sent;
    ``missing`` sent chunks never arrived (loss); ``out_of_order`` counts
    received chunks that arrived after a chunk sent later than them.

    ``intact`` is the replay-level verdict: nothing arrived corrupted.
    Losses are a *documented, counted* failure mode of a lossy link, not a
    corruption — the acceptance distinction the lossy-link tests assert.

    When the trace contains duplicate chunk contents *and* frames were
    lost, the FIFO content matcher can attribute a surviving duplicate to
    an earlier lost copy, so ``out_of_order`` is exact on loss-free runs
    but an upper bound on lossy ones.
    """

    sent: int
    received: int
    matched: int
    corrupted: int
    missing: int
    out_of_order: int

    @property
    def intact(self) -> bool:
        """True when every delivered chunk was byte-identical to a sent one."""
        return self.corrupted == 0

    @property
    def lossless_in_order(self) -> bool:
        """True for the strict loss-free verdict: all chunks back, in order."""
        return (
            self.corrupted == 0
            and self.missing == 0
            and self.out_of_order == 0
            and self.sent == self.received
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "sent": self.sent,
            "received": self.received,
            "matched": self.matched,
            "corrupted": self.corrupted,
            "missing": self.missing,
            "out_of_order": self.out_of_order,
            "intact": self.intact,
            "lossless_in_order": self.lossless_in_order,
        }


@dataclass
class ReplayReport:
    """Everything one replay run produced.

    ``metrics`` holds the raw registry; the named fields are the headline
    numbers every experiment wants without digging through it.
    """

    topology: str
    scenario: str
    source: str
    chunks_sent: int
    payload_bytes_sent: int
    wire_payload_bytes: int
    duration: float
    integrity: Optional[IntegrityResult]
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    learning_time: Optional[float] = None

    @property
    def compression_ratio(self) -> Optional[float]:
        """Payload bytes on the compressed hop over original payload bytes.

        ``None`` when no raw chunks were injected (e.g. a decoder-only
        replay of a processed trace) — there is no meaningful ratio then.
        """
        if self.payload_bytes_sent == 0:
            return None
        return self.wire_payload_bytes / self.payload_bytes_sent

    @property
    def savings_percent(self) -> Optional[float]:
        """Percentage of payload bytes the compression removed (or ``None``)."""
        ratio = self.compression_ratio
        if ratio is None:
            return None
        return 100.0 * (1.0 - ratio)

    def latency_summary(self) -> Dict[str, float]:
        """End-to-end latency percentiles in seconds (empty dict when unknown)."""
        dist = self.metrics.distributions().get("endtoend.latency")
        if dist is None or dist.empty:
            return {}
        return dist.summary()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the whole report."""
        return {
            "topology": self.topology,
            "scenario": self.scenario,
            "source": self.source,
            "chunks_sent": self.chunks_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "wire_payload_bytes": self.wire_payload_bytes,
            "compression_ratio": self.compression_ratio,
            "savings_percent": self.savings_percent,
            "duration": self.duration,
            "learning_time": self.learning_time,
            "integrity": None if self.integrity is None else self.integrity.as_dict(),
            "latency": self.latency_summary(),
            "metrics": self.metrics.as_dict(),
        }

    def headline_rows(self) -> List[List[object]]:
        """The summary rows the CLI prints (metric, value pairs)."""
        rows: List[List[object]] = [
            ["topology", self.topology],
            ["scenario", self.scenario],
            ["source", self.source],
            ["chunks sent", f"{self.chunks_sent:,}"],
            ["payload bytes sent", f"{self.payload_bytes_sent:,}"],
            ["bytes on the wire hop", f"{self.wire_payload_bytes:,}"],
            [
                "compression ratio",
                "n/a"
                if self.compression_ratio is None
                else f"{self.compression_ratio:.4f}",
            ],
            [
                "savings",
                "n/a"
                if self.savings_percent is None
                else f"{self.savings_percent:.1f} %",
            ],
            ["replay duration", f"{self.duration * 1e3:.3f} ms"],
            [
                "learning delay",
                "n/a"
                if self.learning_time is None
                else f"{self.learning_time * 1e3:.3f} ms",
            ],
        ]
        latency = self.latency_summary()
        if latency:
            for key in ("p50", "p90", "p99", "max"):
                if key in latency:
                    rows.append(
                        [f"latency {key}", f"{latency[key] * 1e6:.3f} us"]
                    )
        if self.integrity is not None:
            rows.append(
                ["lossless", "yes" if self.integrity.lossless_in_order else "NO"]
            )
            rows.append(["integrity intact", "yes" if self.integrity.intact else "NO"])
            rows.append(["chunks lost", f"{self.integrity.missing:,}"])
            rows.append(["chunks corrupted", f"{self.integrity.corrupted:,}"])
            rows.append(["chunks out of order", f"{self.integrity.out_of_order:,}"])
        return rows

    def render(self, include_counters: bool = True) -> str:
        """Human-readable report (headline + counter breakdown)."""
        parts = [
            format_table(
                ["metric", "value"],
                self.headline_rows(),
                title=f"replay ({self.scenario}, {self.topology})",
            )
        ]
        if include_counters:
            counter_rows = self.metrics.counter_rows()
            if counter_rows:
                parts.append(
                    format_table(
                        ["counter", "value"], counter_rows, title="counter breakdown"
                    )
                )
        return "\n\n".join(parts)
