"""Metrics collection for replay runs: one registry, one report.

Every component of a replayed topology already counts things — switch
counter sets, link taps, link stats, control-plane stats, match-action
table occupancy.  :class:`MetricsRegistry` is the funnel that collects all
of them under namespaced keys (``encoder.raw_to_compressed``,
``link0.dropped_loss``, …) together with value *distributions* (end-to-end
latency, queueing delay) whose percentiles the report prints.

:class:`ReplayReport` is the single result object a replay run returns:
compression accounting (the Figure 3 numbers), latency percentiles, the
integrity verdict, and the full counter breakdown — renderable as text via
:func:`repro.analysis.reporting.format_table` and serialisable as JSON via
:func:`repro.analysis.reporting.save_results_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.reporting import format_table
from repro.exceptions import ReplayError

__all__ = [
    "Distribution",
    "MetricsRegistry",
    "IntegrityResult",
    "ReplayReport",
    "collect_switch_metrics",
    "collect_link_metrics",
    "collect_wire_metrics",
]

Number = Union[int, float]

#: Percentiles every distribution summary reports.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


class Distribution:
    """A sample collection with percentile summaries.

    Percentiles use linear interpolation between closest ranks (the same
    convention as ``numpy.percentile``'s default), computed lazily over a
    cached sort.

    >>> latency = Distribution("endtoend.latency")
    >>> latency.extend([1.0, 2.0, 3.0, 4.0])
    >>> latency.percentile(50)
    2.5
    >>> latency.summary()["max"]
    4.0
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, value: Number) -> None:
        """Record one sample."""
        self._samples.append(float(value))
        self._sorted = None

    def extend(self, values: Sequence[Number]) -> None:
        """Record many samples."""
        self._samples.extend(float(value) for value in values)
        if values:
            self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        """True when no sample has been recorded."""
        return not self._samples

    @property
    def samples(self) -> List[float]:
        """A copy of the recorded samples, in insertion order."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._samples:
            raise ReplayError(f"distribution {self.name!r} has no samples")
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100) of the samples."""
        if not self._samples:
            raise ReplayError(f"distribution {self.name!r} has no samples")
        if not 0.0 <= p <= 100.0:
            raise ReplayError(f"percentile must be within [0, 100], got {p}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def summary(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """Count, mean, min/max and the requested percentiles."""
        if not self._samples:
            return {"count": 0}
        result: Dict[str, float] = {
            "count": len(self._samples),
            "mean": self.mean(),
            "min": min(self._samples),
            "max": max(self._samples),
        }
        for p in percentiles:
            key = f"p{p:g}"
            result[key] = self.percentile(p)
        return result


class MetricsRegistry:
    """Namespaced counters, gauges and distributions from many components.

    Counter keys are ``component.metric`` strings; :meth:`merge_counters`
    bulk-imports a component's counter dict under its namespace, which is
    how switch counter sets, link stats and control-plane stats land here
    without those components knowing about the registry.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._distributions: Dict[str, Distribution] = {}

    # -- counters ------------------------------------------------------------

    def increment(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to a counter (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def merge_counters(self, namespace: str, counters: Mapping[str, Number]) -> None:
        """Import a component's counters under ``namespace.*`` (additive)."""
        for key, value in counters.items():
            if value is None:
                continue
            self.increment(f"{namespace}.{key}", value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never touched)."""
        return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------------

    def set_gauge(self, name: str, value: Number) -> None:
        """Record a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of a gauge, or ``None``."""
        return self._gauges.get(name)

    # -- distributions ----------------------------------------------------------

    def distribution(self, name: str) -> Distribution:
        """The named distribution, created on first use."""
        if name not in self._distributions:
            self._distributions[name] = Distribution(name)
        return self._distributions[name]

    def distributions(self) -> Dict[str, Distribution]:
        """All registered distributions by name."""
        return dict(self._distributions)

    # -- export -----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Everything the registry holds, as plain JSON-friendly data."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "distributions": {
                name: dist.summary()
                for name, dist in sorted(self._distributions.items())
            },
        }

    def counter_rows(self, prefix: str = "") -> List[List[object]]:
        """``[name, value]`` rows (optionally filtered by prefix) for tables."""
        return [
            [name, int(value) if float(value).is_integer() else value]
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        ]

    def render(self, title: str = "metrics") -> str:
        """Counters and gauges as one fixed-width table."""
        rows: List[List[object]] = self.counter_rows()
        rows.extend(
            [name, value] for name, value in sorted(self._gauges.items())
        )
        return format_table(["metric", "value"], rows, title=title)


# ---------------------------------------------------------------------------
# component collectors
# ---------------------------------------------------------------------------
#
# Every replayed topology folds the same component families into a registry:
# ZipLine switches, emulated links, the measured-link tap.  These collectors
# are the one implementation both the linear ReplayHarness and the topology
# engine use, so per-link and per-flow attribution cannot drift between the
# two.  All arguments are duck-typed — the collectors only touch the narrow
# counter interfaces the components already expose.


def collect_switch_metrics(
    metrics: "MetricsRegistry",
    encoder=None,
    decoder=None,
    encoder_prefix: str = "encoder",
    decoder_prefix: str = "decoder",
) -> None:
    """Fold ZipLine encoder/decoder switch counters into the registry."""
    if encoder is not None:
        for label, sample in encoder.counters.as_dict().items():
            metrics.increment(f"{encoder_prefix}.{label}", sample.packets)
            metrics.increment(f"{encoder_prefix}.{label}_bytes", sample.bytes)
        hits = encoder.counters.read("raw_to_compressed").packets
        misses = encoder.counters.read("raw_to_uncompressed").packets
        if hits + misses:
            metrics.set_gauge(
                f"{encoder_prefix}.dictionary_hit_rate", hits / (hits + misses)
            )
        metrics.set_gauge(
            f"{encoder_prefix}.dictionary_entries", len(encoder.known_bases())
        )
        engine = encoder.digest_engine
        metrics.increment(f"{encoder_prefix}.digests_emitted", engine.emitted)
        metrics.increment(f"{encoder_prefix}.digests_dropped", engine.dropped)
    if decoder is not None:
        for label, sample in decoder.counters.as_dict().items():
            metrics.increment(f"{decoder_prefix}.{label}", sample.packets)
            metrics.increment(f"{decoder_prefix}.{label}_bytes", sample.bytes)
        metrics.set_gauge(
            f"{decoder_prefix}.dictionary_entries",
            sum(1 for _ in decoder.identifier_table.entries()),
        )


def collect_link_metrics(metrics: "MetricsRegistry", links) -> None:
    """Fold per-link counters and queueing-delay samples into the registry."""
    for link in links:
        metrics.merge_counters(link.name, link.stats.as_dict())
        metrics.distribution(f"{link.name}.queueing_delay").extend(
            link.stats.queueing_delays
        )


def collect_wire_metrics(metrics: "MetricsRegistry", tap, prefix: str = "wire") -> None:
    """Fold the measured link tap's per-type accounting into the registry."""
    from repro.net.packets import PacketKind

    counts = tap.count_by_kind()
    payload = tap.payload_bytes_by_kind()
    metrics.increment(f"{prefix}.raw_packets", counts[PacketKind.RAW])
    metrics.increment(
        f"{prefix}.uncompressed_packets", counts[PacketKind.PROCESSED_UNCOMPRESSED]
    )
    metrics.increment(
        f"{prefix}.compressed_packets", counts[PacketKind.PROCESSED_COMPRESSED]
    )
    metrics.increment(f"{prefix}.raw_payload_bytes", payload[PacketKind.RAW])
    metrics.increment(
        f"{prefix}.uncompressed_payload_bytes",
        payload[PacketKind.PROCESSED_UNCOMPRESSED],
    )
    metrics.increment(
        f"{prefix}.compressed_payload_bytes", payload[PacketKind.PROCESSED_COMPRESSED]
    )


@dataclass(frozen=True)
class IntegrityResult:
    """Outcome of the end-to-end payload verification.

    ``matched`` received chunks were byte-identical to a sent chunk;
    ``corrupted`` received chunks matched nothing that was sent;
    ``missing`` sent chunks never arrived (loss); ``out_of_order`` counts
    received chunks that arrived after a chunk sent later than them.

    ``intact`` is the replay-level verdict: nothing arrived corrupted.
    Losses are a *documented, counted* failure mode of a lossy link, not a
    corruption — the acceptance distinction the lossy-link tests assert.

    When the trace contains duplicate chunk contents *and* frames were
    lost, the FIFO content matcher can attribute a surviving duplicate to
    an earlier lost copy, so ``out_of_order`` is exact on loss-free runs
    but an upper bound on lossy ones.
    """

    sent: int
    received: int
    matched: int
    corrupted: int
    missing: int
    out_of_order: int

    @property
    def intact(self) -> bool:
        """True when every delivered chunk was byte-identical to a sent one."""
        return self.corrupted == 0

    @property
    def lossless_in_order(self) -> bool:
        """True for the strict loss-free verdict: all chunks back, in order."""
        return (
            self.corrupted == 0
            and self.missing == 0
            and self.out_of_order == 0
            and self.sent == self.received
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "sent": self.sent,
            "received": self.received,
            "matched": self.matched,
            "corrupted": self.corrupted,
            "missing": self.missing,
            "out_of_order": self.out_of_order,
            "intact": self.intact,
            "lossless_in_order": self.lossless_in_order,
        }


@dataclass
class ReplayReport:
    """Everything one replay run produced.

    ``metrics`` holds the raw registry; the named fields are the headline
    numbers every experiment wants without digging through it.
    """

    topology: str
    scenario: str
    source: str
    chunks_sent: int
    payload_bytes_sent: int
    wire_payload_bytes: int
    duration: float
    integrity: Optional[IntegrityResult]
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    learning_time: Optional[float] = None

    @property
    def compression_ratio(self) -> Optional[float]:
        """Payload bytes on the compressed hop over original payload bytes.

        ``None`` when no raw chunks were injected (e.g. a decoder-only
        replay of a processed trace) — there is no meaningful ratio then.
        """
        if self.payload_bytes_sent == 0:
            return None
        return self.wire_payload_bytes / self.payload_bytes_sent

    @property
    def savings_percent(self) -> Optional[float]:
        """Percentage of payload bytes the compression removed (or ``None``)."""
        ratio = self.compression_ratio
        if ratio is None:
            return None
        return 100.0 * (1.0 - ratio)

    def latency_summary(self) -> Dict[str, float]:
        """End-to-end latency percentiles in seconds (empty dict when unknown)."""
        dist = self.metrics.distributions().get("endtoend.latency")
        if dist is None or dist.empty:
            return {}
        return dist.summary()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the whole report."""
        return {
            "topology": self.topology,
            "scenario": self.scenario,
            "source": self.source,
            "chunks_sent": self.chunks_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "wire_payload_bytes": self.wire_payload_bytes,
            "compression_ratio": self.compression_ratio,
            "savings_percent": self.savings_percent,
            "duration": self.duration,
            "learning_time": self.learning_time,
            "integrity": None if self.integrity is None else self.integrity.as_dict(),
            "latency": self.latency_summary(),
            "metrics": self.metrics.as_dict(),
        }

    def headline_rows(self) -> List[List[object]]:
        """The summary rows the CLI prints (metric, value pairs)."""
        rows: List[List[object]] = [
            ["topology", self.topology],
            ["scenario", self.scenario],
            ["source", self.source],
            ["chunks sent", f"{self.chunks_sent:,}"],
            ["payload bytes sent", f"{self.payload_bytes_sent:,}"],
            ["bytes on the wire hop", f"{self.wire_payload_bytes:,}"],
            [
                "compression ratio",
                "n/a"
                if self.compression_ratio is None
                else f"{self.compression_ratio:.4f}",
            ],
            [
                "savings",
                "n/a"
                if self.savings_percent is None
                else f"{self.savings_percent:.1f} %",
            ],
            ["replay duration", f"{self.duration * 1e3:.3f} ms"],
            [
                "learning delay",
                "n/a"
                if self.learning_time is None
                else f"{self.learning_time * 1e3:.3f} ms",
            ],
        ]
        latency = self.latency_summary()
        if latency:
            for key in ("p50", "p90", "p99", "max"):
                if key in latency:
                    rows.append(
                        [f"latency {key}", f"{latency[key] * 1e6:.3f} us"]
                    )
        if self.integrity is not None:
            rows.append(
                ["lossless", "yes" if self.integrity.lossless_in_order else "NO"]
            )
            rows.append(["integrity intact", "yes" if self.integrity.intact else "NO"])
            rows.append(["chunks lost", f"{self.integrity.missing:,}"])
            rows.append(["chunks corrupted", f"{self.integrity.corrupted:,}"])
            rows.append(["chunks out of order", f"{self.integrity.out_of_order:,}"])
        return rows

    def render(self, include_counters: bool = True) -> str:
        """Human-readable report (headline + counter breakdown)."""
        parts = [
            format_table(
                ["metric", "value"],
                self.headline_rows(),
                title=f"replay ({self.scenario}, {self.topology})",
            )
        ]
        if include_counters:
            counter_rows = self.metrics.counter_rows()
            if counter_rows:
                parts.append(
                    format_table(
                        ["counter", "value"], counter_rows, title="counter breakdown"
                    )
                )
        return "\n\n".join(parts)
