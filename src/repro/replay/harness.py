"""The end-to-end *linear* replay harness.

:class:`ReplayHarness` assembles the paper's chain-shaped experiment from
the existing components — ZipLine encoder/decoder switches, the control
plane, the discrete-event simulator — plus the
:class:`~repro.replay.link.EmulatedLink` and
:class:`~repro.replay.sources.TraceSource` layers::

    source ──> [encoder switch] ──tap──> link₀ ─ … ─ linkₙ ──> [decoder switch] ──> sink

Since the :mod:`repro.topology` generalisation the harness is a thin
builder of *linear* topologies: nodes, the multi-hop link chain and all
wiring come from :class:`~repro.topology.graph.TopologyGraph` /
:func:`~repro.topology.graph.build_link_chain`, the same machinery
arbitrary graph topologies (fan-in, forwarding meshes) are built from.
Arbitrary shapes and concurrent flows live in
:class:`~repro.topology.engine.TopologyEngine`; this class keeps the
original single-flow public API and behaviour, byte for byte.

Three topologies are supported (:class:`ReplayTopology`):

* ``encoder-link-decoder`` — the paper's testbed; ``hops`` > 1 chains
  several emulated links into a multi-hop path;
* ``encoder-only`` — the sink receives the processed (type-2/3) packets,
  for wire-format and byte-accounting experiments without decoding;
* ``decoder-only`` — the source feeds the link directly; raw frames pass
  through the decoder untouched, processed frames are decoded (requires
  preinstalled mappings via ``static_bases``).

The harness verifies **end-to-end payload integrity** by content-matching
every delivered raw chunk against the multiset of injected chunks (in FIFO
order per distinct content), which stays meaningful under loss, reordering
and duplicate chunks: losses become *counted* ``missing`` chunks, never
silent corruption.  All component counters, link statistics and the
end-to-end latency distribution land in one
:class:`~repro.replay.metrics.MetricsRegistry`, returned as a
:class:`~repro.replay.metrics.ReplayReport`.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Dict, Iterable, List, Optional

from repro.net.packets import PacketKind

from repro import obs as _obs
from repro.controlplane.manager import ControlPlaneTimings, ZipLineControlPlane
from repro.core.transform import GDTransform
from repro.exceptions import ReplayError
from repro.obs.snapshot import PeriodicSnapshotter
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay.link import EmulatedLink
from repro.replay.metrics import (
    IntegrityResult,
    MetricsRegistry,
    ReplayReport,
    collect_link_metrics,
    collect_switch_metrics,
    collect_wire_metrics,
)
from repro.replay.sources import FixedRatePacing, Pacing, TraceSource
from repro.sim.simulator import Simulator
from repro.tofino.digest import DEFAULT_DELIVERY_LATENCY, DigestEngine
from repro.topology.graph import TopologyGraph, build_link_chain
from repro.topology.nodes import HostNode, ZipLineDecoderNode, ZipLineEncoderNode
from repro.zipline.decoder_switch import ZipLineDecoderSwitch
from repro.zipline.deployment import DeploymentScenario
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import RAW_CHUNK_ETHERTYPE_BYTES, raw_chunk_payload
from repro.zipline.stats import LinkTap

__all__ = ["ReplayTopology", "ReplayHarness"]


class ReplayTopology(Enum):
    """Which components sit between the traffic source and the sink."""

    ENCODER_LINK_DECODER = "encoder-link-decoder"
    ENCODER_ONLY = "encoder-only"
    DECODER_ONLY = "decoder-only"

    @classmethod
    def from_name(cls, name: "str | ReplayTopology") -> "ReplayTopology":
        """Parse a topology from its name or pass an instance through."""
        if isinstance(name, ReplayTopology):
            return name
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(topology.value for topology in cls)
            raise ReplayError(
                f"unknown topology {name!r}; valid topologies: {valid}"
            ) from None


class ReplayHarness:
    """Drive a trace through an emulated ZipLine topology and measure it.

    Parameters
    ----------
    topology:
        One of :class:`ReplayTopology` (or its string name).
    scenario:
        Dictionary scenario, as in
        :class:`~repro.zipline.deployment.ZipLineDeployment`.
    transform / identifier_bits:
        GD configuration shared by both switches.
    static_bases:
        Bases to preload (required for the ``static`` scenario and for
        decoding processed traces in ``decoder-only`` topologies).
    hops:
        Number of emulated links in series (multi-hop path when > 1).
    bandwidth_bps / propagation_delay / queue_capacity:
        Per-link emulation parameters (every hop gets the same ones).
    impairments:
        Seeded loss/reorder model; each hop receives an independent
        deterministic fork, so runs are exactly reproducible.
    digest_latency / timings / entry_ttl / seed:
        Learning-path configuration, as in the deployment.
    verify_integrity:
        When true (the default), every injected chunk and every delivered
        frame is retained for the end-to-end integrity check and latency
        percentiles — O(trace) memory.  Set false for counters-only runs
        of very large traces; injection then stays in bounded memory and
        the report's ``integrity`` is ``None``.
    """

    SENDER_PORT = 0
    WIRE_PORT = 1
    DECODER_IN_PORT = 0
    SINK_PORT = 1

    def __init__(
        self,
        topology: "str | ReplayTopology" = ReplayTopology.ENCODER_LINK_DECODER,
        scenario: "str | DeploymentScenario" = DeploymentScenario.DYNAMIC,
        transform: Optional[GDTransform] = None,
        identifier_bits: int = 15,
        static_bases: Optional[Iterable[int]] = None,
        hops: int = 1,
        bandwidth_bps: float = 100e9,
        propagation_delay: float = 0.5e-6,
        queue_capacity: Optional[int] = None,
        impairments: Optional[ImpairmentModel] = None,
        digest_latency: float = DEFAULT_DELIVERY_LATENCY,
        timings: Optional[ControlPlaneTimings] = None,
        entry_ttl: Optional[float] = None,
        seed: Optional[int] = 0,
        verify_integrity: bool = True,
    ):
        if hops <= 0:
            raise ReplayError(f"hops must be positive, got {hops}")
        self.topology = ReplayTopology.from_name(topology)
        self.scenario = DeploymentScenario.from_name(scenario)
        self.transform = transform or GDTransform(order=8)
        self.identifier_bits = identifier_bits
        self.simulator = Simulator()
        self.link_tap = LinkTap(store_records=verify_integrity)
        self.verify_integrity = verify_integrity
        self.sink = HostNode("sink", store=verify_integrity)
        self.impairments = impairments

        has_encoder = self.topology is not ReplayTopology.DECODER_ONLY
        has_decoder = self.topology is not ReplayTopology.ENCODER_ONLY

        digest_engine = DigestEngine(self.simulator, delivery_latency=digest_latency)
        self.encoder: Optional[ZipLineEncoderSwitch] = None
        if has_encoder:
            self.encoder = ZipLineEncoderSwitch(
                name="encoder",
                transform=self.transform,
                identifier_bits=identifier_bits,
                simulator=self.simulator,
                forwarding={self.SENDER_PORT: self.WIRE_PORT},
                default_egress_port=self.WIRE_PORT,
                entry_ttl=entry_ttl,
                digest_engine=digest_engine,
            )
        self.decoder: Optional[ZipLineDecoderSwitch] = None
        if has_decoder:
            self.decoder = ZipLineDecoderSwitch(
                name="decoder",
                transform=self.transform,
                identifier_bits=identifier_bits,
                simulator=self.simulator,
                forwarding={self.DECODER_IN_PORT: self.SINK_PORT},
                default_egress_port=self.SINK_PORT,
            )

        # The chain and all wiring come from the topology layer: the harness
        # is a builder of linear graphs, not a second wiring implementation.
        self.links: List[EmulatedLink] = build_link_chain(
            self.simulator,
            names=[f"link{index}" for index in range(hops)],
            bandwidth_bps=bandwidth_bps,
            propagation_delay=propagation_delay,
            queue_capacity=queue_capacity,
            impairments=impairments,
            record_delays=verify_integrity,
        )
        self._build_graph()

        self.control_plane: Optional[ZipLineControlPlane] = None
        if self.scenario is not DeploymentScenario.NO_TABLE and (
            has_encoder or static_bases is not None
        ):
            self.control_plane = ZipLineControlPlane(
                digest_engine=digest_engine,
                encoder_switch=self.encoder,
                decoder_switch=self.decoder,
                simulator=self.simulator,
                identifier_bits=identifier_bits,
                entry_ttl=entry_ttl,
                timings=timings,
                seed=seed,
            )
        if self.scenario is DeploymentScenario.STATIC:
            if static_bases is None:
                raise ReplayError("the static scenario requires static_bases")
            self.control_plane.preload_static_mappings(static_bases)
        elif static_bases is not None:
            if self.control_plane is not None:
                # Decoder-only runs decode processed traces with preinstalled
                # mappings regardless of the scenario name.
                self.control_plane.preload_static_mappings(static_bases)
            elif self.decoder is not None and self.encoder is None:
                # no_table + decoder-only: install the reverse mappings
                # directly, in the same sequential identifier order the
                # control plane's pool would assign.
                for identifier, basis in enumerate(static_bases):
                    self.decoder.install_identifier_mapping(identifier, basis)
            else:
                # An explicit argument must never be silently ignored: with
                # an encoder present, no_table means "no mappings, ever".
                raise ReplayError(
                    "static_bases conflicts with the no_table scenario; use "
                    "the static or dynamic scenario instead"
                )

        # Injection-side accounting; the per-chunk state only exists when
        # the integrity check is enabled (it is O(trace) memory).
        self._chunks_sent = 0
        self._chunk_bytes_sent = 0
        self._sent_chunks: List[bytes] = []
        self._sent_times: List[float] = []
        self._pending_by_content: Dict[bytes, Deque[int]] = {}
        self._frames_sent = 0
        self._source_description = ""

        self._snapshotter = None
        tracer = _obs.TRACER
        if tracer.enabled:
            # Same binding the topology engine performs: trace timestamps
            # are this harness's simulated clock.
            tracer.clock = lambda: self.simulator.now
            if tracer.snapshot_interval:
                self._snapshotter = PeriodicSnapshotter(
                    tracer.snapshot_interval, tracer, self._snapshot_sample
                )
                self.simulator.add_observer(self._snapshotter.on_event)

    # -- wiring ------------------------------------------------------------------

    def _build_graph(self) -> None:
        """Assemble the linear graph: source → [encoder] → chain → [decoder] → sink."""
        graph = TopologyGraph(self.simulator)
        self._source_host = graph.add_node(HostNode("source", store=False))
        if self.encoder is not None:
            graph.add_node(ZipLineEncoderNode("encoder", switch=self.encoder))
        if self.decoder is not None:
            graph.add_node(ZipLineDecoderNode("decoder", switch=self.decoder))

        chain_source, chain_port = "source", 0
        if self.encoder is not None:
            graph.add_edge("source", 0, "encoder", self.SENDER_PORT)
            chain_source, chain_port = "encoder", self.WIRE_PORT
        if self.decoder is not None:
            graph.add_edge(
                chain_source, chain_port, "decoder", self.DECODER_IN_PORT,
                links=self.links, tap=self.link_tap,
            )
            graph.add_edge("decoder", self.SINK_PORT, self._deliver_to_sink)
        else:
            graph.add_edge(
                chain_source, chain_port, self._deliver_to_sink,
                links=self.links, tap=self.link_tap,
            )
        graph.wire()
        self.graph = graph

    def _deliver_to_sink(self, frame_bytes: bytes, time: float) -> None:
        """Sink delivery, annotated so a chunk's lifecycle ends in the trace."""
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.instant(
                "flow.arrive", "sink", args={"outcome": "delivered"}, ts=time
            )
        self.sink.deliver(frame_bytes, time)

    # -- injection ----------------------------------------------------------------

    def _inject(self, frame_bytes: bytes) -> None:
        self._frames_sent += 1
        # Same layout test as raw_chunk_payload(); the payload itself is
        # only sliced out when the integrity check retains it, so the
        # counters-only path does no per-packet payload allocation.
        if frame_bytes[12:14] == RAW_CHUNK_ETHERTYPE_BYTES:
            self._chunks_sent += 1
            self._chunk_bytes_sent += len(frame_bytes) - 14
            if self.verify_integrity:
                payload = frame_bytes[14:]
                index = len(self._sent_chunks)
                self._sent_chunks.append(payload)
                self._sent_times.append(self.simulator.now)
                self._pending_by_content.setdefault(payload, deque()).append(index)
        self._source_host.inject(frame_bytes, self.simulator.now)

    def _schedule_source(self, source: TraceSource, pacing: Pacing) -> None:
        """Pull frames from the source one at a time.

        Injection itself is streaming — only one pending frame is ever
        scheduled; total memory is bounded unless ``verify_integrity``
        retains per-chunk state for the end-to-end check.
        """
        pacing.reset()
        iterator = source.frames()
        counter = {"index": 0}

        def schedule_next() -> None:
            timed = next(iterator, None)
            if timed is None:
                return
            index = counter["index"]
            counter["index"] = index + 1
            at = pacing.inject_at(index, timed.recorded_time, len(timed.data))
            at = max(at, self.simulator.now)

            def fire(data=timed.data, idx=index) -> None:
                tracer = _obs.TRACER
                if tracer.enabled:
                    tracer.set_context("replay", idx)
                    tracer.instant("flow.inject", "source")
                    try:
                        self._inject(data)
                    finally:
                        tracer.clear_context()
                else:
                    self._inject(data)
                schedule_next()

            self.simulator.schedule_at(at, fire, description="replay:inject")

        schedule_next()

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        source: TraceSource,
        pacing: Optional[Pacing] = None,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> ReplayReport:
        """Replay ``source`` through the topology and return the report.

        ``pacing`` defaults to a fixed 1 Mpkt/s (the rate the evaluation
        replays at).  ``until``/``max_events`` bound the simulation for
        open-ended sources.
        """
        self._source_description = source.description
        self._schedule_source(source, pacing or FixedRatePacing(packet_rate=1e6))
        self.simulator.run(until=until, max_events=max_events)
        if self._snapshotter is not None:
            self._snapshotter.flush()
            self.simulator.remove_observer(self._snapshotter.on_event)
            self._snapshotter = None
        return self.report()

    def _snapshot_sample(self) -> Dict[str, float]:
        """Live series for the periodic snapshotter (O(links) per sample)."""
        now = self.simulator.now
        wire_bytes = self.link_tap.total_payload_bytes()
        return {
            "chunks_sent": float(self._chunks_sent),
            "payload_bytes_sent": float(self._chunk_bytes_sent),
            "wire_payload_bytes": float(wire_bytes),
            "ratio": (self._chunk_bytes_sent / wire_bytes) if wire_bytes else 0.0,
            "queue_depth": float(sum(link.queue_depth for link in self.links)),
            "pkt_per_s": (self._frames_sent / now) if now > 0 else 0.0,
            "dictionary_entries": float(
                len(self.encoder.known_bases()) if self.encoder is not None else 0
            ),
        }

    # -- results ------------------------------------------------------------------

    def _check_integrity(
        self, metrics: MetricsRegistry
    ) -> Optional[IntegrityResult]:
        """Match delivered raw chunks against injected ones by content."""
        if not self.verify_integrity or self.decoder is None or not self._sent_chunks:
            return None
        pending = {
            content: deque(indices)
            for content, indices in self._pending_by_content.items()
        }
        latency = metrics.distribution("endtoend.latency")
        matched = corrupted = out_of_order = 0
        received = 0
        highest_index = -1
        for time, frame_bytes in self.sink.arrivals:
            payload = raw_chunk_payload(frame_bytes)
            if payload is None:
                continue
            received += 1
            queue = pending.get(payload)
            if not queue:
                corrupted += 1
                continue
            index = queue.popleft()
            matched += 1
            if index < highest_index:
                out_of_order += 1
            highest_index = max(highest_index, index)
            latency.add(time - self._sent_times[index])
        missing = len(self._sent_chunks) - matched
        return IntegrityResult(
            sent=len(self._sent_chunks),
            received=received,
            matched=matched,
            corrupted=corrupted,
            missing=missing,
            out_of_order=out_of_order,
        )

    def _collect_metrics(self) -> MetricsRegistry:
        metrics = MetricsRegistry()
        collect_switch_metrics(metrics, encoder=self.encoder, decoder=self.decoder)
        collect_link_metrics(metrics, self.links)
        if self.control_plane is not None:
            metrics.merge_counters("controlplane", self.control_plane.stats.as_dict())
        collect_wire_metrics(metrics, self.link_tap)
        return metrics

    def learning_time(self) -> Optional[float]:
        """Gap between the first type-2 and type-3 frame on the wire."""
        first_uncompressed = self.link_tap.first_time_of_kind(
            PacketKind.PROCESSED_UNCOMPRESSED
        )
        first_compressed = self.link_tap.first_time_of_kind(
            PacketKind.PROCESSED_COMPRESSED
        )
        if first_uncompressed is None or first_compressed is None:
            return None
        return max(0.0, first_compressed - first_uncompressed)

    def report(self) -> ReplayReport:
        """Build the replay report from everything measured so far."""
        metrics = self._collect_metrics()
        integrity = self._check_integrity(metrics)
        return ReplayReport(
            topology=self.topology.value,
            scenario=self.scenario.value,
            source=self._source_description,
            chunks_sent=self._chunks_sent,
            payload_bytes_sent=self._chunk_bytes_sent,
            wire_payload_bytes=self.link_tap.total_payload_bytes(),
            duration=self.simulator.now,
            integrity=integrity,
            metrics=metrics,
            learning_time=self.learning_time(),
        )
