"""An emulated network hop on the discrete-event simulator.

:class:`EmulatedLink` is the piece the original two-switch deployment was
missing: the wire itself.  It models what a real hop does to a frame —

* **serialisation**: a store-and-forward output queue drained at
  ``bandwidth_bps``; wire occupancy (preamble, padding, FCS, inter-frame
  gap) is taken from :func:`repro.net.ethernet.frame_wire_bytes`, the same
  accounting :class:`repro.perfmodel.linkmodel.LinkModel` uses;
* **propagation**: a constant one-way delay;
* **bounded queueing**: drop-tail when more than ``queue_capacity`` frames
  are in the output queue (``None`` = unbounded);
* **seeded impairments**: loss and reordering drawn from a deterministic
  :class:`repro.perfmodel.linkmodel.ImpairmentModel`, so replays are
  exactly reproducible.

Every frame that enters the link is accounted in :class:`LinkStats`
(offered/delivered/dropped, queue occupancy peaks, per-frame queueing
delay), which the metrics registry folds into the replay report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional

from repro import obs as _obs
from repro.exceptions import ReplayError
from repro.net.ethernet import frame_wire_bytes
from repro.perfmodel.linkmodel import ImpairmentModel, LinkModel
from repro.sim.simulator import Simulator

__all__ = ["LinkStats", "EmulatedLink"]

#: ``sink(frame_bytes, time)`` — same shape as a switch port sink.
LinkSink = Callable[[bytes, float], None]


@dataclass
class LinkStats:
    """Counters and samples describing one link's behaviour during a run."""

    offered: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    reordered: int = 0
    offered_bytes: int = 0
    delivered_bytes: int = 0
    max_queue_depth: int = 0
    busy_time: float = 0.0
    queueing_delays: List[float] = field(default_factory=list)

    @property
    def dropped(self) -> int:
        """Total frames lost on this link, for any reason."""
        return self.dropped_loss + self.dropped_queue

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the metrics registry."""
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped_loss": self.dropped_loss,
            "dropped_queue": self.dropped_queue,
            "reordered": self.reordered,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "max_queue_depth": self.max_queue_depth,
            "busy_time": self.busy_time,
        }


class EmulatedLink:
    """A one-directional emulated hop: queue → serialise → propagate → sink.

    Parameters
    ----------
    simulator:
        Shared discrete-event simulator (the link schedules deliveries on
        it, so it must be the same instance the switches use).
    sink:
        Where delivered frames go; settable later via :meth:`attach`.
    name:
        Link name for event descriptions and reports.
    bandwidth_bps:
        Drain rate of the output queue (100 GbE by default).
    propagation_delay:
        One-way propagation delay in seconds.
    queue_capacity:
        Maximum frames queued or in serialisation before drop-tail kicks
        in; ``None`` disables the bound.
    impairments:
        Seeded loss/reorder model; ``None`` means an ideal link.
    record_delays:
        Keep the per-frame queueing-delay samples (O(frames) memory) for
        the percentile report.  Counters-only replays of very large traces
        disable this; the scalar counters always stay.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: Optional[LinkSink] = None,
        name: str = "link",
        bandwidth_bps: float = 100e9,
        propagation_delay: float = 0.5e-6,
        queue_capacity: Optional[int] = None,
        impairments: Optional[ImpairmentModel] = None,
        record_delays: bool = True,
    ):
        if bandwidth_bps <= 0:
            raise ReplayError(f"bandwidth must be positive, got {bandwidth_bps}")
        if propagation_delay < 0:
            raise ReplayError(
                f"propagation delay cannot be negative, got {propagation_delay}"
            )
        if queue_capacity is not None and queue_capacity <= 0:
            raise ReplayError(
                f"queue capacity must be positive or None, got {queue_capacity}"
            )
        self.simulator = simulator
        self.name = name
        self.model = LinkModel(speed_bps=bandwidth_bps)
        self.propagation_delay = propagation_delay
        self.queue_capacity = queue_capacity
        self.impairments = impairments
        self.record_delays = record_delays
        self.stats = LinkStats()
        self._sink = sink
        self._busy_until = 0.0
        self._queue_depth = 0
        # Event descriptions are constant; format them once, not per frame.
        self._serialised_label = f"{name}:serialised"
        self._deliver_label = f"{name}:deliver"

    # -- wiring ---------------------------------------------------------------

    def attach(self, sink: LinkSink) -> None:
        """Attach (or replace) the receiving end of the link."""
        if not callable(sink):
            raise ReplayError("link sink must be callable")
        self._sink = sink

    @property
    def queue_depth(self) -> int:
        """Frames currently queued or being serialised."""
        return self._queue_depth

    # -- data path ------------------------------------------------------------

    def send(self, frame: bytes, time: float) -> None:
        """Offer one frame to the link at simulated ``time``.

        Matches the :data:`~repro.tofino.switch.PortSink` signature, so a
        switch egress port can be attached directly to the link.
        """
        if self._sink is None:
            raise ReplayError(f"link {self.name!r} has no sink attached")
        now = max(self.simulator.now, time)
        tracer = _obs.TRACER
        self.stats.offered += 1
        self.stats.offered_bytes += len(frame)

        if self.impairments is not None and self.impairments.should_drop():
            self.stats.dropped_loss += 1
            if tracer.enabled:
                tracer.instant(
                    "link.drop", self.name, args={"reason": "loss"}, ts=now
                )
            return
        if (
            self.queue_capacity is not None
            and self._queue_depth >= self.queue_capacity
        ):
            self.stats.dropped_queue += 1
            if tracer.enabled:
                tracer.instant(
                    "link.drop",
                    self.name,
                    args={"reason": "queue", "depth": self._queue_depth},
                    ts=now,
                )
            return

        serialisation = self.model.serialisation_delay(len(frame))
        start = max(now, self._busy_until)
        done = start + serialisation
        self.stats.busy_time += serialisation
        self._busy_until = done
        self._queue_depth += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, self._queue_depth)
        if self.record_delays:
            self.stats.queueing_delays.append(start - now)

        penalty = 0.0
        if self.impairments is not None:
            penalty = self.impairments.reorder_penalty()
            if penalty > 0.0:
                self.stats.reordered += 1
        deliver_at = done + self.propagation_delay + penalty

        self.simulator.schedule_at(
            done,
            self._serialisation_done,
            description=self._serialised_label,
        )
        if tracer.enabled:
            # One span per wire stage, plus a context capture so the
            # delivery event (and everything the sink does synchronously —
            # decode, arrival accounting) is attributed to the chunk that
            # entered the wire, not whichever chunk is current when the
            # simulator fires the event.
            if start > now:
                tracer.span("link.enqueue", self.name, now, start)
            tracer.span(
                "link.serialize",
                self.name,
                start,
                done,
                args={"bytes": len(frame)},
            )
            tracer.span("link.propagate", self.name, done, deliver_at)
            self.simulator.schedule_at(
                deliver_at,
                partial(self._deliver_traced, frame, deliver_at, tracer.context),
                description=self._deliver_label,
            )
            return
        # A bound-method partial instead of a fresh closure per frame — the
        # link sits on every replayed packet's path.
        self.simulator.schedule_at(
            deliver_at,
            partial(self._deliver, frame, deliver_at),
            description=self._deliver_label,
        )

    def _deliver(self, frame: bytes, deliver_at: float) -> None:
        self.stats.delivered += 1
        self.stats.delivered_bytes += len(frame)
        self._sink(frame, deliver_at)

    def _deliver_traced(self, frame: bytes, deliver_at: float, context) -> None:
        tracer = _obs.TRACER
        saved = tracer.context
        tracer.restore_context(context)
        try:
            self._deliver(frame, deliver_at)
        finally:
            tracer.restore_context(saved)

    def _serialisation_done(self) -> None:
        self._queue_depth -= 1

    # -- derived measures -------------------------------------------------------

    def utilisation(self, duration: float) -> float:
        """Fraction of ``duration`` the link spent serialising frames."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / duration)

    def reset_stats(self) -> None:
        """Clear the counters (topology and impairment stream stay put)."""
        self.stats = LinkStats()
