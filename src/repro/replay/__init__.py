"""End-to-end trace replay and network emulation.

This package turns the repository's components (pcap I/O, the Tofino switch
model, the control plane, the discrete-event simulator, the link models)
into one experimentable system: stream a trace from a pcap file or workload
generator, pace it, push it through an emulated topology of ZipLine
switches and impaired links, and collect every counter into one report.

Quick start::

    from repro.replay import (
        FixedRatePacing, PcapTraceSource, ReplayHarness,
    )

    harness = ReplayHarness(topology="encoder-link-decoder", scenario="dynamic")
    report = harness.run(
        PcapTraceSource("trace.pcap"), FixedRatePacing(packet_rate=1e6)
    )
    print(report.render())
"""

from repro.replay.harness import ReplayHarness, ReplayTopology
from repro.replay.link import EmulatedLink, LinkStats
from repro.replay.metrics import (
    Distribution,
    IntegrityResult,
    MetricsRegistry,
    ReplayReport,
)
from repro.replay.sources import (
    BackToBackPacing,
    ChunkTraceSource,
    FixedRatePacing,
    Pacing,
    PcapTraceSource,
    RecordedPacing,
    TimedFrame,
    TraceSource,
    WorkloadTraceSource,
    pacing_from_name,
    stream_distinct_bases,
)

__all__ = [
    "ReplayHarness",
    "ReplayTopology",
    "EmulatedLink",
    "LinkStats",
    "Distribution",
    "IntegrityResult",
    "MetricsRegistry",
    "ReplayReport",
    "BackToBackPacing",
    "ChunkTraceSource",
    "FixedRatePacing",
    "Pacing",
    "PcapTraceSource",
    "RecordedPacing",
    "TimedFrame",
    "TraceSource",
    "WorkloadTraceSource",
    "pacing_from_name",
    "stream_distinct_bases",
]
