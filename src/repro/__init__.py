"""ZipLine reproduction: in-network compression at line speed.

A production-quality Python reproduction of *ZipLine: In-Network Compression
at Line Speed* (CoNEXT 2020).  The library implements generalized
deduplication (GD) over Hamming codes computed with CRC arithmetic, a
functional model of the Tofino data plane (match-action tables, registers,
CRC externs, digests), the ZipLine control plane with LRU identifier
management, trace workloads, baselines, and the analytical performance
models needed to regenerate every table and figure of the paper's
evaluation.

Quickstart::

    from repro import GDCodec

    codec = GDCodec(order=8, identifier_bits=15)
    result = codec.compress(payload_bytes, pad=True)
    print(result.compression_ratio)
    restored = codec.decompress_records(result.records, len(payload_bytes))
"""

from repro.core import (
    BasisDictionary,
    BitVector,
    CompressionResult,
    CrcEngine,
    CrcParameters,
    EncoderMode,
    EvictionPolicy,
    GDCodec,
    GDDecoder,
    GDEncoder,
    GDTransform,
    HammingCode,
    syndrome_crc,
)

__version__ = "1.0.0"

__all__ = [
    "BasisDictionary",
    "BitVector",
    "CompressionResult",
    "CrcEngine",
    "CrcParameters",
    "EncoderMode",
    "EvictionPolicy",
    "GDCodec",
    "GDDecoder",
    "GDEncoder",
    "GDTransform",
    "HammingCode",
    "syndrome_crc",
    "__version__",
]
