"""ZipLine reproduction: in-network compression at line speed.

A production-quality Python reproduction of *ZipLine: In-Network Compression
at Line Speed* (CoNEXT 2020).  The library implements generalized
deduplication (GD) over Hamming codes computed with CRC arithmetic, a
functional model of the Tofino data plane (match-action tables, registers,
CRC externs, digests), the ZipLine control plane with LRU identifier
management, trace workloads, baselines, and the analytical performance
models needed to regenerate every table and figure of the paper's
evaluation.

Quickstart::

    from repro import GDCodec, registry

    codec = GDCodec(order=8, identifier_bits=15)
    result = codec.compress(payload_bytes, pad=True)
    print(result.compression_ratio)
    restored = codec.decompress_records(result.records, len(payload_bytes))

    # Streaming, bounded-memory, any registered codec (gd/gzip/dedup/null):
    compressor = registry.get("gd")
    blob = b"".join(compressor.compress_stream(blocks))
"""

from repro import registry
from repro.core import (
    BasisDictionary,
    BitVector,
    CompressionResult,
    Compressor,
    CrcEngine,
    CrcParameters,
    EncoderMode,
    EvictionPolicy,
    GDCodec,
    GDDecoder,
    GDEncoder,
    GDTransform,
    HammingCode,
    syndrome_crc,
)

__version__ = "1.1.0"

__all__ = [
    "BasisDictionary",
    "BitVector",
    "CompressionResult",
    "Compressor",
    "CrcEngine",
    "CrcParameters",
    "EncoderMode",
    "EvictionPolicy",
    "GDCodec",
    "GDDecoder",
    "GDEncoder",
    "GDTransform",
    "HammingCode",
    "registry",
    "syndrome_crc",
    "__version__",
]
