"""Synthetic campus-DNS workload (stand-in for the paper's real trace).

The paper replays "a day of DNS queries at a 4000 users university campus"
(the public Mendeley dataset by Singh et al.), filtered to "only keep
queries of 34 B going to the main DNS resolver of the campus, excluding the
DNS transaction identifier which is a random number".

The real capture is not redistributable here, so this module generates a
statistically similar trace (documented substitution in DESIGN.md):

* a pool of campus-like fully qualified domain names whose DNS encoding
  makes every query message exactly 34 bytes long (12-byte header, 18-byte
  QNAME, 4 bytes of QTYPE/QCLASS);
* query popularity follows a Zipf distribution — a few names (the campus
  portal, mail, the LMS, OS update hosts) dominate, a long tail appears
  rarely, which is what campus resolvers see;
* transaction identifiers are uniformly random, exactly the field the paper
  excludes from compression.

The 32-byte chunk replayed through ZipLine is the query message *minus* the
2-byte transaction identifier — the same filtering step the paper applies —
so the chunk size matches the paper's 256-bit configuration exactly.
"""

from __future__ import annotations

import random
import string
import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.ip import build_udp_packet
from repro.net.mac import MacAddress
from repro.workloads.traces import ChunkTrace

__all__ = ["DnsQuery", "DnsQueryWorkload", "PAPER_DNS_QUERY_BYTES"]

#: Size of the filtered queries in the paper's dataset.
PAPER_DNS_QUERY_BYTES = 34

#: QTYPE values used by the generator (A dominates, some AAAA).
_QTYPE_A = 1
_QTYPE_AAAA = 28
_QCLASS_IN = 1
_DNS_PORT = 53

#: Standard-query flags (recursion desired).
_QUERY_FLAGS = 0x0100

#: Target DNS message size: header(12) + qname(18) + qtype(2) + qclass(2).
_TARGET_QNAME_ENCODED_BYTES = 18


def _encode_qname(name: str) -> bytes:
    """DNS label encoding of a dotted name."""
    encoded = bytearray()
    for label in name.split("."):
        if not label or len(label) > 63:
            raise WorkloadError(f"invalid DNS label in {name!r}")
        encoded.append(len(label))
        encoded.extend(label.encode("ascii"))
    encoded.append(0)
    return bytes(encoded)


def _decode_qname(data: bytes) -> Tuple[str, int]:
    """Decode a DNS QNAME; returns ``(name, bytes_consumed)``."""
    labels: List[str] = []
    offset = 0
    while True:
        if offset >= len(data):
            raise WorkloadError("truncated QNAME")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), offset


@dataclass(frozen=True)
class DnsQuery:
    """One generated DNS query."""

    transaction_id: int
    name: str
    qtype: int

    def message(self) -> bytes:
        """The full DNS query message (34 bytes for the generated names)."""
        header = struct.pack(
            ">HHHHHH", self.transaction_id, _QUERY_FLAGS, 1, 0, 0, 0
        )
        question = _encode_qname(self.name) + struct.pack(">HH", self.qtype, _QCLASS_IN)
        return header + question

    def chunk(self) -> bytes:
        """The message with the transaction identifier removed (32 bytes).

        This is the value ZipLine compresses — the paper's filtering step
        excludes the random transaction identifier.
        """
        return self.message()[2:]

    @classmethod
    def from_message(cls, message: bytes) -> "DnsQuery":
        """Parse a query message produced by :meth:`message`."""
        if len(message) < 16:
            raise WorkloadError(f"DNS message of {len(message)} bytes is too short")
        transaction_id, _flags, qdcount, _an, _ns, _ar = struct.unpack(
            ">HHHHHH", message[:12]
        )
        if qdcount != 1:
            raise WorkloadError(f"expected exactly one question, got {qdcount}")
        name, consumed = _decode_qname(message[12:])
        qtype, _qclass = struct.unpack(
            ">HH", message[12 + consumed : 12 + consumed + 4]
        )
        return cls(transaction_id=transaction_id, name=name, qtype=qtype)


class DnsQueryWorkload:
    """Generate a Zipf-skewed stream of 34-byte DNS queries.

    Parameters
    ----------
    num_queries:
        Number of queries to generate (the paper's filtered day of traffic is
        on the order of 7 × 10^5 queries; the default is scaled down).
    distinct_names:
        Size of the queried-name pool.
    zipf_exponent:
        Skew of the name popularity distribution (1.0–1.2 is typical for
        DNS).
    aaaa_fraction:
        Fraction of queries using QTYPE AAAA instead of A.
    seed:
        RNG seed for deterministic generation.
    client_subnet / resolver_ip:
        Addressing used when emitting full packets.
    """

    def __init__(
        self,
        num_queries: int = 100_000,
        distinct_names: int = 400,
        zipf_exponent: float = 1.1,
        aaaa_fraction: float = 0.15,
        seed: int = 2016,
        client_subnet: str = "10.20.0.0",
        resolver_ip: str = "10.1.1.53",
    ):
        if num_queries <= 0:
            raise WorkloadError(f"num_queries must be positive, got {num_queries}")
        if distinct_names <= 0:
            raise WorkloadError(f"distinct_names must be positive, got {distinct_names}")
        if zipf_exponent <= 0:
            raise WorkloadError(f"zipf_exponent must be positive, got {zipf_exponent}")
        if not 0.0 <= aaaa_fraction <= 1.0:
            raise WorkloadError(f"aaaa_fraction must be within [0, 1], got {aaaa_fraction}")
        self.num_queries = num_queries
        self.distinct_names = distinct_names
        self.zipf_exponent = zipf_exponent
        self.aaaa_fraction = aaaa_fraction
        self.seed = seed
        self.client_subnet = client_subnet
        self.resolver_ip = resolver_ip
        self._names: Optional[List[str]] = None
        self._cumulative: Optional[List[float]] = None

    # -- name pool --------------------------------------------------------------

    _DEPARTMENTS = (
        "cs", "ee", "me", "ce", "bio", "phy", "chm", "mat", "law", "med",
        "lib", "adm", "hr", "fin", "net", "it",
    )
    _SERVICES = (
        "www", "mail", "lms", "vpn", "git", "wiki", "sso", "cdn", "ntp",
        "erp", "db", "api", "app", "fs", "dc", "px",
    )

    def names(self) -> List[str]:
        """The pool of queried names (deterministic for a given seed).

        Every name is exactly 16 characters long so its DNS encoding is the
        18 bytes needed for a 34-byte query message.
        """
        if self._names is not None:
            return self._names
        rng = random.Random(self.seed)
        pool: List[str] = []
        seen = set()
        while len(pool) < self.distinct_names:
            service = rng.choice(self._SERVICES)
            department = rng.choice(self._DEPARTMENTS)
            # Layout: <service+digits>.<department>.uni.in — pad the host
            # label with digits so the full name is exactly 16 characters.
            suffix = f".{department}.uni.in"
            host_length = 16 - len(suffix)
            if host_length < len(service):
                continue
            digits_needed = host_length - len(service)
            host = service + "".join(
                rng.choice(string.digits) for _ in range(digits_needed)
            )
            name = host + suffix
            if len(name) != 16 or name in seen:
                continue
            if len(_encode_qname(name)) != _TARGET_QNAME_ENCODED_BYTES:
                continue
            seen.add(name)
            pool.append(name)
        self._names = pool
        return pool

    def _zipf_cumulative(self) -> List[float]:
        """Cumulative Zipf weights over the name pool."""
        if self._cumulative is not None:
            return self._cumulative
        weights = [1.0 / ((rank + 1) ** self.zipf_exponent) for rank in range(self.distinct_names)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative
        return cumulative

    def _pick_name(self, rng: random.Random) -> str:
        """Draw one name according to the Zipf distribution."""
        cumulative = self._zipf_cumulative()
        names = self.names()
        value = rng.random()
        low, high = 0, len(cumulative) - 1
        while low < high:
            middle = (low + high) // 2
            if cumulative[middle] < value:
                low = middle + 1
            else:
                high = middle
        return names[low]

    # -- query generation ------------------------------------------------------------

    def iter_queries(self, num_queries: Optional[int] = None) -> Iterator[DnsQuery]:
        """Lazily generate queries."""
        count = self.num_queries if num_queries is None else num_queries
        if count <= 0:
            raise WorkloadError(f"query count must be positive, got {count}")
        rng = random.Random(self.seed + 1)
        for _ in range(count):
            qtype = _QTYPE_AAAA if rng.random() < self.aaaa_fraction else _QTYPE_A
            yield DnsQuery(
                transaction_id=rng.getrandbits(16),
                name=self._pick_name(rng),
                qtype=qtype,
            )

    def queries(self, num_queries: Optional[int] = None) -> List[DnsQuery]:
        """Eagerly generate a list of queries."""
        return list(self.iter_queries(num_queries))

    def bases(self, order: int = 8) -> List[int]:
        """Distinct bases of the query chunks, in first-appearance order.

        The order the control plane's identifier pool would assign them in
        — the contract static-table preloading relies on.  (The synthetic
        workload precomputes its bases; DNS chunks are derived, so the
        bases are recovered by splitting each chunk.)
        """
        from repro.core.transform import GDTransform

        transform = GDTransform(order=order)
        seen: dict = {}
        for chunk in self.iter_chunks():
            if len(chunk) == transform.chunk_bytes:
                seen.setdefault(transform.split(chunk).basis, None)
        return list(seen)

    def iter_chunks(self, num_queries: Optional[int] = None) -> Iterator[bytes]:
        """Lazily generate the 32-byte chunks ZipLine compresses (txid removed).

        Shared generator interface with
        :meth:`~repro.workloads.synthetic.SyntheticSensorWorkload.iter_chunks`,
        used by the streaming trace sources in :mod:`repro.replay`.
        """
        return (query.chunk() for query in self.iter_queries(num_queries))

    def chunks(self, num_queries: Optional[int] = None) -> List[bytes]:
        """The 32-byte chunks ZipLine compresses (txid removed)."""
        return list(self.iter_chunks(num_queries))

    def trace(self, num_queries: Optional[int] = None, name: str = "dns") -> ChunkTrace:
        """A :class:`ChunkTrace` of the filtered queries."""
        return ChunkTrace(self.chunks(num_queries), name=name)

    def query_bytes(self, num_queries: Optional[int] = None) -> int:
        """Total size of the unfiltered query messages (34 bytes each)."""
        count = self.num_queries if num_queries is None else num_queries
        return count * PAPER_DNS_QUERY_BYTES

    # -- full packets (pcap realism) ----------------------------------------------------

    def packets(
        self,
        num_queries: Optional[int] = None,
        client_mac: Optional[MacAddress] = None,
        resolver_mac: Optional[MacAddress] = None,
    ) -> List[bytes]:
        """Full Ethernet/IPv4/UDP/DNS frames, as a campus capture would contain."""
        rng = random.Random(self.seed + 2)
        client_mac = client_mac or MacAddress("02:aa:00:00:00:01")
        resolver_mac = resolver_mac or MacAddress("02:aa:00:00:00:53")
        base_octets = self.client_subnet.split(".")
        frames: List[bytes] = []
        for query in self.iter_queries(num_queries):
            client_ip = f"{base_octets[0]}.{base_octets[1]}.{rng.randrange(1, 255)}.{rng.randrange(1, 255)}"
            packet = build_udp_packet(
                source_ip=client_ip,
                destination_ip=self.resolver_ip,
                source_port=rng.randrange(1024, 65535),
                destination_port=_DNS_PORT,
                payload=query.message(),
                identification=rng.getrandbits(16),
            )
            frame = EthernetFrame(
                destination=resolver_mac,
                source=client_mac,
                ethertype=EtherType.IPV4,
                payload=packet,
            )
            frames.append(frame.to_bytes())
        return frames
