"""Workload generators and trace containers for the evaluation."""

from repro.workloads.dns import DnsQuery, DnsQueryWorkload, PAPER_DNS_QUERY_BYTES
from repro.workloads.synthetic import PAPER_SYNTHETIC_CHUNKS, SyntheticSensorWorkload
from repro.workloads.thrash import DictionaryThrashWorkload
from repro.workloads.traces import ChunkTrace, TraceStats

__all__ = [
    "DnsQuery",
    "DnsQueryWorkload",
    "DictionaryThrashWorkload",
    "PAPER_DNS_QUERY_BYTES",
    "PAPER_SYNTHETIC_CHUNKS",
    "SyntheticSensorWorkload",
    "ChunkTrace",
    "TraceStats",
]
